//! The streaming-ingestion contract: drift-triggered relearning is a
//! deterministic fold over the row stream, and the `/v1/` wire surface
//! in front of it is byte-stable.
//!
//! * **Chunk/pool invariance** — the trigger rows, the relearn reasons,
//!   and the relearned SCM's exact bits are a pure
//!   function of the row sequence: identical whether rows arrive one at
//!   a time, in arbitrary flush-sized chunks, or as one slab, at worker
//!   pools of 1, 2, and 8 — with read-only query load interleaved
//!   between flushes.
//! * **Streamed ≡ cold** — a pipeline that streamed rows (relearning
//!   mid-stream whenever the detector fired) ends bit-identical to a
//!   cold state that bootstrapped once, recorded the same rows, and
//!   relearned once.
//! * **Wire round-trip** — `POST /v1/tenants/:id/ingest` acks, sheds
//!   with an explicit `backpressure` error when the bounded buffer is
//!   full, rejects malformed rows, and feeds the background worker whose
//!   progress `/v1/.../stats` reports; `/v1/.../query` replies are
//!   byte-identical to the legacy route's.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use unicorn::core::{EngineSnapshot, SnapshotCell, SnapshotRouter, UnicornOptions, UnicornState};
use unicorn::exec::Executor;
use unicorn::graph::VarKind;
use unicorn::inference::PerformanceQuery;
use unicorn::ingest::{
    DriftOptions, DriftStats, IngestEndpoint, IngestPipeline, IngestQueue, IngestRouter,
    IngestWorker,
};
use unicorn::serve::{http_request, parse_json, Json, ServeOptions, Server};
use unicorn::systems::{Dataset, ScenarioRegistry, Simulator};

/// The cross-run comparable part of a fold: the event log ("row N
/// Reason" lines — epochs are process-global ids, excluded on purpose)
/// and the published SCM's coefficient bits.
type FoldResult = (Vec<String>, Vec<Option<Vec<u64>>>);

const POOLS: [usize; 3] = [1, 2, 8];
const SAMPLES: usize = 40;
const PRE_ROWS: usize = 24;
const POST_ROWS: usize = 40;

/// The soak scenario's pair: x264 on TX2, and the same system under the
/// 2.5× workload surge whose rows must trip the detector.
fn sims() -> (Simulator, Simulator) {
    let reg = ScenarioRegistry::drift_soak();
    let sc = reg.get("x264-drift-soak").expect("soak scenario");
    (
        sc.simulator(42),
        sc.target_simulator(42).expect("shift set"),
    )
}

fn opts_on(pool: usize) -> UnicornOptions {
    let mut opts = UnicornOptions {
        initial_samples: SAMPLES,
        ..UnicornOptions::default()
    };
    opts.discovery.exec = Some(Executor::new(pool));
    opts
}

/// Thresholds sized like the soak bench's: above the stream's
/// out-of-sample noise, with the staleness fallback out of reach so
/// every event is detector-attributed.
fn drift_opts() -> DriftOptions {
    DriftOptions {
        delta: 1.0,
        lambda: 25.0,
        max_staleness_rows: usize::MAX,
        ..DriftOptions::default()
    }
}

fn rows_of(data: &Dataset) -> Vec<Vec<f64>> {
    (0..data.n_rows())
        .map(|r| data.columns.iter().map(|c| c[r]).collect())
        .collect()
}

/// The row stream every test folds: in-distribution rows, then the
/// surge. Built once — determinism claims are about one fixed stream.
fn stream_rows() -> &'static Vec<Vec<f64>> {
    static ROWS: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let (sim, target) = sims();
        let mut rows = rows_of(&unicorn::systems::generate(&sim, PRE_ROWS, 42 ^ 0x11));
        rows.extend(rows_of(&unicorn::systems::generate(
            &target,
            POST_ROWS,
            42 ^ 0x22,
        )));
        rows
    })
}

/// Every fitted coefficient vector of a snapshot's SCM, as exact bits.
fn scm_bits(snap: &EngineSnapshot) -> Vec<Option<Vec<u64>>> {
    let scm = snap.engine.scm();
    (0..scm.n_vars())
        .map(|v| {
            scm.coefficients_of(v)
                .map(|c| c.iter().map(|x| x.to_bits()).collect())
        })
        .collect()
}

/// One full streamed run: chunk boundaries from cycling `chunks`,
/// optional read-only query between flushes. Returns everything the
/// determinism claim quantifies over: the event log (trigger rows and
/// reasons — epochs are globally unique ids, so they only support
/// in-run ordering assertions, not cross-run comparison) and the final
/// SCM bits.
fn run_stream(pool: usize, chunks: &[usize], query_between: bool) -> FoldResult {
    let (sim, _) = sims();
    let opts = opts_on(pool);
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
    let epoch0 = cell.load().epoch;
    let mut pipeline = IngestPipeline::new(
        state,
        sim.clone(),
        opts,
        Arc::clone(&cell),
        drift_opts(),
        Arc::new(DriftStats::default()),
    );

    let tiers = sim.model.tiers();
    let probe = PerformanceQuery::CausalEffect {
        option: tiers.of_kind(VarKind::ConfigOption)[0],
        objective: tiers.of_kind(VarKind::Objective)[0],
    };

    let rows = stream_rows();
    let mut events = Vec::new();
    let mut at = 0usize;
    let mut i = 0usize;
    while at < rows.len() {
        let take = chunks[i % chunks.len()].min(rows.len() - at);
        i += 1;
        events.extend(pipeline.ingest_rows(&rows[at..at + take]));
        at += take;
        if query_between {
            // Serving load between flushes: reads the published snapshot
            // the way connection threads do. Must not perturb the fold.
            let snap = cell.load();
            let answer = snap.engine.estimate(&probe);
            assert!(format!("{answer:?}").contains("Effect"), "probe answered");
        }
    }
    // Every relearn published a fresh, newer epoch, and the cell holds
    // the last one.
    let mut prev = epoch0;
    for e in &events {
        assert!(e.epoch > prev, "epochs must advance: {events:?}");
        prev = e.epoch;
    }
    let snap = cell.load();
    assert_eq!(snap.epoch, prev, "cell must hold the last published epoch");
    let log = events
        .iter()
        .map(|e| format!("row {} {:?}", e.stream_row, e.reason))
        .collect();
    (log, scm_bits(&snap))
}

/// The reference fold: serial pool, the whole stream as one slab.
fn reference() -> &'static FoldResult {
    static REF: OnceLock<FoldResult> = OnceLock::new();
    REF.get_or_init(|| {
        let out = run_stream(1, &[usize::MAX], false);
        assert!(
            !out.0.is_empty(),
            "the workload surge must trip the detector"
        );
        assert!(
            out.0.iter().all(|e| e.contains("Drift")),
            "staleness is out of reach in this stream: {:?}",
            out.0
        );
        out
    })
}

#[test]
fn fixed_chunkings_and_pools_reproduce_the_reference_fold() {
    let expect = reference();
    for pool in POOLS {
        let got = run_stream(pool, &[16], pool == 2);
        assert_eq!(&got, expect, "pool {pool} chunk 16 diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Arbitrary flush boundaries (chunk sizes cycled from a random
    /// pattern) with interleaved query load never move a trigger row
    /// or a bit of the relearned SCM.
    #[test]
    fn drift_fold_is_chunk_invariant(
        chunks in prop::collection::vec(1usize..9, 1..5),
        pool_idx in 0usize..POOLS.len(),
    ) {
        let got = run_stream(POOLS[pool_idx], &chunks, true);
        prop_assert_eq!(&got, reference());
    }
}

#[test]
fn streamed_then_relearned_equals_cold_learn() {
    let expect = reference();
    let (sim, _) = sims();

    // Fold the stream through a pipeline, then force one final relearn
    // over everything it accumulated.
    let opts = opts_on(2);
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
    let mut pipeline = IngestPipeline::new(
        state,
        sim.clone(),
        opts.clone(),
        Arc::clone(&cell),
        drift_opts(),
        Arc::new(DriftStats::default()),
    );
    for chunk in stream_rows().chunks(7) {
        pipeline.ingest_rows(chunk);
    }
    let mut streamed = pipeline.into_state();
    streamed.relearn(&sim, &opts);
    let streamed_engine = streamed.engine(&sim, &opts);

    // The published snapshot (built at the last trigger) must already
    // match the reference fold's.
    assert_eq!(&scm_bits(&cell.load()), &expect.1);

    // A cold state over the identical rows, relearned once, must land on
    // the same bits as the streamed state's final relearn.
    let mut cold = UnicornState::bootstrap(&sim, &opts);
    for row in stream_rows() {
        cold.record_row(row);
    }
    cold.relearn(&sim, &opts);
    let cold_engine = cold.engine(&sim, &opts);
    let bits = |scm: &unicorn::inference::FittedScm| -> Vec<Option<Vec<u64>>> {
        (0..scm.n_vars())
            .map(|v| {
                scm.coefficients_of(v)
                    .map(|c| c.iter().map(|x| x.to_bits()).collect())
            })
            .collect()
    };
    assert_eq!(
        bits(streamed_engine.scm()),
        bits(cold_engine.scm()),
        "streamed-then-relearned SCM diverged from the cold learn"
    );
}

#[test]
fn v1_ingest_round_trip_acks_sheds_and_feeds_the_worker() {
    let (sim, _) = sims();
    let opts = opts_on(2);
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
    let width = cell.load().names.len();

    // A deliberately tiny buffer so backpressure is reachable; the
    // worker is spawned only *after* the shedding assertions, so the
    // buffer's fill level is deterministic until then.
    let queue = IngestQueue::new(8);
    let drift_stats = Arc::new(DriftStats::default());
    let pipeline = IngestPipeline::new(
        state,
        sim.clone(),
        opts,
        Arc::clone(&cell),
        DriftOptions::default(),
        Arc::clone(&drift_stats),
    );
    let ingest = Arc::new(IngestRouter::new());
    ingest.insert(
        "default",
        IngestEndpoint {
            queue: Arc::clone(&queue),
            drift: drift_stats,
        },
    );
    let server = Server::start_with_ingest(
        SnapshotRouter::single(Arc::clone(&cell)),
        ingest,
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_micros(200),
        },
    )
    .expect("server start");

    // The versioned query surface is a byte-for-byte alias of the
    // legacy route.
    let names = cell.load().names.clone();
    let tiers = sim.model.tiers();
    let q = format!(
        r#"{{"type":"causal_effect","option":"{}","objective":"{}"}}"#,
        names[tiers.of_kind(VarKind::ConfigOption)[0]],
        names[tiers.of_kind(VarKind::Objective)[0]],
    );
    let (s_legacy, legacy) =
        http_request(server.addr(), "POST", "/query", Some(&q)).expect("legacy query");
    let (s_v1, v1) = http_request(server.addr(), "POST", "/v1/tenants/default/query", Some(&q))
        .expect("v1 query");
    assert_eq!((s_legacy, s_v1), (200, 200), "{legacy} / {v1}");
    assert_eq!(legacy, v1, "v1 reply must be byte-identical to legacy");

    // Idle counters: zeros, fixed key order, straight off the wire.
    let (status, body) =
        http_request(server.addr(), "GET", "/v1/tenants/default/stats", None).expect("v1 stats");
    assert_eq!(status, 200, "{body}");
    assert!(
        body.ends_with(
            "\"ingest\":{\"rows\":0,\"flushes\":0,\"dropped\":0},\
             \"drift\":{\"triggers\":0,\"last_trigger_epoch\":0}}"
        ),
        "unexpected stats tail: {body}"
    );

    let body_of = |rows: &[Vec<f64>]| {
        Json::Obj(vec![(
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|&x| Json::Num(x)).collect()))
                    .collect(),
            ),
        )])
        .to_string()
    };
    let rows = rows_of(&unicorn::systems::generate(&sim, 10, 0xFEED));

    // Fill the 8-row buffer: the first post admits all 8; the overflow
    // post sheds both rows and answers an explicit backpressure error.
    let (status, ack) = http_request(
        server.addr(),
        "POST",
        "/v1/tenants/default/ingest",
        Some(&body_of(&rows[..8])),
    )
    .expect("ingest");
    assert_eq!(
        (status, ack.as_str()),
        (200, r#"{"accepted":8,"dropped":0}"#)
    );
    let (status, shed) = http_request(
        server.addr(),
        "POST",
        "/v1/tenants/default/ingest",
        Some(&body_of(&rows[8..])),
    )
    .expect("ingest overflow");
    assert_eq!(
        (status, shed.as_str()),
        (
            503,
            r#"{"error":{"code":"backpressure","message":"ingest buffer full"}}"#
        )
    );

    // Malformed bodies and unknown routes: the single v1 error shape.
    let bad = body_of(&[vec![1.0, 2.0]]);
    let (status, err) = http_request(
        server.addr(),
        "POST",
        "/v1/tenants/default/ingest",
        Some(&bad),
    )
    .expect("bad ingest");
    assert_eq!(status, 400, "{err}");
    let doc = parse_json(&err).expect("error JSON");
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")),
        Some(&Json::Str("bad_request".into())),
        "{err}"
    );
    assert!(
        err.contains(&format!("snapshot has {width} columns")),
        "{err}"
    );
    let (status, err) = http_request(
        server.addr(),
        "POST",
        "/v1/tenants/absent/ingest",
        Some(&body_of(&rows[..1])),
    )
    .expect("unknown tenant");
    assert_eq!(
        (status, err.as_str()),
        (
            404,
            r#"{"error":{"code":"unknown_tenant","message":"no such tenant"}}"#
        )
    );
    let (status, err) = http_request(server.addr(), "GET", "/v1/bogus", None).expect("bad route");
    assert_eq!(
        (status, err.as_str()),
        (
            404,
            r#"{"error":{"code":"unknown_endpoint","message":"no such endpoint"}}"#
        )
    );

    // Now attach the background worker: it drains the 8 buffered rows,
    // and the stats counters report the flush and the earlier shed.
    let worker = IngestWorker::spawn(pipeline, Arc::clone(&queue), Duration::from_millis(1));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http_request(server.addr(), "GET", "/v1/tenants/default/stats", None)
            .expect("v1 stats");
        assert_eq!(status, 200, "{body}");
        let doc = parse_json(&body).expect("stats JSON");
        let ingest_counters = doc.get("ingest").expect("ingest block").clone();
        if ingest_counters.get("flushes").and_then(Json::as_num) >= Some(1.0) {
            assert_eq!(ingest_counters.get("rows"), Some(&Json::Num(8.0)), "{body}");
            assert_eq!(
                ingest_counters.get("dropped"),
                Some(&Json::Num(2.0)),
                "{body}"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never flushed: {body}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    server.shutdown();
    queue.close();
    let pipeline = worker.join();
    assert_eq!(pipeline.rows_seen(), 8, "worker folded the admitted rows");
}
