//! Integration: the 242-option / 288-event SQLite variant stays tractable
//! end-to-end (Table 3's claim), and sparsity is what saves it.

use std::time::Instant;

use unicorn::discovery::{learn_causal_model, DiscoveryOptions};
use unicorn::graph::paths::count_causal_paths;
use unicorn::systems::scalability::{deepstream_variant, sqlite_variant};
use unicorn::systems::{generate, Environment, Hardware, Simulator};

#[test]
fn large_sqlite_variant_learns_within_time_cap() {
    let model = sqlite_variant(242, 288);
    assert_eq!(model.n_options(), 242);
    assert_eq!(model.n_events(), 288);
    let sim = Simulator::new(model, Environment::on(Hardware::Xavier), 71);
    let ds = generate(&sim, 150, 12);
    let start = Instant::now();
    let learned = learn_causal_model(
        &ds.columns,
        &ds.names,
        &sim.model.tiers(),
        // Bonferroni-style alpha: at 530 variables the skeleton runs
        // ~1e5 pairwise tests, so a 0.05 level would admit thousands of
        // false edges and destroy the sparsity the method relies on.
        &DiscoveryOptions {
            alpha: 1e-4,
            max_depth: 1,
            pds_depth: 0,
            ..Default::default()
        },
    );
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 300,
        "530-variable discovery too slow: {elapsed:?}"
    );
    // Sparsity: the padded variables keep the average degree low.
    assert!(
        learned.admg.average_degree() < 3.0,
        "graph not sparse: degree {:.2}",
        learned.admg.average_degree()
    );
    // Causal paths into the objectives stay enumerable.
    let objectives: Vec<usize> = (0..sim.model.n_objectives())
        .map(|o| ds.objective_node(o))
        .collect();
    let paths = count_causal_paths(&learned.admg, &objectives, 10_000);
    assert!(paths < 10_000, "path explosion: {paths}");
}

#[test]
fn padded_deepstream_matches_base_objectives() {
    let base = unicorn::systems::SubjectSystem::Deepstream.build();
    let padded = deepstream_variant(288);
    let env = Environment::on(Hardware::Xavier).params();
    let cfg = base.space.default_config();
    let a = base.true_objectives(&cfg, &env);
    let b = padded.true_objectives(&cfg, &env);
    for (x, y) in a.iter().zip(&b) {
        assert!(
            (x - y).abs() < 1e-9,
            "padding changed objectives: {x} vs {y}"
        );
    }
}

#[test]
fn degree_drops_as_padding_grows() {
    let small = sqlite_variant(34, 19).true_admg().average_degree();
    let large = sqlite_variant(242, 288).true_admg().average_degree();
    assert!(
        large < small,
        "degree did not drop: {small:.2} -> {large:.2}"
    );
}
