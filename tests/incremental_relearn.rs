//! The hard guarantee of the incremental relearn engine: for an
//! **arbitrary schedule of appends and relearns**, the warm-started path
//! ([`learn_causal_model_incremental`] over one growing segmented
//! `DataView`) produces a graph, sepsets, and CI-test-count trace
//! **bit-identical** to a cold recomputation
//! ([`learn_causal_model_on`] over a fresh view) at every step — and the
//! whole trace is independent of the worker-thread count (1, 2, 8; the
//! same values `UNICORN_THREADS` feeds through
//! `DiscoveryOptions::threads`).

use proptest::prelude::*;

use unicorn::discovery::{
    learn_causal_model_incremental, learn_causal_model_on, DiscoveryOptions, LearnedModel,
    RelearnSession,
};
use unicorn::graph::{TierConstraints, VarKind};
use unicorn::stats::dataview::DataView;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// A five-variable synthetic stack (two options, two events, one
/// objective) with enough structure that relearns actually move: option 0
/// drives event 0, both events drive the objective, option 1 drives
/// event 1.
fn stack_stream(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037);
    let mut cols: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let o0 = (i % 4) as f64;
        let o1 = ((i / 2) % 2) as f64;
        let e0 = 2.0 * o0 + 0.4 * lcg(&mut s);
        let e1 = 1.5 * o1 - 0.5 * e0 + 0.4 * lcg(&mut s);
        let obj = -e0 + 0.5 * e1 + 0.3 * lcg(&mut s);
        for (c, v) in cols.iter_mut().zip([o0, o1, e0, e1, obj]) {
            c.push(v);
        }
    }
    cols
}

fn stack_names_tiers() -> (Vec<String>, TierConstraints) {
    let names = ["opt0", "opt1", "ev0", "ev1", "obj"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let tiers = TierConstraints::new(vec![
        VarKind::ConfigOption,
        VarKind::ConfigOption,
        VarKind::SystemEvent,
        VarKind::SystemEvent,
        VarKind::Objective,
    ]);
    (names, tiers)
}

/// The comparable fingerprint of one relearn step.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    directed: Vec<(usize, usize)>,
    bidirected: Vec<(usize, usize)>,
    n_ci_tests: usize,
    sepsets: Vec<(usize, usize, Option<Vec<usize>>)>,
    pag_adjacent: Vec<bool>,
}

fn trace_of(m: &LearnedModel, n_vars: usize) -> Trace {
    let mut sepsets = Vec::new();
    let mut pag_adjacent = Vec::new();
    for x in 0..n_vars {
        for y in (x + 1)..n_vars {
            sepsets.push((x, y, m.sepsets.get(x, y).map(<[usize]>::to_vec)));
            pag_adjacent.push(m.pag.adjacent(x, y));
        }
    }
    Trace {
        directed: m.admg.directed_edges().to_vec(),
        bidirected: m.admg.bidirected_edges().to_vec(),
        n_ci_tests: m.n_ci_tests,
        sepsets,
        pag_adjacent,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary append schedule, every relearn compared against cold.
    #[test]
    fn incremental_relearn_bit_identical_to_cold(
        seed in 0u64..1_000_000,
        batches in prop::collection::vec(1usize..4, 3..7),
    ) {
        let (names, tiers) = stack_names_tiers();
        let n0 = 40usize;
        let total: usize = n0 + batches.iter().sum::<usize>();
        let stream = stack_stream(total, seed);
        let initial: Vec<Vec<f64>> = stream.iter().map(|c| c[..n0].to_vec()).collect();

        // The per-relearn traces for each thread count must all agree.
        let mut traces_by_threads: Vec<Vec<Trace>> = Vec::new();
        for &threads in &[1usize, 2, 8] {
            let opts = DiscoveryOptions {
                alpha: 0.01,
                max_depth: 2,
                pds_depth: 1,
                objective_completion: 2,
                threads: Some(threads),
                ..DiscoveryOptions::default()
            };
            let mut session = RelearnSession::default();
            let mut view = DataView::from_columns(&initial);
            let mut cold_columns = initial.clone();
            let mut cursor = n0;
            let mut traces = Vec::new();
            for &batch in &batches {
                // Stage `batch` new rows, fold them in as one epoch bump.
                let rows: Vec<Vec<f64>> = (cursor..cursor + batch)
                    .map(|r| stream.iter().map(|c| c[r]).collect())
                    .collect();
                cursor += batch;
                view = view.append_rows(&rows);
                for (col, row) in cold_columns.iter_mut().zip(
                    (0..5).map(|c| rows.iter().map(move |r| r[c])),
                ) {
                    col.extend(row);
                }

                let warm =
                    learn_causal_model_incremental(&view, &names, &tiers, &opts, &mut session);
                let cold = learn_causal_model_on(
                    &DataView::from_columns(&cold_columns),
                    &names,
                    &tiers,
                    &opts,
                );
                let warm_trace = trace_of(&warm, 5);
                prop_assert_eq!(&warm_trace, &trace_of(&cold, 5));
                // Relearn on unchanged data must reproduce the model
                // without divergence (the zero-dirty-edges fast path).
                let again =
                    learn_causal_model_incremental(&view, &names, &tiers, &opts, &mut session);
                prop_assert_eq!(&warm_trace, &trace_of(&again, 5));
                traces.push(warm_trace);
            }
            traces_by_threads.push(traces);
        }
        prop_assert_eq!(&traces_by_threads[0], &traces_by_threads[1]);
        prop_assert_eq!(&traces_by_threads[0], &traces_by_threads[2]);
    }
}

/// Single-row appends (the `measure_and_update` cadence) through the
/// `append_row` fast path must match batched appends and cold runs.
#[test]
fn single_row_appends_match_batched_and_cold() {
    let (names, tiers) = stack_names_tiers();
    let stream = stack_stream(60, 7);
    let initial: Vec<Vec<f64>> = stream.iter().map(|c| c[..50].to_vec()).collect();
    let opts = DiscoveryOptions {
        alpha: 0.01,
        max_depth: 2,
        pds_depth: 1,
        threads: Some(2),
        ..DiscoveryOptions::default()
    };

    let mut session = RelearnSession::default();
    let mut view = DataView::from_columns(&initial);
    for r in 50..60 {
        let row: Vec<f64> = stream.iter().map(|c| c[r]).collect();
        view = view.append_row(&row);
    }
    let warm = learn_causal_model_incremental(&view, &names, &tiers, &opts, &mut session);
    let cold = learn_causal_model_on(&DataView::from_columns(&stream), &names, &tiers, &opts);
    assert_eq!(trace_of(&warm, 5), trace_of(&cold, 5));
    assert_eq!(view.n_rows(), 60);
}
