//! Integration: the optimization task improves on random sampling with the
//! same budget, and transfer reuse carries useful knowledge across
//! hardware.

use unicorn::baselines::{smac_optimize, SmacOptions};
use unicorn::core::{
    learn_source_state, optimize_single, transfer_debug, TransferMode, UnicornOptions,
};
use unicorn::systems::{
    discover_faults, generate, Environment, FaultDiscoveryOptions, Hardware, Simulator,
    SubjectSystem,
};

#[test]
fn optimization_beats_random_sampling_at_equal_budget() {
    let sim = Simulator::new(
        SubjectSystem::Xception.build(),
        Environment::on(Hardware::Tx2),
        61,
    );
    let opts = UnicornOptions {
        initial_samples: 30,
        budget: 30,
        ..Default::default()
    };
    let out = optimize_single(&sim, 0, &opts);
    // Random baseline with the same total measurement count.
    let random = generate(&sim, 60, 999);
    let random_best = random
        .objective_column(0)
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        out.best_value <= random_best * 1.05,
        "optimizer {:.2} worse than random {:.2}",
        out.best_value,
        random_best
    );
}

#[test]
fn unicorn_and_smac_both_minimize_energy() {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Xavier),
        62,
    );
    let uni = optimize_single(
        &sim,
        1,
        &UnicornOptions {
            initial_samples: 25,
            budget: 25,
            ..Default::default()
        },
    );
    let smac = smac_optimize(
        &sim,
        1,
        &SmacOptions {
            n_init: 25,
            budget: 50,
            ..Default::default()
        },
    );
    // Both must land clearly below the default configuration.
    let default_energy = sim.true_objectives(&sim.model.space.default_config())[1];
    assert!(uni.best_value < default_energy);
    assert!(smac.best_value < default_energy);
}

#[test]
fn transfer_reuse_close_to_rerun() {
    let source = Simulator::new(
        SubjectSystem::Xception.build(),
        Environment::on(Hardware::Xavier),
        63,
    );
    let target = Simulator::new(
        SubjectSystem::Xception.build(),
        Environment::on(Hardware::Tx2),
        64,
    );
    let catalog = discover_faults(
        &target,
        &FaultDiscoveryOptions {
            n_samples: 500,
            ace_bases: 4,
            ..Default::default()
        },
    );
    let fault = catalog.faults.first().expect("fault exists");
    let opts = UnicornOptions {
        initial_samples: 50,
        budget: 8,
        ..Default::default()
    };
    let src_state = learn_source_state(&source, &opts);

    let o = fault.objectives[0];
    let gain = |mode| {
        let out = transfer_debug(&src_state, &target, fault, &catalog, &opts, mode);
        let after = target.true_objectives(&out.best_config)[o];
        unicorn::core::gain_percent(fault.true_objectives[o], after)
    };
    let reuse = gain(TransferMode::Reuse);
    let rerun = gain(TransferMode::Rerun);
    // The reused model must retain most of the fresh model's repair power
    // (the paper's transferability claim); a generous band keeps the test
    // robust to seeds.
    assert!(
        reuse >= rerun - 35.0,
        "reuse gain {reuse:.1}% collapsed vs rerun {rerun:.1}%"
    );
    assert!(
        reuse > 0.0,
        "reused model failed to improve the fault at all"
    );
}
