//! Equivalence guarantees of the columnar data layer:
//!
//! 1. CI tests over a cached [`DataView`] return **bit-identical**
//!    statistics and p-values to direct (uncached) computation.
//! 2. The parallel PC-stable skeleton produces the same graph, sepsets,
//!    and CI-test count for every worker-thread count.
//! 3. The full discovery pipeline over a view equals the column-based
//!    entry point.

use unicorn::discovery::{
    learn_causal_model, learn_causal_model_on, pc_skeleton_with_threads, DiscoveryOptions,
};
use unicorn::stats::dataview::DataView;
use unicorn::stats::independence::{CiTest, MixedTest};
use unicorn::systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn testbed(n: usize) -> (unicorn::systems::Dataset, Simulator) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        11,
    );
    let ds = generate(&sim, n, 0xAB);
    (ds, sim)
}

#[test]
fn cached_ci_results_bit_identical_to_direct() {
    let (ds, _) = testbed(120);
    let view = ds.view();
    let direct = MixedTest::new(&ds.columns);
    let cached = MixedTest::from_view(&view);
    let p = ds.columns.len();
    // A deterministic battery over pairs with assorted conditioning sets.
    let mut checked = 0usize;
    for x in 0..p.min(12) {
        for y in (x + 1)..p.min(12) {
            for z in [vec![], vec![(y + 1) % p], vec![(x + 2) % p, (y + 3) % p]] {
                if z.contains(&x) || z.contains(&y) {
                    continue;
                }
                let a = direct.test(x, y, &z);
                let b = cached.test(x, y, &z);
                assert_eq!(
                    a.statistic.to_bits(),
                    b.statistic.to_bits(),
                    "statistic differs at ({x},{y}|{z:?})"
                );
                assert_eq!(
                    a.p_value.to_bits(),
                    b.p_value.to_bits(),
                    "p-value differs at ({x},{y}|{z:?})"
                );
                // Second query must be served by the cache, identically.
                let c = cached.test(x, y, &z);
                assert_eq!(b.p_value.to_bits(), c.p_value.to_bits());
                // Permuted arguments (swapped pair, reversed conditioning
                // set) must produce the same bits on both backends — the
                // cache entry written above must not leak rounding from
                // one argument order into another.
                let zr: Vec<usize> = z.iter().rev().copied().collect();
                let d = direct.test(y, x, &zr);
                let e = cached.test(y, x, &zr);
                assert_eq!(a.p_value.to_bits(), d.p_value.to_bits());
                assert_eq!(d.p_value.to_bits(), e.p_value.to_bits());
                checked += 1;
            }
        }
    }
    assert!(checked > 50, "battery too small: {checked}");
    assert!(
        view.ci_cache_hits() >= checked as u64,
        "cache was not exercised"
    );
}

#[test]
fn parallel_skeleton_identical_across_thread_counts() {
    let (ds, sim) = testbed(150);
    let tiers = sim.model.tiers();
    let view = ds.view();
    let n = ds.names.len();

    let run = |threads: usize| {
        // Fresh view per run so cache state cannot leak between runs.
        let view = DataView::from_columns(view.columns());
        let test = MixedTest::from_view(&view);
        pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 2, threads)
    };
    let baseline = run(1);
    for threads in [2, 8] {
        let sk = run(threads);
        assert_eq!(
            sk.n_tests, baseline.n_tests,
            "CI-test count differs at {threads} threads"
        );
        for x in 0..n {
            for y in (x + 1)..n {
                assert_eq!(
                    sk.graph.adjacent(x, y),
                    baseline.graph.adjacent(x, y),
                    "edge ({x},{y}) differs at {threads} threads"
                );
                assert_eq!(
                    sk.sepsets.get(x, y),
                    baseline.sepsets.get(x, y),
                    "sepset ({x},{y}) differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn view_pipeline_equals_column_pipeline() {
    let (ds, sim) = testbed(150);
    let tiers = sim.model.tiers();
    let opts = DiscoveryOptions {
        max_depth: 1,
        pds_depth: 1,
        ..Default::default()
    };
    let by_columns = learn_causal_model(&ds.columns, &ds.names, &tiers, &opts);
    let by_view = learn_causal_model_on(&ds.view(), &ds.names, &tiers, &opts);
    assert_eq!(
        by_columns.admg.directed_edges(),
        by_view.admg.directed_edges()
    );
    assert_eq!(
        by_columns.admg.bidirected_edges(),
        by_view.admg.bidirected_edges()
    );
    assert_eq!(by_columns.n_ci_tests, by_view.n_ci_tests);
}

#[test]
fn quantile_cuts_match_rescan() {
    // The cold discretizer fit runs as an order-statistics merge over the
    // cached per-segment sorted runs; its cuts (and hence codes) must be
    // bit-identical to a fit over the merged, re-scanned sorted column —
    // at every epoch of an append chain.
    use unicorn::stats::discretize::Discretizer;
    let (ds, _) = testbed(150);
    let mut view = ds.view();
    for step in 0..3 {
        if step > 0 {
            let extra: Vec<Vec<f64>> = (0..step * 17)
                .map(|i| {
                    (0..ds.columns.len())
                        .map(|c| ds.columns[c][(i * 7 + step) % ds.n_rows()])
                        .collect()
                })
                .collect();
            view = view.append_rows(&extra);
        }
        for col in 0..ds.columns.len() {
            for (bins, max_levels) in [(4usize, 8usize), (5, 4)] {
                let cached = view.codes(col, bins, max_levels);
                let rescan = Discretizer::fit_sorted(&view.sorted_column(col), bins, max_levels);
                assert_eq!(
                    cached.codes,
                    rescan.transform(&view.columns()[col]),
                    "col {col} bins {bins} step {step}"
                );
                assert_eq!(cached.arity, rescan.arity());
            }
        }
    }
}

#[test]
fn append_rows_equals_rebuild() {
    let (ds, sim) = testbed(60);
    let more = generate(&sim, 15, 0xCD);
    let grown = ds
        .view()
        .append_rows(&(0..more.n_rows()).map(|r| more.row(r)).collect::<Vec<_>>());
    let rebuilt = ds.extended_with(&more).view();
    assert_eq!(grown.n_rows(), 75);
    assert_eq!(grown.columns(), rebuilt.columns());
    // Statistics computed on the grown view match a from-scratch build.
    assert_eq!(*grown.correlation(), *rebuilt.correlation());
}

#[test]
fn append_chain_shares_segments_and_matches_cold_statistics() {
    // A long single-row append chain (the measure_and_update cadence):
    // sealed segments are Arc-shared between consecutive views, and every
    // cached statistic along the chain is bit-identical to a cold build.
    let (ds, sim) = testbed(300);
    let more = generate(&sim, 40, 0x5E6);
    let mut view = ds.view();
    let mut cold_ds = ds.clone();
    for r in 0..more.n_rows() {
        let prev = view.clone();
        view = view.append_row(&more.row(r));
        cold_ds.push_row(&more.row(r));
        // Sealed segments are shared with the predecessor (300+ rows ⇒
        // sealed segments exist throughout).
        assert!(view.shared_segments_with(&prev) >= 1, "no segment sharing");
        assert_eq!(view.lineage(), prev.lineage(), "chain must keep lineage");
        assert_ne!(view.epoch(), prev.epoch(), "append must bump the epoch");
    }
    let cold = cold_ds.view();
    assert_eq!(view.n_rows(), 340);
    assert_eq!(view.columns(), cold.columns());
    assert_eq!(*view.correlation(), *cold.correlation());
    assert_eq!(view.column_stats(), cold.column_stats());
    // CI outcomes on the grown view match the cold view bit for bit.
    let warm_test = MixedTest::from_view(&view);
    let cold_test = MixedTest::from_view(&cold);
    for (x, y, z) in [(0, 1, vec![]), (0, 2, vec![1]), (2, 3, vec![0, 1])] {
        let a = warm_test.test(x, y, &z);
        let b = cold_test.test(x, y, &z);
        assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
        assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
    }
}
