//! Integration: causal discovery over simulator data recovers the
//! ground-truth structure to a useful degree, and improves with samples.

use unicorn::discovery::{learn_causal_model, DiscoveryOptions};
use unicorn::graph::structural_hamming_distance;
use unicorn::systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn opts() -> DiscoveryOptions {
    DiscoveryOptions {
        alpha: 0.01,
        max_depth: 2,
        pds_depth: 0,
        ..Default::default()
    }
}

#[test]
fn learned_edges_are_mostly_true_edges() {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        51,
    );
    let ds = generate(&sim, 400, 9);
    let model = learn_causal_model(&ds.columns, &ds.names, &sim.model.tiers(), &opts());
    let truth = sim.model.true_admg();

    let mut correct = 0usize;
    let mut wrong = 0usize;
    for &(f, t) in model.admg.directed_edges() {
        // Count an edge as correct if the ground truth has the adjacency
        // (orientation may legitimately differ within the equivalence
        // class for event-event links).
        if truth.directed_edges().contains(&(f, t)) || truth.directed_edges().contains(&(t, f)) {
            correct += 1;
        } else {
            wrong += 1;
        }
    }
    assert!(
        correct >= 3 * wrong.max(1),
        "edge precision too low: {correct} correct vs {wrong} spurious"
    );
    assert!(correct >= 15, "too few true edges recovered: {correct}");
}

#[test]
fn shd_decreases_with_sample_size() {
    let sim = Simulator::new(
        SubjectSystem::Xception.build(),
        Environment::on(Hardware::Tx2),
        52,
    );
    let stream = generate(&sim, 400, 10);
    let truth = sim.model.true_admg().to_mixed();
    let shd_at = |k: usize| -> usize {
        let cols: Vec<Vec<f64>> = stream.columns.iter().map(|c| c[..k].to_vec()).collect();
        let m = learn_causal_model(&cols, &stream.names, &sim.model.tiers(), &opts());
        structural_hamming_distance(&m.admg.to_mixed(), &truth)
    };
    let early = shd_at(30);
    let late = shd_at(400);
    assert!(
        late < early,
        "SHD did not improve with data: {early} -> {late}"
    );
}

#[test]
fn tier_constraints_hold_in_learned_models() {
    let sim = Simulator::new(
        SubjectSystem::Sqlite.build(),
        Environment::on(Hardware::Xavier),
        53,
    );
    let ds = generate(&sim, 250, 11);
    let model = learn_causal_model(&ds.columns, &ds.names, &sim.model.tiers(), &opts());
    let n_opt = sim.model.n_options();
    let n_ev = sim.model.n_events();
    for &(f, t) in model.admg.directed_edges() {
        // Nothing points into an option.
        assert!(t >= n_opt, "edge into option: {f} -> {t}");
        // Objectives are sinks.
        assert!(f < n_opt + n_ev, "edge out of objective: {f} -> {t}");
    }
    for &(a, b) in model.admg.bidirected_edges() {
        assert!(
            a >= n_opt && b >= n_opt,
            "bidirected edge touching an option"
        );
    }
}
