//! Integration: the full Unicorn pipeline — simulate, catalog faults,
//! learn, diagnose, repair — beats the fault and produces sane metrics.

use unicorn::core::{debug_fault, score_debugging, UnicornOptions};
use unicorn::systems::{
    discover_faults, Environment, FaultDiscoveryOptions, Hardware, Simulator, SubjectSystem,
};

fn fixture() -> (Simulator, unicorn::systems::FaultCatalog) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xE2E,
    );
    let catalog = discover_faults(
        &sim,
        &FaultDiscoveryOptions {
            n_samples: 600,
            ace_bases: 4,
            ..Default::default()
        },
    );
    (sim, catalog)
}

#[test]
fn unicorn_repairs_a_latency_fault_with_positive_gain() {
    let (sim, catalog) = fixture();
    let fault = catalog
        .faults
        .iter()
        .find(|f| f.objectives.contains(&0))
        .expect("latency fault in the tail");
    let out = debug_fault(
        &sim,
        fault,
        &catalog,
        &UnicornOptions {
            initial_samples: 60,
            budget: 12,
            ..Default::default()
        },
    );
    let after = sim.true_objectives(&out.best_config);
    let scores = score_debugging(
        fault,
        &catalog,
        &out.diagnosed_options,
        &after,
        out.wall_time_s,
        out.n_measurements,
    );
    assert!(
        scores.gains[0] > 20.0,
        "expected a meaningful repair, got gain {:.1}%",
        scores.gains[0]
    );
    assert!(scores.accuracy > 0.0);
    assert!((0.0..=100.0).contains(&scores.precision));
    assert!((0.0..=100.0).contains(&scores.recall));
    // Trajectory bookkeeping is consistent with the budget.
    assert!(out.trajectory.len() <= 12);
    assert!(out.n_measurements <= 60 + 1 + 12);
}

#[test]
fn diagnosis_overlaps_ground_truth_root_causes() {
    let (sim, catalog) = fixture();
    let fault = catalog
        .faults
        .iter()
        .max_by(|a, b| a.root_causes.len().cmp(&b.root_causes.len()))
        .expect("fault exists");
    let out = debug_fault(
        &sim,
        fault,
        &catalog,
        &UnicornOptions {
            initial_samples: 60,
            budget: 12,
            ..Default::default()
        },
    );
    // At least one diagnosed option must be a true root cause — the ACE
    // ranking pushes the heavy hitters first.
    let hit = out
        .diagnosed_options
        .iter()
        .any(|o| fault.root_causes.contains(o));
    assert!(
        hit,
        "diagnosis {:?} misses all true causes {:?}",
        out.diagnosed_options, fault.root_causes
    );
}

#[test]
fn multi_objective_fault_repair_improves_both_objectives() {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Xavier),
        0xE2F,
    );
    let catalog = discover_faults(
        &sim,
        &FaultDiscoveryOptions {
            n_samples: 900,
            ace_bases: 4,
            ..Default::default()
        },
    );
    let Some(fault) = catalog.faults.iter().find(|f| f.is_multi_objective()) else {
        // Multi-objective tail faults are rare at this sample size; the
        // single-objective path is covered above.
        return;
    };
    let out = debug_fault(
        &sim,
        fault,
        &catalog,
        &UnicornOptions {
            initial_samples: 60,
            budget: 12,
            ..Default::default()
        },
    );
    let after = sim.true_objectives(&out.best_config);
    for &o in &fault.objectives {
        assert!(
            after[o] <= fault.true_objectives[o],
            "objective {o} worsened: {} > {}",
            after[o],
            fault.true_objectives[o]
        );
    }
}
