//! Serving-layer coalescing invariants: a merged admission batch must be
//! a pure throughput optimization. For any workload of performance
//! queries, the demultiplexed answers of one coalesced `PlanBatch` are
//! bit-identical to estimating each query alone — at every worker-pool
//! size — and an epoch flip interleaved with an in-flight batch never
//! leaks across the snapshot boundary: the in-flight reader keeps the
//! epoch it loaded, post-flip requests see the new one.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use unicorn::core::{SnapshotCell, UnicornOptions, UnicornState};
use unicorn::exec::Executor;
use unicorn::graph::{NodeId, VarKind};
use unicorn::inference::{answer_coalesced, PerformanceQuery, QosGoal, QueryAnswer};
use unicorn::systems::{Environment, Hardware, Simulator, SubjectSystem};

const POOLS: [usize; 3] = [1, 2, 8];
const SAMPLES: usize = 60;

fn sim() -> Simulator {
    Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        42,
    )
}

fn opts_on(pool: usize) -> UnicornOptions {
    let mut opts = UnicornOptions {
        initial_samples: SAMPLES,
        ..UnicornOptions::default()
    };
    opts.discovery.exec = Some(Executor::new(pool));
    opts
}

/// One learned snapshot per pool size, built once: the model is
/// bit-identical across pools (the house thread-count contract), so the
/// per-pool snapshots differ only in executor.
fn snapshots() -> &'static Vec<Arc<unicorn::core::EngineSnapshot>> {
    static SNAPSHOTS: OnceLock<Vec<Arc<unicorn::core::EngineSnapshot>>> = OnceLock::new();
    SNAPSHOTS.get_or_init(|| {
        let sim = sim();
        POOLS
            .iter()
            .map(|&pool| {
                let opts = opts_on(pool);
                UnicornState::bootstrap(&sim, &opts).publish_snapshot(&sim, &opts)
            })
            .collect()
    })
}

/// Strict bitwise equality of answers (scores, order, payloads).
fn assert_bits_equal(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    match (a, b) {
        (QueryAnswer::Effect(x), QueryAnswer::Effect(y))
        | (QueryAnswer::Probability(x), QueryAnswer::Probability(y))
        | (QueryAnswer::Expectation(x), QueryAnswer::Expectation(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: scalar drift");
        }
        (QueryAnswer::RootCauses(xs), QueryAnswer::RootCauses(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{what}: rank length drift");
            for ((nx, sx), (ny, sy)) in xs.iter().zip(ys) {
                assert_eq!(nx, ny, "{what}: rank order drift");
                assert_eq!(sx.to_bits(), sy.to_bits(), "{what}: score drift");
            }
        }
        (QueryAnswer::Repairs(xs), QueryAnswer::Repairs(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{what}: repair count drift");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.assignments, y.assignments, "{what}: assignment drift");
                assert_eq!(x.ice.to_bits(), y.ice.to_bits(), "{what}: ICE drift");
                assert_eq!(
                    x.improvement.to_bits(),
                    y.improvement.to_bits(),
                    "{what}: improvement drift"
                );
            }
        }
        (
            QueryAnswer::Unidentifiable {
                cause: c1,
                effect: e1,
            },
            QueryAnswer::Unidentifiable {
                cause: c2,
                effect: e2,
            },
        ) => {
            assert_eq!((c1, e1), (c2, e2), "{what}: unidentifiable pair drift");
        }
        (a, b) => panic!("{what}: answer variant drift: {a:?} vs {b:?}"),
    }
}

/// A raw generated query: kind + index/threshold material, mapped onto
/// the system's actual nodes and domains at use time.
#[derive(Debug, Clone)]
struct RawQuery {
    kind: u8,
    a: usize,
    b: usize,
    threshold: f64,
}

fn raw_query() -> impl Strategy<Value = RawQuery> {
    (0u8..5, 0usize..64, 0usize..64, 5.0f64..80.0).prop_map(|(kind, a, b, threshold)| RawQuery {
        kind,
        a,
        b,
        threshold,
    })
}

fn realize(
    raw: &RawQuery,
    options: &[NodeId],
    objectives: &[NodeId],
    sim: &Simulator,
) -> PerformanceQuery {
    let option = options[raw.a % options.len()];
    let objective = objectives[raw.b % objectives.len()];
    // Intervene at a real domain value of the chosen option.
    let values = &sim.model.space.option(raw.a % options.len()).values;
    let value = values[raw.b % values.len()];
    match raw.kind {
        0 => PerformanceQuery::CausalEffect { option, objective },
        1 => PerformanceQuery::ProbabilityOfQos {
            interventions: vec![(option, value)],
            objective,
            threshold: raw.threshold,
        },
        2 => PerformanceQuery::ExpectedObjective {
            interventions: vec![(option, value)],
            objective,
        },
        3 => PerformanceQuery::RootCauses {
            goal: QosGoal::single(objective, raw.threshold),
        },
        _ => PerformanceQuery::Repairs {
            goal: QosGoal::single(objective, raw.threshold),
            fault_row: raw.a % SAMPLES,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant: coalesced == standalone, bitwise, at every
    /// pool size — and the answers agree bitwise *across* pool sizes.
    #[test]
    fn coalesced_batch_is_bit_identical_to_standalone(raws in prop::collection::vec(raw_query(), 1..5)) {
        let sim = sim();
        let tiers = sim.model.tiers();
        let options = tiers.of_kind(VarKind::ConfigOption);
        let objectives = tiers.of_kind(VarKind::Objective);
        let queries: Vec<PerformanceQuery> = raws
            .iter()
            .map(|r| realize(r, &options, &objectives, &sim))
            .collect();

        let mut per_pool: Vec<Vec<QueryAnswer>> = Vec::new();
        for (snap, pool) in snapshots().iter().zip(POOLS) {
            let coalesced = answer_coalesced(&snap.engine, &queries);
            for (i, (got, q)) in coalesced.iter().zip(&queries).enumerate() {
                let want = snap.engine.estimate(q);
                assert_bits_equal(got, &want, &format!("pool={pool} query#{i}"));
            }
            per_pool.push(coalesced);
        }
        for (answers, pool) in per_pool[1..].iter().zip(&POOLS[1..]) {
            for (i, (got, base)) in answers.iter().zip(&per_pool[0]).enumerate() {
                assert_bits_equal(got, base, &format!("pool={pool} vs pool=1 query#{i}"));
            }
        }
    }

    /// Epoch-flip interleave: a batch that loaded its snapshot before a
    /// publish keeps computing against the old epoch (bit-identical to
    /// that epoch's standalone answers); a load after the flip sees the
    /// new epoch and its answers instead.
    #[test]
    fn epoch_flip_never_leaks_into_inflight_batches(raws in prop::collection::vec(raw_query(), 1..4)) {
        let sim = sim();
        let tiers = sim.model.tiers();
        let options = tiers.of_kind(VarKind::ConfigOption);
        let objectives = tiers.of_kind(VarKind::Objective);
        let queries: Vec<PerformanceQuery> = raws
            .iter()
            .map(|r| realize(r, &options, &objectives, &sim))
            .collect();

        let opts = opts_on(2);
        let mut state = UnicornState::bootstrap(&sim, &opts);
        let cell = SnapshotCell::new(state.publish_snapshot(&sim, &opts));

        // An in-flight batch loads its snapshot...
        let held = cell.load();
        let epoch_before = held.epoch;

        // ...a relearn grows the data and flips the epoch underneath it...
        let extra = unicorn::systems::generate(&sim, 16, 0xF11F);
        state.extend_data(&extra);
        cell.publish(state.publish_snapshot(&sim, &opts));

        // ...and the in-flight batch still answers against the epoch it
        // loaded, bit-identical to standalone estimates on that epoch.
        prop_assert_eq!(held.epoch, epoch_before);
        let coalesced = answer_coalesced(&held.engine, &queries);
        for (i, (got, q)) in coalesced.iter().zip(&queries).enumerate() {
            assert_bits_equal(got, &held.engine.estimate(q), &format!("in-flight query#{i}"));
        }

        // A post-flip admission sees the new epoch and the refit model.
        let fresh = cell.load();
        prop_assert!(fresh.epoch > epoch_before, "publish must advance the epoch");
        prop_assert_eq!(fresh.n_rows, held.n_rows + 16);
        let coalesced = answer_coalesced(&fresh.engine, &queries);
        for (i, (got, q)) in coalesced.iter().zip(&queries).enumerate() {
            assert_bits_equal(got, &fresh.engine.estimate(q), &format!("post-flip query#{i}"));
        }
    }
}
