//! Blocked-kernel equivalence proptests: the lane-blocked moment and
//! comoment kernels, the dense contingency (G-test) kernels, and the
//! 8-row SCM lane sweep must reproduce their scalar reference paths **bit
//! for bit** — at every awkward length (empty input, shorter than one
//! lane, length not a lane multiple, segment boundaries straddled). These
//! pins are what lets the house bit-exactness invariant survive future
//! kernel work: a reassociated fold or a contracted FMA shows up here as
//! a hard failure, not as benchmark-only drift.

use proptest::prelude::*;

use unicorn::inference::{FittedScm, ResidualMode, SIM_LANES};
use unicorn::stats::correlation_matrix;
use unicorn::stats::descriptive::{chunk_comoment, chunk_comoment_lanes, MOMENT_CHUNK};
use unicorn::stats::entropy::{
    conditional_mutual_information, conditional_mutual_information_sparse, mutual_information,
    mutual_information_sparse,
};
use unicorn::stats::pearson;
use unicorn::stats::segment::{chunk_cross_comoments, n_pairs, pair_index};

/// A layered chain ADMG over `p` nodes (0 and 1 are roots).
fn chain_admg(p: usize) -> unicorn::graph::Admg {
    let mut g = unicorn::graph::Admg::new((0..p).map(|i| format!("v{i}")).collect());
    for v in 2..p {
        g.add_directed(v - 2, v);
        g.add_directed(v - 1, v);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lane-blocked comoment kernel equals the scalar per-pair fold
    /// for any partner count (full lanes, remainders 1..=7, fewer
    /// partners than one lane) and any chunk length.
    #[test]
    fn comoment_lanes_match_scalar_kernel(
        n in 0usize..(MOMENT_CHUNK + 1),
        p in 0usize..19,
        seed in 0u64..1_000,
    ) {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let xs: Vec<f64> = (0..n).map(|_| next() * 100.0).collect();
        let ys: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| next() * 100.0).collect())
            .collect();
        let mx = xs.iter().sum::<f64>() / (n.max(1)) as f64;
        let my: Vec<f64> = ys
            .iter()
            .map(|c| c.iter().sum::<f64>() / (n.max(1)) as f64)
            .collect();
        let slices: Vec<&[f64]> = ys.iter().map(Vec::as_slice).collect();
        let mut out = vec![0.0; p];
        chunk_comoment_lanes(&xs, mx, &slices, &my, &mut out);
        for k in 0..p {
            let scalar = chunk_comoment(&xs, &ys[k], mx, my[k]);
            prop_assert_eq!(
                out[k].to_bits(), scalar.to_bits(),
                "partner {} diverged (n={}, p={})", k, n, p
            );
        }
    }

    /// The chunk-major blocked correlation matrix equals the scalar
    /// per-pair `pearson` fold across chunk-straddling lengths.
    #[test]
    fn correlation_matrix_matches_per_pair_pearson(
        n in 0usize..(2 * MOMENT_CHUNK + 3),
        p in 0usize..11,
        seed in 0u64..1_000,
    ) {
        let mut s = seed.wrapping_mul(0x9E3779B9).wrapping_add(7);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let cols: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| next() * 10.0).collect())
            .collect();
        let m = correlation_matrix(&cols);
        for i in 0..p {
            prop_assert_eq!(m[(i, i)].to_bits(), 1.0f64.to_bits());
            for j in (i + 1)..p {
                let r = pearson(&cols[i], &cols[j]);
                prop_assert_eq!(
                    m[(i, j)].to_bits(), r.to_bits(),
                    "pair ({}, {}) diverged (n={})", i, j, n
                );
                prop_assert_eq!(m[(j, i)].to_bits(), r.to_bits());
            }
        }
    }

    /// The packed cross-comoment triangle covers every pair exactly once
    /// with the scalar kernel's bits.
    #[test]
    fn cross_comoment_triangle_matches_pairs(
        n in 0usize..(MOMENT_CHUNK + 1),
        p in 0usize..12,
        seed in 0u64..500,
    ) {
        let mut s = seed.wrapping_add(3);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let cols: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| next()).collect())
            .collect();
        let means: Vec<f64> = cols
            .iter()
            .map(|c| c.iter().sum::<f64>() / (n.max(1)) as f64)
            .collect();
        let slices: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let mut cross = vec![0.0; n_pairs(p)];
        chunk_cross_comoments(&slices, &means, &mut cross);
        for i in 0..p {
            for j in (i + 1)..p {
                let scalar = chunk_comoment(&cols[i], &cols[j], means[i], means[j]);
                prop_assert_eq!(
                    cross[pair_index(i, j, p)].to_bits(), scalar.to_bits(),
                    "pair ({}, {}) diverged", i, j
                );
            }
        }
    }

    /// The dense contingency MI/CMI kernels equal the sparse BTreeMap
    /// folds bit for bit, including sparse code spaces with unused codes
    /// (zero rows/columns/strata in the dense array).
    #[test]
    fn dense_contingency_matches_sparse_folds(
        pairs in prop::collection::vec((0usize..9, 0usize..7, 0usize..5), 0..300),
    ) {
        let xs: Vec<usize> = pairs.iter().map(|&(x, _, _)| x * 2).collect();
        let ys: Vec<usize> = pairs.iter().map(|&(_, y, _)| y * 3).collect();
        let zs: Vec<usize> = pairs.iter().map(|&(_, _, z)| z).collect();
        let mi = mutual_information(&xs, &ys);
        let mi_ref = mutual_information_sparse(&xs, &ys);
        prop_assert_eq!(mi.to_bits(), mi_ref.to_bits(), "MI diverged");
        let cmi = conditional_mutual_information(&xs, &ys, &zs);
        let cmi_ref = conditional_mutual_information_sparse(&xs, &ys, &zs);
        prop_assert_eq!(cmi.to_bits(), cmi_ref.to_bits(), "CMI diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The 8-row SCM lane sweep equals the scalar per-row simulation for
    /// every row-count remainder mod `SIM_LANES`, with and without
    /// interventions, under both g-formula and blended-abduction
    /// residual modes.
    #[test]
    fn scm_lane_sweep_matches_scalar_rows(
        n_rows in 1usize..40,
        p in 3usize..8,
        n_sweep in 0usize..20,
        intervene in 0usize..2,
        seed in 0u64..200,
    ) {
        let mut s = seed.wrapping_mul(31).wrapping_add(11);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut cols = vec![Vec::with_capacity(n_rows); p];
        for _ in 0..n_rows {
            let mut row = vec![0.0f64; p];
            row[0] = next();
            row[1] = next();
            for v in 2..p {
                row[v] = 0.7 * row[v - 2] - 0.4 * row[v - 1] + 0.05 * next();
            }
            for (c, &x) in cols.iter_mut().zip(&row) {
                c.push(x);
            }
        }
        let scm = FittedScm::fit(chain_admg(p), &cols).unwrap();
        let rows: Vec<usize> = (0..n_sweep.min(n_rows.saturating_mul(2)))
            .map(|i| i % n_rows)
            .collect();
        let interventions: Vec<(usize, f64)> =
            if intervene == 1 { vec![(1, 0.25), (p - 1, -0.5)] } else { Vec::new() };
        // Row counts 0..40 exercise every remainder mod SIM_LANES,
        // including sweeps shorter than one lane.
        let _ = SIM_LANES;
        // G-formula residual mode.
        let batch = scm.simulate_batch(&rows, &interventions, ResidualMode::FromRow);
        prop_assert_eq!(batch.len(), rows.len());
        for (&r, lane) in rows.iter().zip(&batch) {
            let scalar = scm.simulate(r, &interventions, ResidualMode::FromRow(r));
            for (v, (a, b)) in lane.iter().zip(&scalar).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "row {} node {} diverged (g-formula)", r, v
                );
            }
        }
        // Blended abduction against row 0.
        let blend = |_r: usize| ResidualMode::Blend { abduct_row: 0, weight: 0.75 };
        let batch = scm.simulate_batch(&rows, &interventions, blend);
        for (&r, lane) in rows.iter().zip(&batch) {
            let scalar = scm.simulate(r, &interventions, blend(r));
            for (v, (a, b)) in lane.iter().zip(&scalar).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "row {} node {} diverged (abduction)", r, v
                );
            }
        }
    }
}
