//! The determinism contract of the unified executor: with a **single
//! reused pool** per thread count (workers spawned at most once, shared by
//! every relearn of the schedule and by the SCM fits), the full pipeline
//! output — graph, sepsets, CI-test-count trace, and fitted SCM
//! coefficients — is bit-identical for pools of 1, 2, and 8 threads, and
//! identical to the thread-free default path. Also covers nested
//! `par_map` submission (pipelines running *inside* pool tasks).

use std::sync::Arc;

use proptest::prelude::*;

use unicorn::discovery::{
    learn_causal_model_incremental, DiscoveryOptions, LearnedModel, RelearnSession,
};
use unicorn::exec::Executor;
use unicorn::graph::{TierConstraints, VarKind};
use unicorn::inference::FittedScm;
use unicorn::stats::dataview::DataView;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Five-variable stack: opt0 → ev0 → obj, opt1 → ev1 → obj, ev0 → ev1.
fn stack_stream(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037);
    let mut cols: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let o0 = (i % 4) as f64;
        let o1 = ((i / 2) % 2) as f64;
        let e0 = 2.0 * o0 + 0.4 * lcg(&mut s);
        let e1 = 1.5 * o1 - 0.5 * e0 + 0.4 * lcg(&mut s);
        let obj = -e0 + 0.5 * e1 + 0.3 * lcg(&mut s);
        for (c, v) in cols.iter_mut().zip([o0, o1, e0, e1, obj]) {
            c.push(v);
        }
    }
    cols
}

fn stack_names_tiers() -> (Vec<String>, TierConstraints) {
    let names = ["opt0", "opt1", "ev0", "ev1", "obj"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let tiers = TierConstraints::new(vec![
        VarKind::ConfigOption,
        VarKind::ConfigOption,
        VarKind::SystemEvent,
        VarKind::SystemEvent,
        VarKind::Objective,
    ]);
    (names, tiers)
}

/// Comparable fingerprint of one relearn step: structure, sepsets, test
/// count, and the SCM's coefficient bits fitted on the same pool.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    directed: Vec<(usize, usize)>,
    bidirected: Vec<(usize, usize)>,
    n_ci_tests: usize,
    sepsets: Vec<(usize, usize, Option<Vec<usize>>)>,
    scm_coefficient_bits: Vec<Option<Vec<u64>>>,
}

fn trace_of(m: &LearnedModel, view: &DataView, exec: &Arc<Executor>) -> Trace {
    let n_vars = 5;
    let mut sepsets = Vec::new();
    for x in 0..n_vars {
        for y in (x + 1)..n_vars {
            sepsets.push((x, y, m.sepsets.get(x, y).map(<[usize]>::to_vec)));
        }
    }
    let scm = FittedScm::fit_view_on(m.admg.clone(), view, Arc::clone(exec)).expect("SCM fit");
    let scm_coefficient_bits = (0..n_vars)
        .map(|v| {
            scm.coefficients_of(v)
                .map(|cs| cs.iter().map(|c| c.to_bits()).collect())
        })
        .collect();
    Trace {
        directed: m.admg.directed_edges().to_vec(),
        bidirected: m.admg.bidirected_edges().to_vec(),
        n_ci_tests: m.n_ci_tests,
        sepsets,
        scm_coefficient_bits,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One pool per thread count, reused across an arbitrary append /
    /// relearn schedule: every step's full trace must agree across pools.
    #[test]
    fn pipeline_bit_identical_across_reused_pools(
        seed in 0u64..1_000_000,
        batches in prop::collection::vec(1usize..4, 2..5),
    ) {
        let (names, tiers) = stack_names_tiers();
        let n0 = 40usize;
        let total: usize = n0 + batches.iter().sum::<usize>();
        let stream = stack_stream(total, seed);
        let initial: Vec<Vec<f64>> = stream.iter().map(|c| c[..n0].to_vec()).collect();

        let mut traces_by_pool: Vec<Vec<Trace>> = Vec::new();
        for &threads in &[1usize, 2, 8] {
            // The single pool of this arm — reused by every relearn and
            // every SCM fit below.
            let pool = Executor::new(threads);
            let opts = DiscoveryOptions {
                alpha: 0.01,
                max_depth: 2,
                pds_depth: 1,
                objective_completion: 2,
                exec: Some(Arc::clone(&pool)),
                ..DiscoveryOptions::default()
            };
            let mut session = RelearnSession::default();
            let mut view = DataView::from_columns(&initial);
            let mut cursor = n0;
            let mut traces = Vec::new();
            let mut spawned_after_first = None;
            for &batch in &batches {
                let rows: Vec<Vec<f64>> = (cursor..cursor + batch)
                    .map(|r| stream.iter().map(|c| c[r]).collect())
                    .collect();
                cursor += batch;
                view = view.append_rows(&rows);
                let model =
                    learn_causal_model_incremental(&view, &names, &tiers, &opts, &mut session);
                traces.push(trace_of(&model, &view, &pool));
                // Spawn-at-most-once: after the first relearn the worker
                // count never grows again.
                match spawned_after_first {
                    None => spawned_after_first = Some(pool.workers_spawned()),
                    Some(n) => prop_assert_eq!(pool.workers_spawned(), n),
                }
            }
            prop_assert!(pool.workers_spawned() <= threads.saturating_sub(1));
            traces_by_pool.push(traces);
        }
        prop_assert_eq!(&traces_by_pool[0], &traces_by_pool[1]);
        prop_assert_eq!(&traces_by_pool[0], &traces_by_pool[2]);
    }
}

/// Running whole pipelines *inside* pool tasks (nested `par_map` on the
/// same executor) must neither deadlock nor change any output.
#[test]
fn nested_pipelines_on_one_pool_match_serial() {
    let (names, tiers) = stack_names_tiers();
    let pool = Executor::new(2);
    let opts = DiscoveryOptions {
        alpha: 0.01,
        max_depth: 2,
        pds_depth: 1,
        exec: Some(Arc::clone(&pool)),
        ..DiscoveryOptions::default()
    };
    let seeds: Vec<u64> = vec![3, 11, 29];
    let nested = pool.par_map(&seeds, |_, &seed| {
        let cols = stack_stream(60, seed);
        let view = DataView::from_columns(&cols);
        let mut session = RelearnSession::default();
        let model = learn_causal_model_incremental(&view, &names, &tiers, &opts, &mut session);
        trace_of(&model, &view, &pool)
    });
    for (i, &seed) in seeds.iter().enumerate() {
        let cols = stack_stream(60, seed);
        let view = DataView::from_columns(&cols);
        let serial_opts = DiscoveryOptions {
            exec: Some(Executor::new(1)),
            ..opts.clone()
        };
        let mut session = RelearnSession::default();
        let model =
            learn_causal_model_incremental(&view, &names, &tiers, &serial_opts, &mut session);
        let serial_pool = Executor::new(1);
        assert_eq!(
            nested[i],
            trace_of(&model, &view, &serial_pool),
            "seed {seed} diverged under nested submission"
        );
    }
}
