//! The sweep-cache contract: memoizing interventional sweep buffers can
//! change an answer's *cost*, never its *bits*. For any workload of
//! performance queries,
//!
//! * a cache-carrying engine answers bit-identically to the same engine
//!   with the cache bypassed and to a standalone engine that never had
//!   one — cold pass and warm (hit-serving) pass alike, at pools of
//!   1, 2, and 8 workers, with answers agreeing bitwise across pools;
//! * interleaved epoch flips never serve a stale buffer: every answer at
//!   every epoch — including re-queries of an old epoch's held snapshot
//!   after newer epochs overwrote its entries — matches a cache-bypass
//!   recomputation on that snapshot's own data;
//! * a budget-constrained fleet whose maintain pass evicts sweep caches
//!   mid-traffic answers bit-identically to an unbounded fleet; and
//! * the `/stats` endpoint exposes the hit/miss/eviction counters as
//!   deterministic fixed-key-order JSON.
//!
//! Every counter assertion is gated on `UNICORN_SWEEP_CACHE` actually
//! enabling the cache, so the CI off-leg runs the same identity proofs
//! over the bypass path.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use unicorn::core::{EngineSnapshot, Fleet, FleetOptions, UnicornOptions, UnicornState};
use unicorn::exec::Executor;
use unicorn::graph::{NodeId, VarKind};
use unicorn::inference::{sweep_cache_enabled, PerformanceQuery, QosGoal, QueryAnswer};
use unicorn::serve::{http_request, parse_json, Json, ServeOptions, Server};
use unicorn::systems::{Environment, Hardware, ScenarioRegistry, Simulator, SubjectSystem};

const POOLS: [usize; 3] = [1, 2, 8];
const SAMPLES: usize = 60;

fn sim() -> Simulator {
    Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        42,
    )
}

fn opts_on(pool: usize) -> UnicornOptions {
    let mut opts = UnicornOptions {
        initial_samples: SAMPLES,
        ..UnicornOptions::default()
    };
    opts.discovery.exec = Some(Executor::new(pool));
    opts
}

/// One learned snapshot per pool size, built once and shared by all
/// proptest cases (the cache accumulates across cases — which is the
/// production shape: one long-lived snapshot, many admission windows).
fn snapshots() -> &'static Vec<Arc<EngineSnapshot>> {
    static SNAPSHOTS: OnceLock<Vec<Arc<EngineSnapshot>>> = OnceLock::new();
    SNAPSHOTS.get_or_init(|| {
        let sim = sim();
        POOLS
            .iter()
            .map(|&pool| {
                let opts = opts_on(pool);
                UnicornState::bootstrap(&sim, &opts).publish_snapshot(&sim, &opts)
            })
            .collect()
    })
}

/// Strict bitwise equality of answers (scores, order, payloads).
fn assert_bits_equal(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    match (a, b) {
        (QueryAnswer::Effect(x), QueryAnswer::Effect(y))
        | (QueryAnswer::Probability(x), QueryAnswer::Probability(y))
        | (QueryAnswer::Expectation(x), QueryAnswer::Expectation(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: scalar drift");
        }
        (QueryAnswer::RootCauses(xs), QueryAnswer::RootCauses(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{what}: rank length drift");
            for ((nx, sx), (ny, sy)) in xs.iter().zip(ys) {
                assert_eq!(nx, ny, "{what}: rank order drift");
                assert_eq!(sx.to_bits(), sy.to_bits(), "{what}: score drift");
            }
        }
        (QueryAnswer::Repairs(xs), QueryAnswer::Repairs(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{what}: repair count drift");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.assignments, y.assignments, "{what}: assignment drift");
                assert_eq!(x.ice.to_bits(), y.ice.to_bits(), "{what}: ICE drift");
                assert_eq!(
                    x.improvement.to_bits(),
                    y.improvement.to_bits(),
                    "{what}: improvement drift"
                );
            }
        }
        (
            QueryAnswer::Unidentifiable {
                cause: c1,
                effect: e1,
            },
            QueryAnswer::Unidentifiable {
                cause: c2,
                effect: e2,
            },
        ) => {
            assert_eq!((c1, e1), (c2, e2), "{what}: unidentifiable pair drift");
        }
        (a, b) => panic!("{what}: answer variant drift: {a:?} vs {b:?}"),
    }
}

/// A raw generated query: kind + index/threshold material, mapped onto
/// the system's actual nodes and domains at use time.
#[derive(Debug, Clone)]
struct RawQuery {
    kind: u8,
    a: usize,
    b: usize,
    threshold: f64,
}

fn raw_query() -> impl Strategy<Value = RawQuery> {
    (0u8..5, 0usize..64, 0usize..64, 5.0f64..80.0).prop_map(|(kind, a, b, threshold)| RawQuery {
        kind,
        a,
        b,
        threshold,
    })
}

fn realize(
    raw: &RawQuery,
    options: &[NodeId],
    objectives: &[NodeId],
    sim: &Simulator,
) -> PerformanceQuery {
    let option = options[raw.a % options.len()];
    let objective = objectives[raw.b % objectives.len()];
    let values = &sim.model.space.option(raw.a % options.len()).values;
    let value = values[raw.b % values.len()];
    match raw.kind {
        0 => PerformanceQuery::CausalEffect { option, objective },
        1 => PerformanceQuery::ProbabilityOfQos {
            interventions: vec![(option, value)],
            objective,
            threshold: raw.threshold,
        },
        2 => PerformanceQuery::ExpectedObjective {
            interventions: vec![(option, value)],
            objective,
        },
        3 => PerformanceQuery::RootCauses {
            goal: QosGoal::single(objective, raw.threshold),
        },
        _ => PerformanceQuery::Repairs {
            goal: QosGoal::single(objective, raw.threshold),
            fault_row: raw.a % SAMPLES,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: cache-on (cold), cache-on (warm, serving
    /// hits), and cache-bypass all answer bitwise-identically at every
    /// pool size, and the answers agree bitwise across pool sizes.
    #[test]
    fn cached_answers_bit_identical_to_bypass(raws in prop::collection::vec(raw_query(), 1..5)) {
        let sim = sim();
        let tiers = sim.model.tiers();
        let options = tiers.of_kind(VarKind::ConfigOption);
        let objectives = tiers.of_kind(VarKind::Objective);
        let queries: Vec<PerformanceQuery> = raws
            .iter()
            .map(|r| realize(r, &options, &objectives, &sim))
            .collect();

        let mut per_pool: Vec<Vec<QueryAnswer>> = Vec::new();
        for (snap, pool) in snapshots().iter().zip(POOLS) {
            prop_assert_eq!(
                snap.engine.sweep_cache().is_some(),
                sweep_cache_enabled(),
                "snapshot engines carry the cache exactly when the gate is on"
            );
            let bypass = snap.engine.without_sweep_cache();
            prop_assert!(bypass.sweep_cache().is_none());

            // Cold pass (misses populate), warm pass (hits serve), and
            // the bypass oracle that never touches the cache.
            let cold: Vec<QueryAnswer> =
                queries.iter().map(|q| snap.engine.estimate(q)).collect();
            let hits_after_cold = snap.engine.sweep_cache().map(|c| c.stats().hits());
            let warm: Vec<QueryAnswer> =
                queries.iter().map(|q| snap.engine.estimate(q)).collect();
            for (i, q) in queries.iter().enumerate() {
                let want = bypass.estimate(q);
                assert_bits_equal(&cold[i], &want, &format!("pool={pool} cold query#{i}"));
                assert_bits_equal(&warm[i], &want, &format!("pool={pool} warm query#{i}"));
            }
            if let (Some(cache), Some(h0)) = (snap.engine.sweep_cache(), hits_after_cold) {
                prop_assert!(
                    cache.stats().hits() > h0,
                    "pool={} repeat pass must serve hits (hits {} -> {})",
                    pool, h0, cache.stats().hits()
                );
            }
            per_pool.push(warm);
        }
        for (answers, pool) in per_pool[1..].iter().zip(&POOLS[1..]) {
            for (i, (got, base)) in answers.iter().zip(&per_pool[0]).enumerate() {
                assert_bits_equal(got, base, &format!("pool={pool} vs pool=1 query#{i}"));
            }
        }
    }
}

/// Interleaved epoch flips: snapshots published across three epochs share
/// one cache (the lineage's), old epochs' held snapshots are re-queried
/// after newer epochs overwrote their entries, and every answer matches a
/// cache-bypass recomputation on that snapshot's own data — a stale
/// buffer is never served.
#[test]
fn epoch_flips_never_serve_stale_buffers() {
    let sim = sim();
    let opts = opts_on(2);
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let tiers = sim.model.tiers();
    let objective = tiers.of_kind(VarKind::Objective)[0];
    let option = tiers.of_kind(VarKind::ConfigOption)[0];
    let queries = [
        PerformanceQuery::CausalEffect { option, objective },
        PerformanceQuery::ExpectedObjective {
            interventions: vec![(option, sim.model.space.option(0).values[0])],
            objective,
        },
        PerformanceQuery::RootCauses {
            goal: QosGoal::single(objective, 30.0),
        },
    ];

    let mut held: Vec<Arc<EngineSnapshot>> = Vec::new();
    for epoch_round in 0..3 {
        let snap = state.publish_snapshot(&sim, &opts);
        if let Some(cache) = snap.engine.sweep_cache() {
            // One cache Arc follows the whole lineage across flips.
            assert!(
                held.iter().all(|h| {
                    h.engine
                        .sweep_cache()
                        .is_some_and(|old| Arc::ptr_eq(old, cache))
                }),
                "snapshots along one lineage share one sweep cache"
            );
        }
        held.push(Arc::clone(&snap));

        // Interleave queries over *every* epoch still held: each round
        // re-probes older epochs whose entries the newer ones overwrote,
        // and the same-epoch repeat serves hits. Every answer must match
        // the bypass oracle on that snapshot's own data.
        for (si, s) in held.iter().enumerate() {
            let bypass = s.engine.without_sweep_cache();
            for (qi, q) in queries.iter().enumerate() {
                let ctx = format!("round {epoch_round} snapshot#{si} query#{qi}");
                assert_bits_equal(&s.engine.estimate(q), &bypass.estimate(q), &ctx);
                assert_bits_equal(
                    &s.engine.estimate(q),
                    &bypass.estimate(q),
                    &format!("{ctx} repeat"),
                );
            }
        }

        // Grow the data → the next publish flips the epoch.
        let extra = unicorn::systems::generate(&sim, 8, 0xF00D ^ epoch_round as u64);
        state.extend_data(&extra);
    }
    let epochs: Vec<u64> = held.iter().map(|s| s.epoch).collect();
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "epochs must advance: {epochs:?}"
    );
    if let Some(cache) = held[0].engine.sweep_cache() {
        assert!(cache.stats().hits() > 0, "same-epoch repeats must hit");
        assert!(
            cache.stats().misses() > 0,
            "cross-epoch re-probes must miss (stale entries rejected)"
        );
    }
}

/// Fleet eviction mid-traffic: a budget at the raw-segment floor clears
/// every tenant's sweep cache on every maintain pass, and the answers
/// stay bit-identical to an unbounded fleet's — eviction is amnesia,
/// never error. The unbounded fleet's caches meanwhile serve hits on the
/// repeated probes.
#[test]
fn fleet_eviction_mid_traffic_keeps_answers_bit_identical() {
    let spec = ScenarioRegistry::synthetic_on_demand(0);
    let mut opts = UnicornOptions {
        initial_samples: 24,
        relearn_every: usize::MAX,
        ..UnicornOptions::default()
    };
    opts.discovery.max_depth = 1;
    opts.discovery.pds_depth = 0;
    opts.discovery.exec = Some(Executor::new(2));
    let fleet_opts = |budget| FleetOptions {
        memory_budget: budget,
        unicorn: opts.clone(),
        ..FleetOptions::default()
    };
    let mut unbounded = Fleet::new(fleet_opts(None));
    let mut budgeted = Fleet::new(fleet_opts(Some(1)));
    for fleet in [&mut unbounded, &mut budgeted] {
        fleet.admit("t0", spec.clone(), 3);
        fleet.admit("t1", spec.clone(), 3);
    }

    let probe = {
        let sim = unicorn::systems::Scenario::synthetic(spec).simulator(3);
        let tiers = sim.model.tiers();
        PerformanceQuery::CausalEffect {
            option: tiers.of_kind(VarKind::ConfigOption)[0],
            objective: tiers.of_kind(VarKind::Objective)[0],
        }
    };
    for step in 0..6 {
        let name = if step % 2 == 0 { "t0" } else { "t1" };
        let a = budgeted.query(name, &probe);
        let b = unbounded.query(name, &probe);
        assert_bits_equal(&a, &b, &format!("step#{step} tenant {name}"));
        // Evict mid-traffic: the next query re-derives from scratch.
        budgeted.maintain();
    }

    let b_stats = budgeted.stats();
    let u_stats = unbounded.stats();
    assert!(b_stats.evictions > 0, "a one-byte budget must evict");
    assert_eq!(u_stats.evictions, 0, "no budget, no evictions");
    if sweep_cache_enabled() {
        assert!(
            u_stats.sweep_hits > 0,
            "unbounded repeats must hit: {u_stats:?}"
        );
        assert!(
            b_stats.sweep_misses > u_stats.sweep_misses,
            "eviction must force extra misses: {b_stats:?} vs {u_stats:?}"
        );
    } else {
        assert_eq!((b_stats.sweep_hits, b_stats.sweep_misses), (0, 0));
    }
}

/// The `/stats` endpoint: deterministic key order, live counters, tenant
/// routing, and 503 on unknown tenants.
#[test]
fn stats_endpoint_reports_sweep_cache_counters() {
    let sim = sim();
    let opts = opts_on(2);
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let snap = state.publish_snapshot(&sim, &opts);
    let epoch = snap.epoch;
    let server = Server::start(
        Arc::new(unicorn::core::SnapshotCell::new(snap)),
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_micros(200),
        },
    )
    .expect("server start");

    let stats = |path: &str| {
        let (status, body) = http_request(server.addr(), "GET", path, None).expect("GET");
        (status, body)
    };
    let field = |doc: &Json, path: &[&str]| -> Json {
        let mut cur = doc.clone();
        for key in path {
            cur = cur
                .get(key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .clone();
        }
        cur
    };

    let (status, body) = stats("/stats");
    assert_eq!(status, 200, "{body}");
    // Deterministic shape: fixed key order straight off the wire.
    assert!(
        body.starts_with(&format!(
            "{{\"tenant\":\"default\",\"epoch\":{epoch},\"sweep_cache\":{{\"enabled\":"
        )),
        "unexpected stats shape: {body}"
    );
    let doc = parse_json(&body).expect("stats JSON");
    assert_eq!(
        field(&doc, &["sweep_cache", "enabled"]),
        Json::Bool(sweep_cache_enabled())
    );
    let submitted0 = field(&doc, &["admission", "submitted"]).as_num().unwrap();

    // Traffic moves the counters: a query batch records misses, its
    // repeat records hits, and `submitted` counts both.
    let q = r#"{"type":"causal_effect","option":"crf","objective":"latency"}"#;
    let names = server
        .snapshots()
        .expect("default cell")
        .load()
        .names
        .clone();
    let option_name = &names[sim.model.tiers().of_kind(VarKind::ConfigOption)[0]];
    let objective_name = &names[sim.model.tiers().of_kind(VarKind::Objective)[0]];
    let q = q
        .replace("crf", option_name)
        .replace("latency", objective_name);
    for _ in 0..2 {
        let (status, reply) =
            http_request(server.addr(), "POST", "/query", Some(&q)).expect("query");
        assert_eq!(status, 200, "{reply}");
    }

    let (status, body) = stats("/tenant/default/stats");
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body).expect("stats JSON");
    assert_eq!(field(&doc, &["tenant"]), Json::Str("default".into()));
    let submitted1 = field(&doc, &["admission", "submitted"]).as_num().unwrap();
    assert!(
        submitted1 >= submitted0 + 2.0,
        "submitted must count queries"
    );
    if sweep_cache_enabled() {
        assert!(
            field(&doc, &["sweep_cache", "misses"]).as_num().unwrap() > 0.0,
            "first query must record misses: {body}"
        );
        assert!(
            field(&doc, &["sweep_cache", "hits"]).as_num().unwrap() > 0.0,
            "repeat query must record hits: {body}"
        );
        assert!(
            field(&doc, &["sweep_cache", "approx_bytes"])
                .as_num()
                .unwrap()
                > 0.0,
            "resident buffers must be accounted: {body}"
        );
    }

    let (status, _) = stats("/tenant/absent/stats");
    assert_eq!(status, 503, "unknown tenants get 503");
    let (status, _) = stats("/nope");
    assert_eq!(status, 404);
    server.shutdown();
}
