//! The scenario generator's contracts: (i) a `ScenarioSpec` + seed is a
//! *pure* recipe — the expanded system, its planted ground-truth graph,
//! and the generated `Dataset` are bit-identical across repeated
//! expansions and across executor pools of 1 and 8 workers — and
//! (ii) discovery on small, low-noise synthetic specs actually recovers
//! the planted skeleton within a fixed SHD bound, so the suite's
//! SHD-vs-ground-truth column measures the method, not generator noise.

use proptest::prelude::*;

use unicorn::discovery::{learn_causal_model_on, DiscoveryOptions};
use unicorn::exec::Executor;
use unicorn::graph::{skeleton_distance, structural_hamming_distance};
use unicorn::systems::{generate, Interaction, Scenario, ScenarioSpec};

fn spec_from(
    n_options: usize,
    dense: bool,
    n_objectives: usize,
    n_confounders: usize,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec {
        structure_seed: seed,
        ..ScenarioSpec::family(
            n_options,
            if dense {
                Interaction::Dense
            } else {
                Interaction::Sparse
            },
            n_objectives,
            n_confounders,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same spec + seed yields a bit-identical model, ground-truth
    /// graph, and dataset — and the bits do not depend on the worker pool
    /// the downstream pipeline runs on (pools ∈ {1, 8}).
    #[test]
    fn same_spec_and_seed_is_bit_identical_across_pools(
        n_options in 4usize..12,
        dense_bit in 0usize..2,
        n_objectives in 1usize..4,
        n_confounders in 0usize..4,
        structure_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
    ) {
        let spec = spec_from(n_options, dense_bit == 1, n_objectives, n_confounders, structure_seed);
        let (a, b) = (spec.build(), spec.build());
        prop_assert_eq!(a.names(), b.names());
        prop_assert_eq!(format!("{:?}", a.nodes), format!("{:?}", b.nodes));
        prop_assert_eq!(format!("{:?}", a.latents), format!("{:?}", b.latents));
        let (ga, gb) = (a.true_admg(), b.true_admg());
        prop_assert_eq!(ga.directed_edges(), gb.directed_edges());
        prop_assert_eq!(ga.bidirected_edges(), gb.bidirected_edges());

        // Dataset generation (measurement noise included) is a pure
        // function of (spec, seed) — compare the raw f64 bits.
        let sc = Scenario::synthetic(spec);
        let ds1 = generate(&sc.simulator(data_seed), 40, data_seed ^ 0xD5);
        let ds2 = generate(&sc.simulator(data_seed), 40, data_seed ^ 0xD5);
        let bits = |ds: &unicorn::systems::Dataset| -> Vec<Vec<u64>> {
            ds.columns
                .iter()
                .map(|c| c.iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        prop_assert_eq!(bits(&ds1), bits(&ds2));

        // And the full discovery pipeline over that dataset is
        // bit-identical across a serial and an 8-worker pool.
        let tiers = a.tiers();
        let view = ds1.view();
        let run = |threads: usize| {
            let opts = DiscoveryOptions {
                alpha: 0.05,
                max_depth: 2,
                pds_depth: 1,
                exec: Some(Executor::new(threads)),
                ..Default::default()
            };
            learn_causal_model_on(&view, &ds1.names, &tiers, &opts)
        };
        let (m1, m8) = (run(1), run(8));
        prop_assert_eq!(m1.admg.directed_edges(), m8.admg.directed_edges());
        prop_assert_eq!(m1.admg.bidirected_edges(), m8.admg.bidirected_edges());
        prop_assert_eq!(m1.n_ci_tests, m8.n_ci_tests);
    }
}

/// Discovery on small, low-noise sparse specs recovers the planted
/// skeleton within a fixed bound — the generator plants structure that
/// the method can actually find from a modest sample. The bound (6, i.e.
/// under half the planted edge count) absorbs the testbed's intentional
/// hard parts: weak negative coefficients, interaction terms, and the
/// leaky positive clamp; everything is deterministic, so this is a sharp
/// regression guard, not a flaky statistical one.
#[test]
fn discovery_recovers_planted_skeletons_within_bound() {
    for (structure_seed, max_skeleton_dist) in [(1u64, 6usize), (2, 6), (3, 6)] {
        let spec = ScenarioSpec {
            noise: 0.02,
            n_confounders: 0,
            structure_seed,
            ..ScenarioSpec::family(6, Interaction::Sparse, 1, 0)
        };
        let sc = Scenario::synthetic(spec);
        let sim = sc.simulator(7);
        let ds = generate(&sim, 500, 0xFEED ^ structure_seed);
        let model = learn_causal_model_on(
            &ds.view(),
            &ds.names,
            &sim.model.tiers(),
            &DiscoveryOptions {
                alpha: 0.01,
                max_depth: 2,
                pds_depth: 1,
                ..Default::default()
            },
        );
        let truth = sc.ground_truth();
        let dist = skeleton_distance(&model.admg.to_mixed(), &truth.to_mixed());
        let n_true_edges = truth.directed_edges().len();
        assert!(
            dist <= max_skeleton_dist,
            "seed {structure_seed}: skeleton distance {dist} > {max_skeleton_dist} \
             ({n_true_edges} planted edges)"
        );
        // Full SHD (orientation included) is also sane: bounded by the
        // pair count and not degenerate.
        let shd = structural_hamming_distance(&model.admg.to_mixed(), &truth.to_mixed());
        assert!(shd >= dist);
    }
}

/// A planted confounder is *detectable*: the confounded events correlate
/// in observational data far beyond what their mechanisms explain.
#[test]
fn planted_confounders_leave_an_observable_trace() {
    let spec = ScenarioSpec {
        noise: 0.05,
        ..ScenarioSpec::family(8, Interaction::Sparse, 1, 1)
    };
    let model = spec.build();
    let latent = &model.latents[0];
    assert_eq!(latent.targets.len(), 2);
    let (a, _) = latent.targets[0];
    let (b, _) = latent.targets[1];
    let sc = Scenario::synthetic(spec);
    let ds = generate(&sc.simulator(5), 400, 0xC0);
    // Residualize against nothing — just check the raw correlation of the
    // two confounded columns is non-trivial (the latent's weight ≥ 0.3
    // dwarfs the 0.05 mechanism noise).
    let r = unicorn::stats::pearson(&ds.columns[a], &ds.columns[b]);
    assert!(
        r.abs() > 0.1,
        "confounded events should correlate observably, r = {r}"
    );
}
