//! Fleet-layer invariants: multiplexing thousands of tenants behind one
//! process must be invisible in the answers. For any mixed traffic of
//! queries, appends, and relearns over a handful of tenants,
//!
//! * a **budget-constrained** fleet (budget below the segment floor, so
//!   every maintain pass evicts every cache lineage) answers
//!   bit-identically to an **unbounded** fleet — eviction re-derives
//!   statistics, never perturbs them;
//! * both fleets answer bit-identically to **standalone** per-tenant
//!   [`UnicornState`]s replaying the same traffic — and the standalone
//!   arm bootstraps *cold*, so the fleets' warm-started admissions
//!   (replica tenants adopt the group head's model) are proven
//!   bit-identical to the cold discovery they skipped;
//! * all of the above holds at every worker-pool size, and the answers
//!   agree bitwise *across* pool sizes.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use unicorn::core::{Fleet, FleetOptions, UnicornOptions, UnicornState};
use unicorn::exec::Executor;
use unicorn::graph::VarKind;
use unicorn::inference::{PerformanceQuery, QosGoal, QueryAnswer};
use unicorn::serve::{http_request_many, ServeOptions, Server};
use unicorn::systems::{generate, Scenario, ScenarioRegistry, ScenarioSpec, Simulator};

const POOLS: [usize; 3] = [1, 2, 8];
/// Indices 0..=4 of the on-demand family: one full replica group (three
/// warm admissions off tenant 0) plus the head of the next group (a
/// distant spec that must stay cold).
const TENANTS: usize = 5;
const BOOT_SAMPLES: usize = 24;

fn tenant_spec(i: usize) -> ScenarioSpec {
    ScenarioRegistry::synthetic_on_demand(i)
}

/// Replicas of a group share one bootstrap seed — warm adoption is gated
/// on bit-identical bootstrap data, so this is what arms the transfer.
fn tenant_seed(i: usize) -> u64 {
    0x5EED ^ (i / ScenarioRegistry::ON_DEMAND_REPLICAS) as u64
}

fn base_opts(pool: usize) -> UnicornOptions {
    let mut opts = UnicornOptions {
        initial_samples: BOOT_SAMPLES,
        relearn_every: usize::MAX,
        ..UnicornOptions::default()
    };
    opts.discovery.max_depth = 1;
    opts.discovery.pds_depth = 0;
    opts.discovery.exec = Some(Executor::new(pool));
    opts
}

fn fleet_on(pool: usize, memory_budget: Option<usize>) -> Fleet {
    let mut fleet = Fleet::new(FleetOptions {
        memory_budget,
        unicorn: base_opts(pool),
        ..FleetOptions::default()
    });
    for i in 0..TENANTS {
        fleet.admit(&format!("t{i}"), tenant_spec(i), tenant_seed(i));
    }
    fleet
}

/// The standalone arm: per-tenant engines bootstrapped *cold* (no
/// session seeding) on their own sims, sharing nothing.
fn solo_on(pool: usize) -> Vec<(Simulator, UnicornOptions, UnicornState)> {
    (0..TENANTS)
        .map(|i| {
            let sim = Scenario::synthetic(tenant_spec(i)).simulator(tenant_seed(i));
            let mut opts = base_opts(pool);
            opts.seed = tenant_seed(i);
            let state = UnicornState::bootstrap(&sim, &opts);
            (sim, opts, state)
        })
        .collect()
}

/// One step of generated traffic against one tenant.
#[derive(Debug, Clone)]
enum RawOp {
    /// Answer one query (realized against the tenant's own nodes).
    Query(RawQuery),
    /// Append fresh samples, relearn the structure, then query.
    Grow {
        rows: usize,
        seed: u64,
        probe: RawQuery,
    },
}

#[derive(Debug, Clone)]
struct RawQuery {
    kind: u8,
    a: usize,
    b: usize,
    threshold: f64,
}

fn raw_query() -> impl Strategy<Value = RawQuery> {
    (0u8..5, 0usize..64, 0usize..64, 5.0f64..80.0).prop_map(|(kind, a, b, threshold)| RawQuery {
        kind,
        a,
        b,
        threshold,
    })
}

fn raw_op() -> impl Strategy<Value = (usize, RawOp)> {
    (
        (0usize..TENANTS, 0u8..4),
        (1usize..5, 0u64..1000),
        raw_query(),
    )
        .prop_map(|((tenant, sel), (rows, seed), probe)| {
            // Three of four ops are queries, the fourth grows the tenant.
            let op = if sel == 0 {
                RawOp::Grow { rows, seed, probe }
            } else {
                RawOp::Query(probe)
            };
            (tenant, op)
        })
}

fn realize(raw: &RawQuery, sim: &Simulator) -> PerformanceQuery {
    let tiers = sim.model.tiers();
    let options = tiers.of_kind(VarKind::ConfigOption);
    let objectives = tiers.of_kind(VarKind::Objective);
    let option = options[raw.a % options.len()];
    let objective = objectives[raw.b % objectives.len()];
    let values = &sim.model.space.option(raw.a % options.len()).values;
    let value = values[raw.b % values.len()];
    match raw.kind {
        0 => PerformanceQuery::CausalEffect { option, objective },
        1 => PerformanceQuery::ProbabilityOfQos {
            interventions: vec![(option, value)],
            objective,
            threshold: raw.threshold,
        },
        2 => PerformanceQuery::ExpectedObjective {
            interventions: vec![(option, value)],
            objective,
        },
        3 => PerformanceQuery::RootCauses {
            goal: QosGoal::single(objective, raw.threshold),
        },
        _ => PerformanceQuery::Repairs {
            goal: QosGoal::single(objective, raw.threshold),
            fault_row: raw.a % BOOT_SAMPLES,
        },
    }
}

/// Strict bitwise equality of answers (scores, order, payloads).
fn assert_bits_equal(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    match (a, b) {
        (QueryAnswer::Effect(x), QueryAnswer::Effect(y))
        | (QueryAnswer::Probability(x), QueryAnswer::Probability(y))
        | (QueryAnswer::Expectation(x), QueryAnswer::Expectation(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: scalar drift");
        }
        (QueryAnswer::RootCauses(xs), QueryAnswer::RootCauses(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{what}: rank length drift");
            for ((nx, sx), (ny, sy)) in xs.iter().zip(ys) {
                assert_eq!(nx, ny, "{what}: rank order drift");
                assert_eq!(sx.to_bits(), sy.to_bits(), "{what}: score drift");
            }
        }
        (QueryAnswer::Repairs(xs), QueryAnswer::Repairs(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{what}: repair count drift");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.assignments, y.assignments, "{what}: assignment drift");
                assert_eq!(x.ice.to_bits(), y.ice.to_bits(), "{what}: ICE drift");
                assert_eq!(
                    x.improvement.to_bits(),
                    y.improvement.to_bits(),
                    "{what}: improvement drift"
                );
            }
        }
        (
            QueryAnswer::Unidentifiable {
                cause: c1,
                effect: e1,
            },
            QueryAnswer::Unidentifiable {
                cause: c2,
                effect: e2,
            },
        ) => {
            assert_eq!((c1, e1), (c2, e2), "{what}: unidentifiable pair drift");
        }
        (a, b) => panic!("{what}: answer variant drift: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole invariant: budgeted == unbounded == standalone-cold,
    /// bitwise, under mixed traffic, at every pool size and across pool
    /// sizes; the budgeted arm is forced to evict (budget of one byte)
    /// and the fleets' warm admissions happen (and change nothing).
    #[test]
    fn budgeted_fleet_matches_unbounded_and_standalone(ops in prop::collection::vec(raw_op(), 1..7)) {
        let mut per_pool: Vec<Vec<QueryAnswer>> = Vec::new();
        for pool in POOLS {
            // A one-byte budget sits below the segment floor: every
            // maintain pass evicts every cache lineage the traffic warms.
            let mut budgeted = fleet_on(pool, Some(1));
            let mut unbounded = fleet_on(pool, None);
            let mut solo = solo_on(pool);
            prop_assert_eq!(budgeted.stats().warm_admissions, 3,
                "one replica group of four must warm-start three admissions");
            prop_assert_eq!(unbounded.stats().warm_admissions, 3);

            let mut answers: Vec<QueryAnswer> = Vec::new();
            for (step, (tenant, op)) in ops.iter().enumerate() {
                let name = format!("t{tenant}");
                let (sim, opts, state) = &mut solo[*tenant];
                if let RawOp::Grow { rows, seed, .. } = op {
                    budgeted.append(&name, *rows, *seed);
                    budgeted.relearn(&name);
                    unbounded.append(&name, *rows, *seed);
                    unbounded.relearn(&name);
                    state.extend_data(&generate(sim, *rows, *seed));
                    state.relearn(sim, opts);
                }
                let raw = match op {
                    RawOp::Query(raw) => raw,
                    RawOp::Grow { probe, .. } => probe,
                };
                let q = realize(raw, sim);
                let want = state.engine(sim, opts).estimate(&q);
                let got_b = budgeted.query(&name, &q);
                let got_u = unbounded.query(&name, &q);
                assert_bits_equal(&got_b, &want, &format!("pool={pool} step#{step} budgeted vs solo"));
                assert_bits_equal(&got_u, &want, &format!("pool={pool} step#{step} unbounded vs solo"));
                answers.push(want);
            }

            let stats = budgeted.stats();
            prop_assert!(stats.evictions > 0, "a one-byte budget must evict");
            prop_assert_eq!(unbounded.stats().evictions, 0, "no budget, no evictions");
            per_pool.push(answers);
        }
        for (answers, pool) in per_pool[1..].iter().zip(&POOLS[1..]) {
            for (i, (got, base)) in answers.iter().zip(&per_pool[0]).enumerate() {
                assert_bits_equal(got, base, &format!("pool={pool} vs pool=1 step#{i}"));
            }
        }
    }
}

/// End-to-end multi-tenant serving: two tenants published through one
/// fleet router, queried over one keep-alive connection via
/// `/tenant/:id/query` — each reply bit-identical to the tenant's own
/// engine; unknown tenants get 503 without disturbing the connection.
#[test]
fn fleet_router_serves_tenants_over_one_connection() {
    let mut fleet = fleet_on(2, None);
    fleet.publish("t0");
    fleet.publish("t4");

    let server = Server::start_router(
        Arc::clone(fleet.router()),
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_micros(200),
        },
    )
    .expect("server start");

    let body = r#"{"type":"root_causes","goal":[["latency",30]]}"#;
    let replies = http_request_many(
        server.addr(),
        &[
            ("POST", "/tenant/t0/query", Some(body)),
            ("POST", "/tenant/t4/query", Some(body)),
            ("POST", "/tenant/absent/query", Some(body)),
            ("POST", "/tenant/t0/query", Some(body)),
        ],
    )
    .expect("keep-alive round-trips");

    assert_eq!(
        replies.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        [200, 200, 503, 200],
        "tenant routing statuses: {replies:?}"
    );
    assert_eq!(replies[0].1, replies[3].1, "same tenant, same reply");
    assert_ne!(
        replies[0].1, replies[1].1,
        "distinct tenants must answer from distinct models"
    );
    server.shutdown();
}
