//! Cross-crate property-based tests: invariants that must hold for *any*
//! input, checked with proptest.

use proptest::prelude::*;

use unicorn::graph::{Admg, MixedGraph};
use unicorn::stats::discretize::Discretizer;
use unicorn::stats::entropy::{entropy, joint_entropy, mutual_information};
use unicorn::stats::pareto::{dominates, hypervolume_2d, pareto_front};
use unicorn::stats::ranking::ranks_with_ties;
use unicorn::stats::{pearson, spearman};
use unicorn::systems::{Environment, Hardware, Simulator, SubjectSystem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Correlations live in [-1, 1] and are symmetric.
    #[test]
    fn correlation_bounds_and_symmetry(
        xs in prop::collection::vec(-1e3f64..1e3, 3..40),
        ys in prop::collection::vec(-1e3f64..1e3, 3..40),
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let r = pearson(xs, ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!((r - pearson(ys, xs)).abs() < 1e-12);
        let s = spearman(xs, ys);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    /// Tie-averaged ranks are a permutation-invariant of the sum 1..n.
    #[test]
    fn ranks_sum_invariant(xs in prop::collection::vec(-50f64..50.0, 1..60)) {
        let ranks = ranks_with_ties(&xs);
        let n = xs.len() as f64;
        let expected = n * (n + 1.0) / 2.0;
        prop_assert!((ranks.iter().sum::<f64>() - expected).abs() < 1e-6);
    }

    /// Entropy identities: 0 ≤ H ≤ log₂(k); MI symmetric and bounded.
    #[test]
    fn entropy_and_mi_bounds(codes in prop::collection::vec(0usize..6, 2..200)) {
        let h = entropy(&codes);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= 6f64.log2() + 1e-9);
        let shifted: Vec<usize> = codes.iter().map(|&c| (c + 1) % 6).collect();
        let mi = mutual_information(&codes, &shifted);
        let mi_rev = mutual_information(&shifted, &codes);
        prop_assert!((mi - mi_rev).abs() < 1e-9);
        prop_assert!(mi <= entropy(&codes) + 1e-9);
        prop_assert!(joint_entropy(&codes, &shifted) + 1e-9 >= h);
    }

    /// Discretization codes stay within arity and are monotone in value.
    #[test]
    fn discretizer_codes_valid(xs in prop::collection::vec(-100f64..100.0, 8..120)) {
        let d = Discretizer::fit(&xs, 5, 4);
        let codes = d.transform(&xs);
        for &c in &codes {
            prop_assert!(c < d.arity());
        }
        let mut pairs: Vec<(f64, usize)> =
            xs.iter().map(|&x| (x, d.code(x))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Pareto fronts contain only mutually non-dominated points, and
    /// adding points never shrinks the hypervolume.
    #[test]
    fn pareto_and_hypervolume_invariants(
        pts in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..40),
    ) {
        let vecs: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let front = pareto_front(&vecs);
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(a, b));
                }
            }
        }
        let r = [11.0, 11.0];
        let hv_all = hypervolume_2d(&front, &r);
        let partial = pareto_front(&vecs[..vecs.len().div_ceil(2)]);
        let hv_partial = hypervolume_2d(&partial, &r);
        prop_assert!(hv_all + 1e-9 >= hv_partial);
    }

    /// ADMG ancestry is transitively closed and disjoint from descendants.
    #[test]
    fn admg_ancestry_invariants(edges in prop::collection::vec((0usize..8, 0usize..8), 0..16)) {
        let mut g = Admg::new((0..8).map(|i| format!("v{i}")).collect());
        for (a, b) in edges {
            if a != b && !g.ancestors(a).contains(&b) {
                g.add_directed(a, b);
            }
        }
        for v in 0..8 {
            let anc = g.ancestors(v);
            let desc = g.descendants(v);
            prop_assert!(anc.intersection(&desc).next().is_none());
            prop_assert!(!anc.contains(&v));
            // Transitivity: ancestors of ancestors are ancestors.
            for &a in &anc {
                for aa in g.ancestors(a) {
                    prop_assert!(anc.contains(&aa));
                }
            }
        }
        // Topological order is consistent with every edge.
        let order = g.topological_order();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        for &(f, t) in g.directed_edges() {
            prop_assert!(pos(f) < pos(t));
        }
    }

    /// SHD is a metric on example graph triples (symmetry + triangle).
    #[test]
    fn shd_metric_properties(
        e1 in prop::collection::vec((0usize..6, 0usize..6), 0..8),
        e2 in prop::collection::vec((0usize..6, 0usize..6), 0..8),
    ) {
        let build = |edges: &[(usize, usize)]| {
            let mut g = MixedGraph::new((0..6).map(|i| format!("v{i}")).collect());
            for &(a, b) in edges {
                if a != b {
                    g.add_directed_edge(a.min(b), a.max(b));
                }
            }
            g
        };
        let a = build(&e1);
        let b = build(&e2);
        let d_ab = unicorn::graph::structural_hamming_distance(&a, &b);
        let d_ba = unicorn::graph::structural_hamming_distance(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(unicorn::graph::structural_hamming_distance(&a, &a), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Simulator invariants for arbitrary grid configurations: objectives
    /// are finite and non-negative, and measurement is deterministic.
    #[test]
    fn simulator_outputs_sane_for_random_configs(seed in 0u64..10_000) {
        let sim = Simulator::new(
            SubjectSystem::X264.build(),
            Environment::on(Hardware::Tx2),
            77,
        );
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let c = sim.model.space.random_config(&mut rng);
        let s1 = sim.measure(&c);
        let s2 = sim.measure(&c);
        prop_assert_eq!(&s1.objectives, &s2.objectives);
        for &o in &s1.objectives {
            prop_assert!(o.is_finite());
            prop_assert!(o >= 0.0, "negative objective {}", o);
        }
        for &e in &s1.events {
            prop_assert!(e.is_finite());
        }
    }
}
