//! The determinism contract of the batched query planner: every engine
//! answer — the option-ACE table, causal-path ranking, root-cause
//! ranking, repair list (ICE and improvement bits), and the scalar
//! performance queries — must be **bit-identical** between the legacy
//! serial path (one interventional sweep per estimate, the free functions
//! in `ace`/`repair`) and the planned path (`FittedScm::evaluate_plan`),
//! for pools of 1, 2, and 8 workers, and stable across repeated
//! submissions to a reused pool.

use std::sync::Arc;

use proptest::prelude::*;

use unicorn::exec::Executor;
use unicorn::graph::{Admg, TierConstraints, VarKind};
use unicorn::inference::{
    ace, generate_repairs, option_aces, quantile_values, rank_causal_paths, rank_repairs,
    root_cause_candidates, CausalEngine, ExplicitDomain, FittedScm, PerformanceQuery, QosGoal,
    QueryAnswer, RankedPath, Repair, RepairOptions,
};

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Three options → two events → one objective, with enough edge overlap
/// that causal paths share links (exercising the planner's dedup).
fn fixture(n: usize, seed: u64) -> (Admg, Vec<Vec<f64>>, TierConstraints, ExplicitDomain) {
    let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(777);
    let mut cols: Vec<Vec<f64>> = (0..6).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let o0 = (i % 3) as f64;
        let o1 = (i % 2) as f64;
        let o2 = ((i / 3) % 4) as f64;
        let e0 = 2.0 * o0 + 0.7 * o1 + 0.3 * lcg(&mut s);
        let e1 = 1.2 * o2 - 0.8 * e0 + 0.3 * lcg(&mut s);
        let obj = 1.5 * e0 - e1 + 0.2 * lcg(&mut s);
        for (c, v) in cols.iter_mut().zip([o0, o1, o2, e0, e1, obj]) {
            c.push(v);
        }
    }
    let mut g = Admg::new(
        ["o0", "o1", "o2", "e0", "e1", "obj"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    g.add_directed(0, 3);
    g.add_directed(1, 3);
    g.add_directed(2, 4);
    g.add_directed(3, 4);
    g.add_directed(3, 5);
    g.add_directed(4, 5);
    let tiers = TierConstraints::new(vec![
        VarKind::ConfigOption,
        VarKind::ConfigOption,
        VarKind::ConfigOption,
        VarKind::SystemEvent,
        VarKind::SystemEvent,
        VarKind::Objective,
    ]);
    let domain = ExplicitDomain {
        values: vec![
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0, 2.0, 3.0],
            quantile_values(&cols[3]),
            quantile_values(&cols[4]),
            vec![],
        ],
    };
    (g, cols, tiers, domain)
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn path_fingerprint(paths: &[RankedPath]) -> Vec<(Vec<usize>, u64)> {
    paths
        .iter()
        .map(|p| (p.path.nodes.clone(), bits(p.score)))
        .collect()
}

/// `(assignment bits, ICE bits, improvement bits)` of one ranked repair.
type RepairBits = (Vec<(usize, u64)>, u64, u64);

fn repair_fingerprint(repairs: &[Repair]) -> Vec<RepairBits> {
    repairs
        .iter()
        .map(|r| {
            (
                r.assignments.iter().map(|&(o, v)| (o, bits(v))).collect(),
                bits(r.ice),
                bits(r.improvement),
            )
        })
        .collect()
}

/// The pre-planner engine code, reconstructed from the legacy serial free
/// functions — the oracle every planned answer is pinned against.
struct LegacyAnswers {
    aces: Vec<(usize, u64)>,
    paths: Vec<(Vec<usize>, u64)>,
    root_causes: Vec<(usize, u64)>,
    repairs: Vec<RepairBits>,
    expectation: u64,
    probability: u64,
    effect: u64,
}

#[allow(clippy::too_many_arguments)]
fn legacy_answers(
    scm: &FittedScm,
    tiers: &TierConstraints,
    domain: &ExplicitDomain,
    opts: &RepairOptions,
    goal: &QosGoal,
    fault_row: usize,
    objective: usize,
    threshold: f64,
) -> LegacyAnswers {
    let options = tiers.of_kind(VarKind::ConfigOption);
    let aces = option_aces(scm, objective, &options, domain)
        .into_iter()
        .map(|(o, a)| (o, bits(a)))
        .collect();
    let paths = path_fingerprint(&rank_causal_paths(
        scm,
        objective,
        domain,
        opts.top_k_paths,
        opts.path_cap,
    ));
    // Legacy rank_root_causes: per-candidate, per-objective serial ACE.
    let candidates = root_cause_candidates(scm, goal, tiers, domain, opts);
    let mut scores: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&o| {
            let total: f64 = goal
                .thresholds
                .iter()
                .map(|&(obj, _)| option_aces(scm, obj, &[o], domain)[0].1)
                .sum();
            (o, total)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN ACE"));
    let root_causes = scores.into_iter().map(|(o, a)| (o, bits(a))).collect();
    // Legacy recommend_repairs: serial ICE sweep + counterfactual each.
    let fault: Vec<f64> = (0..scm.n_vars())
        .map(|v| scm.data()[v][fault_row])
        .collect();
    let generated = generate_repairs(&fault, &candidates, domain, opts);
    let repairs = repair_fingerprint(&rank_repairs(scm, goal, fault_row, generated, opts));
    // Legacy scalar queries.
    let ivs = vec![(0usize, 1.0)];
    let expectation = bits(scm.interventional_expectation(objective, &ivs));
    let probability =
        bits(scm.interventional_probability(objective, &ivs, 0, 0.0, &|y| y <= threshold));
    let effect = bits(ace(scm, objective, 1, &domain.values[1]));
    LegacyAnswers {
        aces,
        paths,
        root_causes,
        repairs,
        expectation,
        probability,
        effect,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Legacy serial answers vs planned answers, across pools of 1/2/8
    /// workers, twice per reused pool.
    #[test]
    fn engine_answers_bit_identical_to_serial_path(
        seed in 0u64..1_000_000,
        n in 80usize..160,
    ) {
        let (g, cols, tiers, domain) = fixture(n, seed);
        let opts = RepairOptions {
            max_pairs: 6,
            ..RepairOptions::default()
        };
        let objective = 5usize;
        // Fault: the worst observed objective value; QoS: its median.
        let obj_col = &cols[objective];
        let fault_row = obj_col
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let threshold = unicorn::stats::quantile(obj_col, 0.5);
        let goal = QosGoal::single(objective, threshold);

        // The oracle: legacy serial loops on a single-worker pool.
        let serial_pool = Executor::new(1);
        let scm_ref =
            FittedScm::fit_view_on(g.clone(), &unicorn::stats::dataview::DataView::from_columns(&cols), serial_pool)
                .expect("fit");
        let legacy = legacy_answers(
            &scm_ref, &tiers, &domain, &opts, &goal, fault_row, objective, threshold,
        );

        for &threads in &[1usize, 2, 8] {
            let pool = Executor::new(threads);
            let scm = FittedScm::fit_view_on(
                g.clone(),
                &unicorn::stats::dataview::DataView::from_columns(&cols),
                Arc::clone(&pool),
            )
            .expect("fit");
            let engine = CausalEngine::new(scm, tiers.clone(), Arc::new(domain.clone()))
                .with_repair_options(opts.clone());
            // Twice per pool: plans must be stable across reused workers.
            for round in 0..2 {
                let ctx = format!("threads {threads} round {round}");

                let aces: Vec<(usize, u64)> = engine
                    .option_effects(objective)
                    .into_iter()
                    .map(|(o, a)| (o, bits(a)))
                    .collect();
                prop_assert_eq!(&aces, &legacy.aces, "ACE table diverged ({})", &ctx);

                let paths = path_fingerprint(&engine.top_paths(objective, opts.top_k_paths));
                prop_assert_eq!(&paths, &legacy.paths, "path ranking diverged ({})", &ctx);

                let rc: Vec<(usize, u64)> = engine
                    .rank_root_causes(&goal)
                    .into_iter()
                    .map(|(o, a)| (o, bits(a)))
                    .collect();
                prop_assert_eq!(&rc, &legacy.root_causes, "root causes diverged ({})", &ctx);

                let repairs = repair_fingerprint(&engine.recommend_repairs(&goal, fault_row));
                prop_assert_eq!(&repairs, &legacy.repairs, "repairs diverged ({})", &ctx);

                // Scalar queries, batched through one estimate_all plan.
                let answers = engine.estimate_all(&[
                    PerformanceQuery::ExpectedObjective {
                        interventions: vec![(0, 1.0)],
                        objective,
                    },
                    PerformanceQuery::ProbabilityOfQos {
                        interventions: vec![(0, 1.0)],
                        objective,
                        threshold,
                    },
                    PerformanceQuery::CausalEffect {
                        option: 1,
                        objective,
                    },
                ]);
                match answers.as_slice() {
                    [QueryAnswer::Expectation(e), QueryAnswer::Probability(p), QueryAnswer::Effect(a)] =>
                    {
                        prop_assert_eq!(bits(*e), legacy.expectation, "E diverged ({})", &ctx);
                        prop_assert_eq!(bits(*p), legacy.probability, "P diverged ({})", &ctx);
                        prop_assert_eq!(bits(*a), legacy.effect, "ACE query diverged ({})", &ctx);
                    }
                    other => prop_assert!(false, "unexpected answers {:?} ({})", other, &ctx),
                }
            }
            prop_assert!(pool.workers_spawned() <= threads.saturating_sub(1));
        }
    }
}

/// ICE plan items must reproduce the legacy serial `ice` sweep bit for
/// bit, including the empty-assignment (factual) sweep.
#[test]
fn planned_ice_matches_serial_ice() {
    let (g, cols, _tiers, _domain) = fixture(120, 42);
    let scm = FittedScm::fit(g, &cols).expect("fit");
    let goal = QosGoal::single(5, 0.5);
    let mut plan = unicorn::inference::QueryPlan::new();
    let cases: Vec<Vec<(usize, f64)>> = vec![
        vec![],
        vec![(0, 0.0)],
        vec![(0, 2.0), (1, 1.0)],
        vec![(2, 3.0)],
    ];
    let handles: Vec<_> = cases
        .iter()
        .map(|assignments| plan.ice(&goal, 7, assignments, 0.5))
        .collect();
    let results = scm.evaluate_plan(&plan);
    for (assignments, &h) in cases.iter().zip(&handles) {
        let serial = unicorn::inference::ice(&scm, &goal, 7, assignments, 0.5);
        assert_eq!(
            results.scalar(h).to_bits(),
            serial.to_bits(),
            "ICE diverged for {assignments:?}"
        );
    }
}
