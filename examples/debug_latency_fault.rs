//! Performance debugging end-to-end: find a latency fault in the tail of
//! x264's performance distribution, diagnose its root causes with the
//! Unicorn loop, compare against the BugDoc baseline, and score both
//! against the simulator's exact ground truth.
//!
//! ```sh
//! cargo run --release --example debug_latency_fault
//! ```

use unicorn::baselines::{BugDoc, DebugBudget, Debugger};
use unicorn::core::{debug_fault, score_debugging, UnicornOptions};
use unicorn::systems::{
    discover_faults, Environment, FaultDiscoveryOptions, Hardware, Simulator, SubjectSystem,
};

fn main() {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        1234,
    );

    // Build the Jetson-Faults style catalog: tail (99th percentile)
    // configurations with ground-truth root causes.
    let catalog = discover_faults(
        &sim,
        &FaultDiscoveryOptions {
            n_samples: 1000,
            ..Default::default()
        },
    );
    let fault = catalog
        .faults
        .iter()
        .find(|f| f.objectives.contains(&0))
        .expect("a latency fault exists in the tail");
    println!(
        "Fault: latency {:.1} s (threshold {:.1} s), true root causes: {:?}",
        fault.true_objectives[0],
        catalog.thresholds[0],
        fault
            .root_causes
            .iter()
            .map(|&o| sim.model.space.option(o).name.clone())
            .collect::<Vec<_>>()
    );

    // Unicorn: causal debugging.
    let out = debug_fault(
        &sim,
        fault,
        &catalog,
        &UnicornOptions {
            initial_samples: 75,
            budget: 15,
            ..Default::default()
        },
    );
    let uni_scores = score_debugging(
        fault,
        &catalog,
        &out.diagnosed_options,
        &sim.true_objectives(&out.best_config),
        out.wall_time_s,
        out.n_measurements,
    );
    println!("\nUnicorn:");
    println!(
        "  diagnosed: {:?}",
        out.diagnosed_options
            .iter()
            .map(|&o| sim.model.space.option(o).name.clone())
            .collect::<Vec<_>>()
    );
    println!(
        "  accuracy {:.0}%, precision {:.0}%, recall {:.0}%, gain {:.0}%, \
         {} measurements, {:.1}s",
        uni_scores.accuracy,
        uni_scores.precision,
        uni_scores.recall,
        uni_scores.gains[0],
        uni_scores.n_measurements,
        uni_scores.time_s,
    );

    // BugDoc baseline under the same budget.
    let bd = BugDoc::default().debug(
        &sim,
        fault,
        &catalog,
        &DebugBudget {
            n_samples: 75,
            n_probes: 15,
        },
        99,
    );
    let bd_scores = score_debugging(
        fault,
        &catalog,
        &bd.diagnosed_options,
        &sim.true_objectives(&bd.best_config),
        bd.wall_time_s,
        bd.n_measurements,
    );
    println!("\nBugDoc (same budget):");
    println!(
        "  accuracy {:.0}%, precision {:.0}%, recall {:.0}%, gain {:.0}%",
        bd_scores.accuracy, bd_scores.precision, bd_scores.recall, bd_scores.gains[0],
    );

    println!(
        "\nUnicorn vs BugDoc gain: {:.0}% vs {:.0}%  (fault fixed: {})",
        uni_scores.gains[0], bd_scores.gains[0], out.fixed
    );
}
