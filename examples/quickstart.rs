//! Quickstart: learn a causal performance model for the x264 encoder and
//! ask it causal questions — the five-minute tour of the API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use unicorn::discovery::{learn_causal_model_on, DiscoveryOptions};
use unicorn::inference::{CausalEngine, FittedScm, PerformanceQuery, QueryAnswer};
use unicorn::systems::{generate, ScenarioRegistry};

fn main() {
    // 1. A simulated testbed: x264 deployed on a TX2-class board, pulled
    //    from the scenario registry (the one catalog every harness reads).
    let sim = ScenarioRegistry::standard()
        .get("x264")
        .expect("registered scenario")
        .simulator(42);
    println!(
        "x264: {} options, {} events, {} objectives, {:.2e} configurations",
        sim.model.n_options(),
        sim.model.n_events(),
        sim.model.n_objectives(),
        sim.model.space.cardinality() as f64,
    );

    // 2. Measure 200 random configurations (5 repetitions, median).
    let data = generate(&sim, 200, 7);

    // 3. Learn the causal performance model (Stage II) over a shared
    //    columnar view: the SCM fit below reuses its cached statistics.
    let view = data.view();
    let model = learn_causal_model_on(
        &view,
        &data.names,
        &sim.model.tiers(),
        &DiscoveryOptions::default(),
    );
    println!("\nLearned causal performance model:");
    for &(f, t) in model.admg.directed_edges() {
        println!("  {} -> {}", data.names[f], data.names[t]);
    }

    // 4. Build the inference engine and estimate causal queries (Stage V).
    let scm = FittedScm::fit_view(model.admg.clone(), &view).expect("SCM fit");
    let engine = CausalEngine::new(
        scm,
        sim.model.tiers(),
        std::sync::Arc::new(data.domains(&sim)),
    );

    let latency = data.objective_node(0);
    let cpu = sim
        .model
        .space
        .index_of("CPU Frequency")
        .expect("known option");

    // "What is the causal effect of the CPU clock on encode latency?"
    if let QueryAnswer::Effect(ace) = engine.estimate(&PerformanceQuery::CausalEffect {
        option: cpu,
        objective: latency,
    }) {
        println!("\nACE(CPU Frequency -> Latency) = {ace:.2} s");
    }

    // "E[latency | do(CPU Frequency = 0.3)] vs do(CPU Frequency = 2.0)"
    for (label, v) in [("0.3 GHz", 0.3), ("2.0 GHz", 2.0)] {
        if let QueryAnswer::Expectation(e) = engine.estimate(&PerformanceQuery::ExpectedObjective {
            interventions: vec![(cpu, v)],
            objective: latency,
        }) {
            println!("E[Latency | do(CPU Frequency = {label})] = {e:.2} s");
        }
    }

    // "P(latency <= 30 s | do(CPU Frequency = 2.0 GHz))" — the paper's
    // P(Th > 40/s | do(BufferSize = 6k)) style QoS query.
    if let QueryAnswer::Probability(p) = engine.estimate(&PerformanceQuery::ProbabilityOfQos {
        interventions: vec![(cpu, 2.0)],
        objective: latency,
        threshold: 30.0,
    }) {
        println!("P(Latency <= 30 s | do(CPU Frequency = 2.0 GHz)) = {p:.2}");
    }

    // 5. Or phrase the same questions textually (the query DSL).
    let parsed =
        unicorn::inference::parse_query(&data.names, "P(Latency <= 30 | do(CPU Frequency = 2.0))")
            .expect("well-formed query");
    if let QueryAnswer::Probability(p) = engine.estimate(&parsed) {
        println!("DSL query answered: {p:.2}");
    }

    // 6. Rank the root causes of high latency.
    let goal = unicorn::inference::QosGoal::single(
        latency,
        unicorn::stats::quantile(data.objective_column(0), 0.5),
    );
    println!("\nOptions ranked by causal effect on latency:");
    for (o, ace) in engine.rank_root_causes(&goal).into_iter().take(5) {
        println!("  {:28} ACE = {ace:.3}", data.names[o]);
    }
}
