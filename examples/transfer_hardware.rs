//! Transferability: learn a causal performance model for Xception on
//! Xavier, then debug energy faults on TX2 by (i) reusing the model as-is,
//! (ii) updating it with 25 target samples, and (iii) relearning from
//! scratch — the paper's §8 / Fig 16 protocol.
//!
//! ```sh
//! cargo run --release --example transfer_hardware
//! ```

use unicorn::core::{
    learn_source_state, score_debugging, transfer_debug, TransferMode, UnicornOptions,
};
use unicorn::systems::{discover_faults, FaultDiscoveryOptions, ScenarioRegistry};

fn main() {
    // The registry's Xception entry carries the Fig 16 shift: source on
    // Xavier, transfer target on TX2.
    let registry = ScenarioRegistry::standard();
    let scenario = registry.get("xception").expect("registered scenario");
    let source = scenario.simulator(31);
    let target = scenario
        .target_simulator(32)
        .expect("xception carries a hardware shift");

    let catalog = discover_faults(
        &target,
        &FaultDiscoveryOptions {
            n_samples: 800,
            ..Default::default()
        },
    );
    let fault = catalog
        .faults
        .iter()
        .find(|f| f.objectives.contains(&1))
        .or_else(|| catalog.faults.first())
        .expect("a fault exists");
    println!(
        "target fault: objectives {:?}, energy {:.1} J",
        fault.objectives, fault.true_objectives[1]
    );

    let opts = UnicornOptions {
        initial_samples: 60,
        budget: 10,
        ..Default::default()
    };
    println!(
        "\nlearning source model on Xavier ({} samples)…",
        opts.initial_samples
    );
    let src_state = learn_source_state(&source, &opts);
    println!(
        "source model: {} directed edges",
        src_state.model.admg.directed_edges().len()
    );

    for mode in [
        TransferMode::Reuse,
        TransferMode::Update(25),
        TransferMode::Rerun,
    ] {
        let out = transfer_debug(&src_state, &target, fault, &catalog, &opts, mode);
        let scores = score_debugging(
            fault,
            &catalog,
            &out.diagnosed_options,
            &target.true_objectives(&out.best_config),
            out.wall_time_s,
            out.n_measurements,
        );
        println!(
            "Unicorn ({:<6}): accuracy {:5.1}%, recall {:5.1}%, gain {:5.1}%, \
             {:2} target measurements, {:.1}s",
            mode.label(),
            scores.accuracy,
            scores.recall,
            scores.gains.first().copied().unwrap_or(0.0),
            scores.n_measurements,
            scores.time_s,
        );
    }
    println!(
        "\nexpected shape (paper): Reuse ≈ Rerun at a fraction of the target \
         measurements; +25 closes the rest of the gap."
    );
}
