//! Multi-objective optimization: walk the latency/energy Pareto front of
//! Xception on TX2 with the causal loop and compare against the
//! PESMO-style baseline (Fig 15 c/d of the paper).
//!
//! ```sh
//! cargo run --release --example optimize_multiobjective
//! ```

use unicorn::baselines::{hv_error_history, pesmo_optimize, PesmoOptions};
use unicorn::core::{optimize_multi, UnicornOptions};
use unicorn::stats::pareto::pareto_front;
use unicorn::systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn main() {
    let sim = Simulator::new(
        SubjectSystem::Xception.build(),
        Environment::on(Hardware::Tx2),
        2024,
    );

    // Reference front from a broad random sweep (evaluation aid only).
    let sweep = generate(&sim, 300, 11);
    let pts: Vec<Vec<f64>> = (0..sweep.n_rows())
        .map(|r| vec![sweep.objective_column(0)[r], sweep.objective_column(1)[r]])
        .collect();
    let reference = pareto_front(&pts);
    let ref_point = [
        pts.iter().map(|p| p[0]).fold(0.0, f64::max) * 1.1,
        pts.iter().map(|p| p[1]).fold(0.0, f64::max) * 1.1,
    ];
    println!(
        "reference front: {} points from a {}-sample sweep",
        reference.len(),
        sweep.n_rows()
    );

    // Unicorn's causal multi-objective loop.
    let opts = UnicornOptions {
        initial_samples: 25,
        budget: 35,
        ..Default::default()
    };
    let uni = optimize_multi(&sim, &[0, 1], &reference, &ref_point, &opts);
    println!(
        "\nUnicorn: {} evaluations, final hypervolume error {:.3}",
        uni.evaluated.len(),
        uni.hv_error_history.last().expect("non-empty"),
    );
    let mut front = uni.front.clone();
    front.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("NaN"));
    println!("Unicorn Pareto front (latency s, energy J):");
    for p in &front {
        println!("  ({:6.2}, {:6.2})", p[0], p[1]);
    }

    // PESMO-style baseline with the same budget.
    let pesmo = pesmo_optimize(
        &sim,
        &[0, 1],
        &PesmoOptions {
            n_init: 25,
            budget: 60,
            ..Default::default()
        },
    );
    let pesmo_err = hv_error_history(&pesmo, &reference, &ref_point);
    println!(
        "\nPESMO: {} evaluations, final hypervolume error {:.3}",
        pesmo.evaluated.len(),
        pesmo_err.last().expect("non-empty"),
    );
    println!(
        "\nshape check (paper Fig 15c): Unicorn error {:.3} <= PESMO error {:.3}: {}",
        uni.hv_error_history.last().unwrap(),
        pesmo_err.last().unwrap(),
        uni.hv_error_history.last().unwrap() <= pesmo_err.last().unwrap(),
    );
}
