//! Scalability: diagnose a latency fault in the 242-option / 288-event
//! SQLite variant — several trillion potential configurations — and watch
//! the causal graph stay sparse (the paper's §9 / Table 3 argument).
//!
//! ```sh
//! cargo run --release --example scalability_sqlite
//! ```

use std::time::Instant;

use unicorn::core::{debug_fault, UnicornOptions};
use unicorn::discovery::DiscoveryOptions;
use unicorn::systems::{discover_faults, FaultDiscoveryOptions, ScenarioRegistry};

fn main() {
    let sim = ScenarioRegistry::scalability()
        .get("sqlite-242opt-288ev")
        .expect("registered scenario")
        .simulator(3);
    println!(
        "SQLite scalability variant: {} options, {} events, {:.2e} \
         configurations",
        sim.model.n_options(),
        sim.model.n_events(),
        sim.model.space.cardinality() as f64,
    );

    let catalog = discover_faults(
        &sim,
        &FaultDiscoveryOptions {
            n_samples: 400,
            ace_bases: 4,
            ..Default::default()
        },
    );
    let fault = catalog
        .faults
        .iter()
        .find(|f| f.objectives.contains(&0))
        .or_else(|| catalog.faults.first())
        .expect("a fault exists");
    println!(
        "fault: latency {:.1} s, {} labeled root causes",
        fault.true_objectives[0],
        fault.root_causes.len()
    );

    let start = Instant::now();
    let out = debug_fault(
        &sim,
        fault,
        &catalog,
        &UnicornOptions {
            initial_samples: 150,
            budget: 8,
            relearn_every: 4,
            // Depth-1 conditioning is ample at this dimensionality and
            // keeps the 530-variable search interactive.
            discovery: DiscoveryOptions {
                alpha: 1e-4,
                max_depth: 1,
                pds_depth: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let elapsed = start.elapsed().as_secs_f64();

    let after = sim.true_objectives(&out.best_config)[0];
    println!(
        "\ndiagnosed {} options, latency {:.1} -> {:.1} s (gain {:.0}%), \
         {} measurements, {:.1}s wall time",
        out.diagnosed_options.len(),
        fault.true_objectives[0],
        after,
        unicorn::core::gain_percent(fault.true_objectives[0], after),
        out.n_measurements,
        elapsed,
    );
    println!(
        "sparsity: the trick that makes 530 variables tractable — most of \
         the 242 options and 288 events end up isolated in the causal graph."
    );
}
