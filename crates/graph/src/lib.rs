//! # unicorn-graph
//!
//! Causal-graph data structures for the Unicorn (EuroSys '22) reproduction:
//! mixed graphs with endpoint marks (the PAGs produced by FCI), acyclic
//! directed mixed graphs (the ADMGs causal queries are evaluated on),
//! m-separation, directed-path backtracking from performance objectives,
//! structural hamming distance, DOT export, and the tier constraints the
//! paper imposes on causal performance models (§3: "configuration options
//! do not cause other options"; objectives are sinks).

pub mod admg;
pub mod dot;
pub mod dsep;
pub mod mixed;
pub mod paths;
pub mod shd;
pub mod tiers;

pub use admg::Admg;
pub use mixed::{Edge, Endpoint, MixedGraph};
pub use paths::{backtrack_causal_paths, CausalPath};
pub use shd::{skeleton_distance, structural_hamming_distance};
pub use tiers::{TierConstraints, VarKind};

/// Node identifier: index into the graph's node table.
pub type NodeId = usize;
