//! Tier (background-knowledge) constraints on causal performance models.
//!
//! The paper (§3) defines three variable types — configuration options,
//! intermediate system events, and end-to-end performance objectives — and
//! two structural constraints: configuration options do not cause other
//! options, and options cannot be children of performance objectives.
//! These constraints both sparsify the search (fewer adjacency tests) and
//! pre-orient edges (any option–event or option–objective edge must point
//! away from the option; objectives are sinks).

use crate::mixed::{Endpoint, MixedGraph};
use crate::NodeId;

/// The role a variable plays in a causal performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A software/hardware/kernel configuration option (intervenable unless
    /// flagged otherwise by the caller).
    ConfigOption,
    /// An intermediate performance variable (perf event, tracepoint, or
    /// middleware trace) — observable but not directly intervenable.
    SystemEvent,
    /// An end-to-end performance objective (throughput, energy, heat, …).
    Objective,
}

/// Tier constraints over a fixed variable list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierConstraints {
    kinds: Vec<VarKind>,
}

impl TierConstraints {
    /// Builds constraints from per-variable kinds.
    pub fn new(kinds: Vec<VarKind>) -> Self {
        Self { kinds }
    }

    /// Kind of variable `x`.
    pub fn kind(&self, x: NodeId) -> VarKind {
        self.kinds[x]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if there are no variables.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Variables of a given kind.
    pub fn of_kind(&self, k: VarKind) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&i| self.kinds[i] == k)
            .collect()
    }

    /// Whether an adjacency between `x` and `y` is forbidden outright.
    ///
    /// Option–option edges are forbidden ("configuration options do not
    /// cause other options", and an option–option adjacency could encode
    /// nothing else since latent confounding among independently set
    /// options is impossible by construction). Objective–objective
    /// adjacencies are likewise excluded: objectives are joint effects,
    /// and their dependence is explained through shared causes.
    pub fn adjacency_forbidden(&self, x: NodeId, y: NodeId) -> bool {
        matches!(
            (self.kinds[x], self.kinds[y]),
            (VarKind::ConfigOption, VarKind::ConfigOption)
                | (VarKind::Objective, VarKind::Objective)
        )
    }

    /// Whether an arrowhead *at* `at` on an edge between `at` and `other`
    /// is forbidden (i.e. `other *→ at` is impossible).
    ///
    /// Nothing may point into a configuration option (options are
    /// exogenous sources), and nothing may point *out of* an objective —
    /// which forbids an arrowhead at the event end of an event–objective
    /// edge. The latter also rules out event ↔ objective confounding
    /// marks: any dependence between an event and an objective that
    /// survives CI pruning is modeled as causal influence into the
    /// objective. Without this, a single spurious collider orientation at
    /// small sample sizes (sepsets are noisy) would sever every causal
    /// path into the objective and leave the repair engine empty-handed.
    pub fn arrowhead_forbidden_at(&self, at: NodeId, other: NodeId) -> bool {
        self.kinds[at] == VarKind::ConfigOption
            || (self.kinds[at] == VarKind::SystemEvent && self.kinds[other] == VarKind::Objective)
    }

    /// Applies tier-based orientations to a mixed graph in place:
    /// every edge incident to an option is oriented out of the option;
    /// every edge incident to an objective is oriented into the objective
    /// (tail at the far end — objectives are pure sinks).
    pub fn orient(&self, g: &mut MixedGraph) {
        for e in g.edges() {
            for (this, other) in [(e.a, e.b), (e.b, e.a)] {
                match self.kinds[this] {
                    VarKind::ConfigOption => {
                        // Option end gets a tail, far end gets an arrow.
                        g.orient(this, other, Endpoint::Tail);
                        g.orient(other, this, Endpoint::Arrow);
                    }
                    VarKind::Objective => {
                        // Objective end gets an arrow, far end a tail.
                        g.orient(this, other, Endpoint::Arrow);
                        g.orient(other, this, Endpoint::Tail);
                    }
                    VarKind::SystemEvent => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> TierConstraints {
        TierConstraints::new(vec![
            VarKind::ConfigOption, // 0
            VarKind::ConfigOption, // 1
            VarKind::SystemEvent,  // 2
            VarKind::Objective,    // 3
        ])
    }

    #[test]
    fn option_option_adjacency_forbidden() {
        let t = stack();
        assert!(t.adjacency_forbidden(0, 1));
        assert!(!t.adjacency_forbidden(0, 2));
        assert!(!t.adjacency_forbidden(2, 3));
    }

    #[test]
    fn arrow_into_option_forbidden() {
        let t = stack();
        assert!(t.arrowhead_forbidden_at(0, 2));
        assert!(!t.arrowhead_forbidden_at(2, 0));
        assert!(!t.arrowhead_forbidden_at(3, 2));
    }

    #[test]
    fn orientation_pass_fixes_marks() {
        let t = stack();
        let mut g = MixedGraph::new((0..4).map(|i| format!("v{i}")).collect());
        g.add_circle_edge(0, 2); // option o—o event → must become 0 → 2
        g.add_circle_edge(2, 3); // event o—o objective → must become 2 → 3
        t.orient(&mut g);
        assert!(g.is_directed(0, 2));
        assert!(g.is_directed(2, 3));
    }

    #[test]
    fn of_kind_partitions() {
        let t = stack();
        assert_eq!(t.of_kind(VarKind::ConfigOption), vec![0, 1]);
        assert_eq!(t.of_kind(VarKind::SystemEvent), vec![2]);
        assert_eq!(t.of_kind(VarKind::Objective), vec![3]);
        assert_eq!(t.len(), 4);
    }
}
