//! m-separation on ADMGs.
//!
//! Bidirected edges are handled by *canonical DAG augmentation*: each
//! `a ←→ b` is replaced by a fresh latent `l → a, l → b`, after which plain
//! d-separation on the augmented DAG coincides with m-separation on the
//! ADMG (Richardson 2003). d-separation itself is the classic reachability
//! ("Bayes-ball") algorithm.

use crate::admg::Admg;
use crate::NodeId;
use std::collections::{BTreeSet, HashSet};

/// Tests whether `x` and `y` are m-separated given `z` in the ADMG.
pub fn m_separated(g: &Admg, x: NodeId, y: NodeId, z: &BTreeSet<NodeId>) -> bool {
    if x == y {
        return false;
    }
    // Build augmented parent/child lists: original nodes 0..n, latents
    // n..n+|bidirected|.
    let n = g.n_nodes();
    let nb = g.bidirected_edges().len();
    let total = n + nb;
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); total];
    let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); total];
    for &(f, t) in g.directed_edges() {
        children[f].push(t);
        parents[t].push(f);
    }
    for (i, &(a, b)) in g.bidirected_edges().iter().enumerate() {
        let l = n + i;
        children[l].push(a);
        children[l].push(b);
        parents[a].push(l);
        parents[b].push(l);
    }

    // Precompute: is node (or any of its descendants) in z? Needed for
    // collider activation.
    let mut in_z_or_desc = vec![false; total];
    for &node in z {
        if node < n {
            in_z_or_desc[node] = true;
        }
    }
    // Propagate upward: a node is active as a collider if it has a
    // descendant in z.
    let mut changed = true;
    while changed {
        changed = false;
        for node in 0..total {
            if !in_z_or_desc[node] && children[node].iter().any(|&c| in_z_or_desc[c]) {
                in_z_or_desc[node] = true;
                changed = true;
            }
        }
    }

    // Bayes-ball reachability from x: states are (node, direction), where
    // direction ∈ {FromChild, FromParent} — i.e., we arrived at `node`
    // travelling up (against arrows) or down (along arrows).
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Dir {
        Up,   // arrived from a child (moving against edge direction)
        Down, // arrived from a parent (moving along edge direction)
    }
    let mut visited: HashSet<(NodeId, Dir)> = HashSet::new();
    let mut stack: Vec<(NodeId, Dir)> = vec![(x, Dir::Up)];
    while let Some((node, dir)) = stack.pop() {
        if !visited.insert((node, dir)) {
            continue;
        }
        if node == y {
            return false; // Active path found ⇒ not separated.
        }
        let node_in_z = node < n && z.contains(&node);
        match dir {
            Dir::Up => {
                // Arrived against arrows: if node not in z, can continue to
                // parents (still up) and to children (down).
                if !node_in_z {
                    for &p in &parents[node] {
                        stack.push((p, Dir::Up));
                    }
                    for &c in &children[node] {
                        stack.push((c, Dir::Down));
                    }
                }
            }
            Dir::Down => {
                // Arrived along arrows: chain continues to children if node
                // not in z; collider opens to parents if node has a
                // descendant in z (or is in z).
                if !node_in_z {
                    for &c in &children[node] {
                        stack.push((c, Dir::Down));
                    }
                }
                if in_z_or_desc[node] {
                    for &p in &parents[node] {
                        stack.push((p, Dir::Up));
                    }
                }
            }
        }
    }
    true
}

/// Convenience wrapper taking a slice for the conditioning set.
pub fn m_separated_slice(g: &Admg, x: NodeId, y: NodeId, z: &[NodeId]) -> bool {
    m_separated(g, x, y, &z.iter().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn chain_separation() {
        // 0 → 1 → 2.
        let mut g = Admg::new(names(3));
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        assert!(!m_separated_slice(&g, 0, 2, &[]));
        assert!(m_separated_slice(&g, 0, 2, &[1]));
    }

    #[test]
    fn fork_separation() {
        // 0 ← 1 → 2 (1 is the common cause).
        let mut g = Admg::new(names(3));
        g.add_directed(1, 0);
        g.add_directed(1, 2);
        assert!(!m_separated_slice(&g, 0, 2, &[]));
        assert!(m_separated_slice(&g, 0, 2, &[1]));
    }

    #[test]
    fn collider_separation() {
        // 0 → 1 ← 2: marginally independent, dependent given the collider
        // or its descendant.
        let mut g = Admg::new(names(4));
        g.add_directed(0, 1);
        g.add_directed(2, 1);
        g.add_directed(1, 3);
        assert!(m_separated_slice(&g, 0, 2, &[]));
        assert!(!m_separated_slice(&g, 0, 2, &[1]));
        assert!(!m_separated_slice(&g, 0, 2, &[3])); // descendant of collider
    }

    #[test]
    fn bidirected_edge_behaves_like_latent_confounder() {
        // 0 ←→ 1: dependent marginally; no conditioning set separates them.
        let mut g = Admg::new(names(2));
        g.add_bidirected(0, 1);
        assert!(!m_separated_slice(&g, 0, 1, &[]));
    }

    #[test]
    fn bidirected_collider() {
        // 0 → 1 ←→ 2: 0 and 2 marginally independent; conditioning on 1
        // opens the path.
        let mut g = Admg::new(names(3));
        g.add_directed(0, 1);
        g.add_bidirected(1, 2);
        assert!(m_separated_slice(&g, 0, 2, &[]));
        assert!(!m_separated_slice(&g, 0, 2, &[1]));
    }

    #[test]
    fn m_connection_through_long_path() {
        // 0 → 1 → 2 → 3 with nothing conditioned: connected.
        let mut g = Admg::new(names(4));
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        g.add_directed(2, 3);
        assert!(!m_separated_slice(&g, 0, 3, &[]));
        assert!(m_separated_slice(&g, 0, 3, &[2]));
        assert!(m_separated_slice(&g, 0, 3, &[1]));
    }

    #[test]
    fn symmetry() {
        let mut g = Admg::new(names(3));
        g.add_directed(0, 1);
        g.add_bidirected(1, 2);
        for z in [vec![], vec![1]] {
            assert_eq!(
                m_separated_slice(&g, 0, 2, &z),
                m_separated_slice(&g, 2, 0, &z)
            );
        }
    }
}
