//! Mixed graphs with endpoint marks — the representation FCI works on.
//!
//! Every edge has two endpoint marks from `{Tail, Arrow, Circle}`:
//!
//! * `A —→ B` (Tail at A, Arrow at B): A causes B.
//! * `A ←→ B` (Arrow, Arrow): latent confounder between A and B.
//! * `A o→ B` (Circle, Arrow): B does not cause A; A may cause B or they
//!   may be confounded.
//! * `A o—o B` (Circle, Circle): fully ambiguous.
//!
//! This matches the PAG edge vocabulary in §4 of the paper.

use crate::NodeId;
use std::collections::BTreeMap;

/// An endpoint mark of a mixed-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// No arrowhead: this endpoint is an ancestor side ("—").
    Tail,
    /// Arrowhead: causation points *into* this endpoint ("→").
    Arrow,
    /// Unknown mark ("o").
    Circle,
}

/// An undirected storage key: node pair in canonical (low, high) order.
fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// An edge between two nodes with marks at each end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Lower-indexed endpoint.
    pub a: NodeId,
    /// Higher-indexed endpoint.
    pub b: NodeId,
    /// Mark at `a`.
    pub mark_a: Endpoint,
    /// Mark at `b`.
    pub mark_b: Endpoint,
}

impl Edge {
    /// Mark at the given endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    pub fn mark_at(&self, n: NodeId) -> Endpoint {
        if n == self.a {
            self.mark_a
        } else if n == self.b {
            self.mark_b
        } else {
            panic!("node {n} is not an endpoint of this edge")
        }
    }

    /// True if this is a fully directed edge `from → to`.
    pub fn is_directed_from(&self, from: NodeId, to: NodeId) -> bool {
        (self.a == from
            && self.b == to
            && self.mark_a == Endpoint::Tail
            && self.mark_b == Endpoint::Arrow)
            || (self.b == from
                && self.a == to
                && self.mark_b == Endpoint::Tail
                && self.mark_a == Endpoint::Arrow)
    }

    /// True if both marks are arrows (bidirected / confounded).
    pub fn is_bidirected(&self) -> bool {
        self.mark_a == Endpoint::Arrow && self.mark_b == Endpoint::Arrow
    }

    /// True if any endpoint still carries a circle.
    pub fn has_circle(&self) -> bool {
        self.mark_a == Endpoint::Circle || self.mark_b == Endpoint::Circle
    }
}

/// A mixed graph over `n` nodes with named, kinded vertices.
#[derive(Debug, Clone, Default)]
pub struct MixedGraph {
    names: Vec<String>,
    edges: BTreeMap<(NodeId, NodeId), (Endpoint, Endpoint)>,
}

impl MixedGraph {
    /// Creates a graph with the given node names and no edges.
    pub fn new(names: Vec<String>) -> Self {
        Self {
            names,
            edges: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.names.len()
    }

    /// Node name.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n]
    }

    /// All node names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a node by name, if present.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name)
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Inserts or replaces the edge between `x` and `y` with the given
    /// marks (`mark_x` at `x`, `mark_y` at `y`).
    pub fn set_edge(&mut self, x: NodeId, y: NodeId, mark_x: Endpoint, mark_y: Endpoint) {
        assert!(x != y, "self loops are not allowed");
        let (a, b) = key(x, y);
        let marks = if a == x {
            (mark_x, mark_y)
        } else {
            (mark_y, mark_x)
        };
        self.edges.insert((a, b), marks);
    }

    /// Adds the fully ambiguous edge `x o—o y`.
    pub fn add_circle_edge(&mut self, x: NodeId, y: NodeId) {
        self.set_edge(x, y, Endpoint::Circle, Endpoint::Circle);
    }

    /// Adds the directed edge `x → y`.
    pub fn add_directed_edge(&mut self, x: NodeId, y: NodeId) {
        self.set_edge(x, y, Endpoint::Tail, Endpoint::Arrow);
    }

    /// Adds the bidirected edge `x ←→ y`.
    pub fn add_bidirected_edge(&mut self, x: NodeId, y: NodeId) {
        self.set_edge(x, y, Endpoint::Arrow, Endpoint::Arrow);
    }

    /// Removes the edge between `x` and `y`, if any.
    pub fn remove_edge(&mut self, x: NodeId, y: NodeId) {
        self.edges.remove(&key(x, y));
    }

    /// True if `x` and `y` are adjacent.
    pub fn adjacent(&self, x: NodeId, y: NodeId) -> bool {
        self.edges.contains_key(&key(x, y))
    }

    /// The edge between `x` and `y`, if any.
    pub fn edge(&self, x: NodeId, y: NodeId) -> Option<Edge> {
        let (a, b) = key(x, y);
        self.edges.get(&(a, b)).map(|&(mark_a, mark_b)| Edge {
            a,
            b,
            mark_a,
            mark_b,
        })
    }

    /// Mark at `x` on the edge between `x` and `y`, if adjacent.
    pub fn mark_at(&self, x: NodeId, y: NodeId) -> Option<Endpoint> {
        self.edge(x, y).map(|e| e.mark_at(x))
    }

    /// Sets the mark at `x` on the existing edge between `x` and `y`.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn orient(&mut self, x: NodeId, y: NodeId, mark_at_x: Endpoint) {
        let (a, b) = key(x, y);
        let marks = self.edges.get_mut(&(a, b)).expect("edge does not exist");
        if a == x {
            marks.0 = mark_at_x;
        } else {
            marks.1 = mark_at_x;
        }
    }

    /// Orients the edge fully as `from → to` (Tail at `from`, Arrow at `to`).
    pub fn orient_directed(&mut self, from: NodeId, to: NodeId) {
        self.orient(from, to, Endpoint::Tail);
        self.orient(to, from, Endpoint::Arrow);
    }

    /// Neighbors of `x` (any edge type).
    pub fn adjacencies(&self, x: NodeId) -> Vec<NodeId> {
        self.edges
            .keys()
            .filter_map(|&(a, b)| {
                if a == x {
                    Some(b)
                } else if b == x {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Every node's neighbor list in one O(nodes + edges) pass: entry `x`
    /// holds exactly what [`Self::adjacencies`]`(x)` returns, in the same
    /// order (neighbors below `x` ascending, then neighbors above `x`
    /// ascending — the canonical-key iteration order). Per-level sweeps
    /// that snapshot every node's adjacencies use this instead of `n`
    /// full edge scans.
    pub fn adjacency_lists(&self) -> Vec<Vec<NodeId>> {
        let mut lists = vec![Vec::new(); self.names.len()];
        for &(a, b) in self.edges.keys() {
            lists[a].push(b);
            lists[b].push(a);
        }
        lists
    }

    /// Canonical `(low, high)` endpoint pairs of every edge, ascending —
    /// the order a nested `x < y` / [`Self::adjacent`] scan would visit
    /// them, without the per-pair lookups.
    pub fn edge_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.keys().copied()
    }

    /// All edges.
    pub fn edges(&self) -> Vec<Edge> {
        self.edges
            .iter()
            .map(|(&(a, b), &(mark_a, mark_b))| Edge {
                a,
                b,
                mark_a,
                mark_b,
            })
            .collect()
    }

    /// True if `from → to` as a fully directed edge.
    pub fn is_directed(&self, from: NodeId, to: NodeId) -> bool {
        self.edge(from, to)
            .is_some_and(|e| e.is_directed_from(from, to))
    }

    /// Parents of `x` via fully directed edges.
    pub fn parents(&self, x: NodeId) -> Vec<NodeId> {
        self.adjacencies(x)
            .into_iter()
            .filter(|&p| self.is_directed(p, x))
            .collect()
    }

    /// Children of `x` via fully directed edges.
    pub fn children(&self, x: NodeId) -> Vec<NodeId> {
        self.adjacencies(x)
            .into_iter()
            .filter(|&c| self.is_directed(x, c))
            .collect()
    }

    /// Number of edges that still carry a circle mark.
    pub fn n_circle_edges(&self) -> usize {
        self.edges().iter().filter(|e| e.has_circle()).count()
    }

    /// Average node degree (2·|E| / |V|), the sparsity statistic reported
    /// in the paper's Table 3.
    pub fn average_degree(&self) -> f64 {
        if self.names.is_empty() {
            return 0.0;
        }
        2.0 * self.edges.len() as f64 / self.names.len() as f64
    }

    /// Nodes with at least one incident edge.
    pub fn connected_nodes(&self) -> Vec<NodeId> {
        (0..self.n_nodes())
            .filter(|&n| !self.adjacencies(n).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn edge_roundtrip_and_marks() {
        let mut g = MixedGraph::new(names(3));
        g.add_circle_edge(0, 1);
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(1, 0));
        assert_eq!(g.mark_at(0, 1), Some(Endpoint::Circle));
        g.orient(1, 0, Endpoint::Arrow); // 0 o→ 1
        assert_eq!(g.mark_at(1, 0), Some(Endpoint::Arrow));
        assert_eq!(g.mark_at(0, 1), Some(Endpoint::Circle));
        g.orient(0, 1, Endpoint::Tail); // 0 → 1
        assert!(g.is_directed(0, 1));
        assert!(!g.is_directed(1, 0));
    }

    #[test]
    fn orient_directed_sets_both_marks() {
        let mut g = MixedGraph::new(names(2));
        g.add_circle_edge(0, 1);
        g.orient_directed(1, 0);
        assert!(g.is_directed(1, 0));
        assert_eq!(g.parents(0), vec![1]);
        assert_eq!(g.children(1), vec![0]);
    }

    #[test]
    fn bidirected_edges() {
        let mut g = MixedGraph::new(names(2));
        g.add_bidirected_edge(0, 1);
        let e = g.edge(0, 1).unwrap();
        assert!(e.is_bidirected());
        assert!(g.parents(0).is_empty());
    }

    #[test]
    fn adjacency_listing() {
        let mut g = MixedGraph::new(names(4));
        g.add_directed_edge(0, 2);
        g.add_directed_edge(1, 2);
        g.add_circle_edge(2, 3);
        let mut adj = g.adjacencies(2);
        adj.sort_unstable();
        assert_eq!(adj, vec![0, 1, 3]);
        assert_eq!(g.parents(2), vec![0, 1]);
    }

    #[test]
    fn remove_edge() {
        let mut g = MixedGraph::new(names(2));
        g.add_directed_edge(0, 1);
        g.remove_edge(1, 0);
        assert!(!g.adjacent(0, 1));
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn average_degree_and_circles() {
        let mut g = MixedGraph::new(names(4));
        g.add_circle_edge(0, 1);
        g.add_directed_edge(1, 2);
        assert_eq!(g.n_circle_edges(), 1);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert_eq!(g.connected_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn node_lookup_by_name() {
        let g = MixedGraph::new(vec!["Bitrate".into(), "FPS".into()]);
        assert_eq!(g.node_by_name("FPS"), Some(1));
        assert_eq!(g.node_by_name("nope"), None);
    }
}
