//! Causal-path extraction by backtracking (§4 Stage III of the paper).
//!
//! "A causal path is a directed path originating from either the
//! configuration options or the system event and terminating at a
//! non-functional property. To discover causal paths, we backtrack from the
//! nodes corresponding to each non-functional property until we reach a
//! node with no parents. If any intermediate node has more than one parent,
//! then we create a path for each parent and continue backtracking."

use crate::admg::Admg;
use crate::NodeId;

/// A directed causal path, stored source-first (the last element is the
/// objective the backtracking started from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalPath {
    /// Nodes along the path, source first.
    pub nodes: Vec<NodeId>,
}

impl CausalPath {
    /// The source (first) node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The objective (last) node.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("empty path")
    }

    /// Length in edges.
    pub fn len(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True if the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() < 2
    }
}

/// Enumerates causal paths terminating at `objective` by backtracking
/// through directed parents, branching at every multi-parent node. Paths
/// are truncated at parentless nodes. At most `cap` paths are returned
/// (graphs in the scalability experiments can contain hundreds of paths;
/// the paper likewise caps ranking at the top-K).
pub fn backtrack_causal_paths(g: &Admg, objective: NodeId, cap: usize) -> Vec<CausalPath> {
    let mut complete = Vec::new();
    // Each work item is a reversed prefix: objective .. current.
    let mut stack: Vec<Vec<NodeId>> = vec![vec![objective]];
    while let Some(prefix) = stack.pop() {
        if complete.len() >= cap {
            break;
        }
        let current = *prefix.last().expect("non-empty prefix");
        let parents: Vec<NodeId> = g
            .parents(current)
            .into_iter()
            .filter(|p| !prefix.contains(p))
            .collect();
        if parents.is_empty() {
            if prefix.len() > 1 {
                let mut nodes = prefix.clone();
                nodes.reverse();
                complete.push(CausalPath { nodes });
            }
            continue;
        }
        for p in parents {
            let mut next = prefix.clone();
            next.push(p);
            stack.push(next);
        }
    }
    complete
}

/// Counts the causal paths terminating at each of the given objectives
/// (used by the Table 3 scalability report).
pub fn count_causal_paths(g: &Admg, objectives: &[NodeId], cap: usize) -> usize {
    objectives
        .iter()
        .map(|&o| backtrack_causal_paths(g, o, cap).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn single_chain_single_path() {
        let mut g = Admg::new(names(3));
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        let paths = backtrack_causal_paths(&g, 2, 100);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 1, 2]);
        assert_eq!(paths[0].source(), 0);
        assert_eq!(paths[0].target(), 2);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    fn branching_at_multi_parent_nodes() {
        // 0 → 2 ← 1, 2 → 3: two paths into 3.
        let mut g = Admg::new(names(4));
        g.add_directed(0, 2);
        g.add_directed(1, 2);
        g.add_directed(2, 3);
        let mut paths = backtrack_causal_paths(&g, 3, 100);
        paths.sort_by_key(|p| p.nodes.clone());
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].nodes, vec![0, 2, 3]);
        assert_eq!(paths[1].nodes, vec![1, 2, 3]);
    }

    #[test]
    fn diamond_counts_both_routes() {
        // 0 → 1 → 3, 0 → 2 → 3.
        let mut g = Admg::new(names(4));
        g.add_directed(0, 1);
        g.add_directed(0, 2);
        g.add_directed(1, 3);
        g.add_directed(2, 3);
        let paths = backtrack_causal_paths(&g, 3, 100);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.source(), 0);
        }
    }

    #[test]
    fn isolated_objective_yields_no_paths() {
        let g = Admg::new(names(2));
        assert!(backtrack_causal_paths(&g, 1, 100).is_empty());
    }

    #[test]
    fn cap_limits_enumeration() {
        // Layered graph with many paths.
        let mut g = Admg::new(names(7));
        for a in 0..3 {
            for b in 3..6 {
                g.add_directed(a, b);
            }
        }
        for b in 3..6 {
            g.add_directed(b, 6);
        }
        let all = backtrack_causal_paths(&g, 6, 1000);
        assert_eq!(all.len(), 9);
        let capped = backtrack_causal_paths(&g, 6, 4);
        assert_eq!(capped.len(), 4);
        assert_eq!(count_causal_paths(&g, &[6], 1000), 9);
    }
}
