//! Acyclic directed mixed graphs (ADMGs): directed edges plus bidirected
//! (confounded) edges, with the directed part acyclic. This is the fully
//! resolved form the paper's inference engine evaluates queries on after
//! entropic resolution of the FCI output (§4 Stage II).

use crate::mixed::{Endpoint, MixedGraph};
use crate::NodeId;
use std::collections::BTreeSet;

/// An acyclic directed mixed graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Admg {
    names: Vec<String>,
    directed: Vec<(NodeId, NodeId)>,
    bidirected: Vec<(NodeId, NodeId)>,
}

impl Admg {
    /// Creates an edgeless ADMG over named nodes.
    pub fn new(names: Vec<String>) -> Self {
        Self {
            names,
            directed: Vec::new(),
            bidirected: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.names.len()
    }

    /// Node name.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n]
    }

    /// All node names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name)
    }

    /// Adds `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a directed cycle.
    pub fn add_directed(&mut self, from: NodeId, to: NodeId) {
        assert!(from != to, "self loop");
        if self.directed.contains(&(from, to)) {
            return;
        }
        assert!(
            !self.ancestors(from).contains(&to),
            "adding {from}->{to} would create a cycle"
        );
        self.directed.push((from, to));
    }

    /// Adds `from → to` if it keeps the directed part acyclic; returns
    /// whether the edge was added.
    pub fn try_add_directed(&mut self, from: NodeId, to: NodeId) -> bool {
        if from == to || self.ancestors(from).contains(&to) {
            return false;
        }
        if !self.directed.contains(&(from, to)) {
            self.directed.push((from, to));
        }
        true
    }

    /// Adds `a ←→ b`.
    pub fn add_bidirected(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "self loop");
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if !self.bidirected.contains(&(a, b)) {
            self.bidirected.push((a, b));
        }
    }

    /// Directed edges.
    pub fn directed_edges(&self) -> &[(NodeId, NodeId)] {
        &self.directed
    }

    /// Bidirected edges.
    pub fn bidirected_edges(&self) -> &[(NodeId, NodeId)] {
        &self.bidirected
    }

    /// Parents of `x` (directed edges only).
    pub fn parents(&self, x: NodeId) -> Vec<NodeId> {
        self.directed
            .iter()
            .filter_map(|&(f, t)| if t == x { Some(f) } else { None })
            .collect()
    }

    /// Children of `x`.
    pub fn children(&self, x: NodeId) -> Vec<NodeId> {
        self.directed
            .iter()
            .filter_map(|&(f, t)| if f == x { Some(t) } else { None })
            .collect()
    }

    /// Bidirected siblings of `x`.
    pub fn siblings(&self, x: NodeId) -> Vec<NodeId> {
        self.bidirected
            .iter()
            .filter_map(|&(a, b)| {
                if a == x {
                    Some(b)
                } else if b == x {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Strict ancestors of `x` (not including `x`).
    pub fn ancestors(&self, x: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack = self.parents(x);
        while let Some(p) = stack.pop() {
            if seen.insert(p) {
                stack.extend(self.parents(p));
            }
        }
        seen
    }

    /// Strict descendants of `x`.
    pub fn descendants(&self, x: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack = self.children(x);
        while let Some(c) = stack.pop() {
            if seen.insert(c) {
                stack.extend(self.children(c));
            }
        }
        seen
    }

    /// Topological order of the directed part.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.n_nodes();
        let mut indeg = vec![0usize; n];
        for &(_, t) in &self.directed {
            indeg[t] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for c in self.children(u) {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "directed part has a cycle");
        order
    }

    /// True if the graph has no bidirected edges (i.e. it is a DAG).
    pub fn is_dag(&self) -> bool {
        self.bidirected.is_empty()
    }

    /// Converts to the equivalent `MixedGraph` (Tail/Arrow marks only).
    pub fn to_mixed(&self) -> MixedGraph {
        let mut g = MixedGraph::new(self.names.clone());
        for &(f, t) in &self.directed {
            g.add_directed_edge(f, t);
        }
        for &(a, b) in &self.bidirected {
            g.add_bidirected_edge(a, b);
        }
        g
    }

    /// Builds an ADMG from a mixed graph that contains only directed and
    /// bidirected edges (no circles). Returns `None` if unresolved marks or
    /// a directed cycle remain.
    pub fn from_mixed(g: &MixedGraph) -> Option<Self> {
        let mut admg = Admg::new(g.names().to_vec());
        for e in g.edges() {
            match (e.mark_a, e.mark_b) {
                (Endpoint::Tail, Endpoint::Arrow) => admg.directed.push((e.a, e.b)),
                (Endpoint::Arrow, Endpoint::Tail) => admg.directed.push((e.b, e.a)),
                (Endpoint::Arrow, Endpoint::Arrow) => admg.bidirected.push((e.a, e.b)),
                _ => return None,
            }
        }
        // Cycle check via topological order length.
        let n = admg.n_nodes();
        let mut indeg = vec![0usize; n];
        for &(_, t) in &admg.directed {
            indeg[t] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut count = 0;
        while let Some(u) = queue.pop() {
            count += 1;
            for c in admg.children(u) {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if count != n {
            return None;
        }
        Some(admg)
    }

    /// The districts (c-components): connected components of the
    /// bidirected part.
    pub fn districts(&self) -> Vec<BTreeSet<NodeId>> {
        let n = self.n_nodes();
        let mut comp: Vec<Option<usize>> = vec![None; n];
        let mut out: Vec<BTreeSet<NodeId>> = Vec::new();
        for start in 0..n {
            if comp[start].is_some() {
                continue;
            }
            let id = out.len();
            let mut set = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                if comp[u].is_some() {
                    continue;
                }
                comp[u] = Some(id);
                set.insert(u);
                stack.extend(self.siblings(u));
            }
            out.push(set);
        }
        out
    }

    /// Average node degree counting both edge kinds.
    pub fn average_degree(&self) -> f64 {
        if self.names.is_empty() {
            return 0.0;
        }
        2.0 * (self.directed.len() + self.bidirected.len()) as f64 / self.names.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn ancestry_and_topo_order() {
        let mut g = Admg::new(names(4));
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        g.add_directed(0, 3);
        assert_eq!(g.ancestors(2), [0, 1].into_iter().collect());
        assert_eq!(g.descendants(0), [1, 2, 3].into_iter().collect());
        let order = g.topological_order();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2) && pos(0) < pos(3));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_rejected() {
        let mut g = Admg::new(names(2));
        g.add_directed(0, 1);
        g.add_directed(1, 0);
    }

    #[test]
    fn districts_partition_nodes() {
        let mut g = Admg::new(names(5));
        g.add_directed(0, 1);
        g.add_bidirected(1, 2);
        g.add_bidirected(2, 3);
        let d = g.districts();
        assert_eq!(d.len(), 3); // {0}, {1,2,3}, {4}
        assert!(d
            .iter()
            .any(|s| s.len() == 3 && s.contains(&1) && s.contains(&3)));
    }

    #[test]
    fn mixed_roundtrip() {
        let mut g = Admg::new(names(3));
        g.add_directed(0, 1);
        g.add_bidirected(1, 2);
        let m = g.to_mixed();
        let back = Admg::from_mixed(&m).unwrap();
        assert_eq!(back.directed_edges(), &[(0, 1)]);
        assert_eq!(back.bidirected_edges(), &[(1, 2)]);
    }

    #[test]
    fn from_mixed_rejects_circles_and_cycles() {
        let mut m = MixedGraph::new(names(2));
        m.add_circle_edge(0, 1);
        assert!(Admg::from_mixed(&m).is_none());
    }

    #[test]
    fn sibling_lookup() {
        let mut g = Admg::new(names(3));
        g.add_bidirected(2, 0);
        assert_eq!(g.siblings(0), vec![2]);
        assert_eq!(g.siblings(2), vec![0]);
        assert!(g.siblings(1).is_empty());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Admg::new(names(2));
        g.add_directed(0, 1);
        g.add_directed(0, 1);
        g.add_bidirected(0, 1);
        g.add_bidirected(1, 0);
        assert_eq!(g.directed_edges().len(), 1);
        assert_eq!(g.bidirected_edges().len(), 1);
    }
}
