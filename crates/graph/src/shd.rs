//! Structural hamming distance between mixed graphs — the convergence
//! metric of the paper's Fig 11a ("the hamming distance between the learned
//! causal model and ground truth model decreases as the algorithm measures
//! more configuration samples").

use crate::mixed::MixedGraph;

/// Structural hamming distance: for every unordered node pair, one unit of
/// distance if the skeletons disagree (edge vs no edge); if both graphs
/// have the edge, one unit if the endpoint marks differ.
///
/// # Panics
///
/// Panics if the graphs have different node counts.
pub fn structural_hamming_distance(a: &MixedGraph, b: &MixedGraph) -> usize {
    assert_eq!(a.n_nodes(), b.n_nodes(), "graphs must share a node set");
    let n = a.n_nodes();
    let mut dist = 0;
    for i in 0..n {
        for j in i + 1..n {
            match (a.edge(i, j), b.edge(i, j)) {
                (None, None) => {}
                (Some(_), None) | (None, Some(_)) => dist += 1,
                (Some(ea), Some(eb)) => {
                    if ea.mark_a != eb.mark_a || ea.mark_b != eb.mark_b {
                        dist += 1;
                    }
                }
            }
        }
    }
    dist
}

/// Skeleton-only structural distance: one unit per unordered node pair
/// whose *adjacency* differs (edge vs no edge), ignoring endpoint marks.
/// This is the metric for "did discovery find the planted skeleton" —
/// orientation quality is scored separately by
/// [`structural_hamming_distance`].
///
/// # Panics
///
/// Panics if the graphs have different node counts.
pub fn skeleton_distance(a: &MixedGraph, b: &MixedGraph) -> usize {
    assert_eq!(a.n_nodes(), b.n_nodes(), "graphs must share a node set");
    let n = a.n_nodes();
    let mut dist = 0;
    for i in 0..n {
        for j in i + 1..n {
            if a.edge(i, j).is_some() != b.edge(i, j).is_some() {
                dist += 1;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::Endpoint;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn identical_graphs_distance_zero() {
        let mut a = MixedGraph::new(names(3));
        a.add_directed_edge(0, 1);
        a.add_bidirected_edge(1, 2);
        assert_eq!(structural_hamming_distance(&a, &a.clone()), 0);
    }

    #[test]
    fn missing_edge_counts_one() {
        let mut a = MixedGraph::new(names(3));
        a.add_directed_edge(0, 1);
        let b = MixedGraph::new(names(3));
        assert_eq!(structural_hamming_distance(&a, &b), 1);
    }

    #[test]
    fn wrong_orientation_counts_one() {
        let mut a = MixedGraph::new(names(2));
        a.add_directed_edge(0, 1);
        let mut b = MixedGraph::new(names(2));
        b.add_directed_edge(1, 0);
        assert_eq!(structural_hamming_distance(&a, &b), 1);
    }

    #[test]
    fn circle_vs_resolved_counts_one() {
        let mut a = MixedGraph::new(names(2));
        a.add_circle_edge(0, 1);
        let mut b = MixedGraph::new(names(2));
        b.set_edge(0, 1, Endpoint::Tail, Endpoint::Arrow);
        assert_eq!(structural_hamming_distance(&a, &b), 1);
    }

    #[test]
    fn skeleton_distance_ignores_marks_but_counts_adjacency() {
        let mut a = MixedGraph::new(names(3));
        a.add_directed_edge(0, 1);
        let mut b = MixedGraph::new(names(3));
        b.add_directed_edge(1, 0); // same adjacency, flipped marks
        b.add_bidirected_edge(1, 2); // extra adjacency
        assert_eq!(skeleton_distance(&a, &b), 1);
        assert_eq!(structural_hamming_distance(&a, &b), 2);
    }

    #[test]
    fn metric_axioms_on_examples() {
        let mut a = MixedGraph::new(names(3));
        a.add_directed_edge(0, 1);
        let mut b = MixedGraph::new(names(3));
        b.add_directed_edge(0, 1);
        b.add_directed_edge(1, 2);
        let mut c = MixedGraph::new(names(3));
        c.add_directed_edge(1, 2);
        let dab = structural_hamming_distance(&a, &b);
        let dbc = structural_hamming_distance(&b, &c);
        let dac = structural_hamming_distance(&a, &c);
        // Symmetry and triangle inequality.
        assert_eq!(dab, structural_hamming_distance(&b, &a));
        assert!(dac <= dab + dbc);
    }
}
