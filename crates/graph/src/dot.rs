//! Graphviz DOT export for causal performance models (used to render
//! figures like the paper's Fig 6 and Fig 23).

use crate::admg::Admg;
use crate::mixed::{Endpoint, MixedGraph};
use crate::tiers::{TierConstraints, VarKind};

fn node_attrs(kind: Option<VarKind>) -> &'static str {
    match kind {
        Some(VarKind::ConfigOption) => "shape=box, style=filled, fillcolor=\"#cfe8ff\"",
        Some(VarKind::SystemEvent) => "shape=ellipse, style=filled, fillcolor=\"#fff2b8\"",
        Some(VarKind::Objective) => "shape=doubleoctagon, style=filled, fillcolor=\"#ffd3c9\"",
        None => "shape=ellipse",
    }
}

fn endpoint_arrow(e: Endpoint) -> &'static str {
    match e {
        Endpoint::Tail => "none",
        Endpoint::Arrow => "normal",
        Endpoint::Circle => "odot",
    }
}

/// Renders a mixed graph (PAG) to DOT, with optional tier styling.
pub fn mixed_to_dot(g: &MixedGraph, tiers: Option<&TierConstraints>) -> String {
    let mut out = String::from("digraph pag {\n  rankdir=TB;\n");
    for (i, name) in g.names().iter().enumerate() {
        let kind = tiers.map(|t| t.kind(i));
        out.push_str(&format!(
            "  n{i} [label=\"{name}\", {}];\n",
            node_attrs(kind)
        ));
    }
    for e in g.edges() {
        out.push_str(&format!(
            "  n{} -> n{} [dir=both, arrowtail={}, arrowhead={}];\n",
            e.a,
            e.b,
            endpoint_arrow(e.mark_a),
            endpoint_arrow(e.mark_b)
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders an ADMG to DOT (directed edges solid, bidirected dashed), with
/// optional tier styling.
pub fn admg_to_dot(g: &Admg, tiers: Option<&TierConstraints>) -> String {
    let mut out = String::from("digraph admg {\n  rankdir=TB;\n");
    for (i, name) in g.names().iter().enumerate() {
        let kind = tiers.map(|t| t.kind(i));
        out.push_str(&format!(
            "  n{i} [label=\"{name}\", {}];\n",
            node_attrs(kind)
        ));
    }
    for &(f, t) in g.directed_edges() {
        out.push_str(&format!("  n{f} -> n{t};\n"));
    }
    for &(a, b) in g.bidirected_edges() {
        out.push_str(&format!(
            "  n{a} -> n{b} [dir=both, style=dashed, arrowtail=normal, arrowhead=normal];\n"
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_dot_contains_nodes_and_marks() {
        let mut g = MixedGraph::new(vec!["Bitrate".into(), "FPS".into()]);
        g.set_edge(0, 1, Endpoint::Circle, Endpoint::Arrow);
        let dot = mixed_to_dot(&g, None);
        assert!(dot.contains("label=\"Bitrate\""));
        assert!(dot.contains("arrowtail=odot"));
        assert!(dot.contains("arrowhead=normal"));
    }

    #[test]
    fn admg_dot_styles_bidirected_dashed() {
        let mut g = Admg::new(vec!["a".into(), "b".into(), "c".into()]);
        g.add_directed(0, 1);
        g.add_bidirected(1, 2);
        let dot = admg_to_dot(&g, None);
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn tier_styling_applied() {
        let g = MixedGraph::new(vec!["o".into(), "e".into()]);
        let t = TierConstraints::new(vec![VarKind::ConfigOption, VarKind::SystemEvent]);
        let dot = mixed_to_dot(&g, Some(&t));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("#fff2b8"));
    }
}
