//! The bench-regression gate: compares a current `BENCH_*.json` report
//! (the criterion shim's `benchmarks` array — also emitted by the suite
//! harness) against a checked-in baseline and fails when any benchmark's
//! mean wall clock regressed beyond a tolerance.
//!
//! Consumed by the `bench-gate` binary, which CI runs after every bench
//! step:
//!
//! ```sh
//! cargo run --release -p unicorn-bench --bin bench-gate -- \
//!     benchmarks/baselines/BENCH_discovery.json BENCH_discovery.json
//! ```
//!
//! The tolerance defaults to 25% and is configurable via the
//! `UNICORN_BENCH_GATE_PCT` environment variable. Baselines live under
//! `benchmarks/baselines/` — see the README there for the refresh
//! protocol (rerun the bench with `UNICORN_BENCH_JSON` pointing at the
//! baseline file on the reference machine, commit the diff).

/// One benchmark of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`group/function` style).
    pub name: String,
    /// Mean wall clock in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
}

/// Which statistic the gate compares. `Mean` is the default; `Min`
/// (fastest sample) is the noise-resistant choice for benchmarks whose
/// per-pass wall clocks are dominated by allocator or scheduler state
/// rather than the code under test — an outlier pass inflates a mean but
/// never a min, while a structural regression (a stage gone serial, a
/// cache that stopped hitting) slows every pass including the fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStat {
    /// Compare `mean_ns` (default).
    Mean,
    /// Compare `min_ns` (fastest sample).
    Min,
}

impl GateStat {
    /// The compared value of `record` under this statistic.
    pub fn value(self, record: &BenchRecord) -> f64 {
        match self {
            GateStat::Mean => record.mean_ns,
            GateStat::Min => record.min_ns,
        }
    }

    /// Display name (`mean` / `min`).
    pub fn name(self) -> &'static str {
        match self {
            GateStat::Mean => "mean",
            GateStat::Min => "min",
        }
    }
}

/// Extracts the `benchmarks` array from a report produced by the
/// criterion shim or the suite harness. A deliberately small parser for
/// the closed format both writers emit (flat objects, string names,
/// integer nanoseconds) — not a general JSON reader.
pub fn parse_report(json: &str) -> Result<Vec<BenchRecord>, String> {
    let key = "\"benchmarks\"";
    let start = json
        .find(key)
        .ok_or_else(|| "no \"benchmarks\" key in report".to_string())?;
    let rest = &json[start + key.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| "no array after \"benchmarks\"".to_string())?;
    let body = &rest[open + 1..];

    let mut records = Vec::new();
    let mut chars = body.char_indices();
    let mut obj_start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in &mut chars {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => obj_start = Some(i),
            '}' => {
                let s = obj_start
                    .take()
                    .ok_or_else(|| "unbalanced object in benchmarks array".to_string())?;
                records.push(parse_object(&body[s + 1..i])?);
            }
            ']' if obj_start.is_none() => return Ok(records),
            _ => {}
        }
    }
    Err("unterminated benchmarks array".to_string())
}

/// Parses one flat `{"name": "...", "mean_ns": 123, ...}` object body.
fn parse_object(body: &str) -> Result<BenchRecord, String> {
    let name = string_field(body, "name")?;
    let mean_ns = number_field(body, "mean_ns")?;
    let min_ns = number_field(body, "min_ns")?;
    Ok(BenchRecord {
        name,
        mean_ns,
        min_ns,
    })
}

fn string_field(body: &str, field: &str) -> Result<String, String> {
    let key = format!("\"{field}\"");
    let at = body
        .find(&key)
        .ok_or_else(|| format!("missing field {field}"))?;
    let rest = body[at + key.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("malformed field {field}"))?
        .trim_start();
    let mut out = String::new();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return Err(format!("field {field} is not a string"));
    }
    let mut escaped = false;
    for c in chars {
        if escaped {
            match c {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
            escaped = false;
        } else {
            match c {
                '\\' => escaped = true,
                '"' => return Ok(out),
                c => out.push(c),
            }
        }
    }
    Err(format!("unterminated string in field {field}"))
}

fn number_field(body: &str, field: &str) -> Result<f64, String> {
    let key = format!("\"{field}\"");
    let at = body
        .find(&key)
        .ok_or_else(|| format!("missing field {field}"))?;
    let rest = body[at + key.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("malformed field {field}"))?
        .trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("field {field}: {e}"))
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline mean (ns).
    pub baseline_ns: f64,
    /// Current mean (ns), `None` when the benchmark disappeared.
    pub current_ns: Option<f64>,
    /// Relative change in percent (`+` is a slowdown).
    pub delta_pct: Option<f64>,
    /// False when the baseline mean sits below the noise floor — the
    /// delta is reported but cannot trip the gate (sub-floor wall clocks
    /// jitter far beyond any honest tolerance).
    pub enforced: bool,
    /// True when this comparison breaches the tolerance (and is
    /// enforced).
    pub regressed: bool,
}

/// Compares every baseline benchmark against the current report under
/// `stat` (mean by default, min when opted in via
/// `UNICORN_BENCH_GATE_STAT=min`): a benchmark regresses when its current
/// value exceeds the baseline value by more than `tolerance_pct` percent,
/// or when it vanished from the current report. Baseline values below
/// `min_ns` are compared but not enforced (scheduler noise dominates
/// sub-floor timings). Benchmarks new in the current report are ignored —
/// they have no baseline to regress from; refresh the baseline to start
/// tracking them.
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    tolerance_pct: f64,
    min_ns: f64,
    stat: GateStat,
) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|b| {
            let base = stat.value(b);
            let enforced = base >= min_ns;
            let cur = current.iter().find(|c| c.name == b.name);
            match cur {
                Some(c) => {
                    let cur_v = stat.value(c);
                    let delta = (cur_v - base) / base * 100.0;
                    Comparison {
                        name: b.name.clone(),
                        baseline_ns: base,
                        current_ns: Some(cur_v),
                        delta_pct: Some(delta),
                        enforced,
                        regressed: enforced && delta > tolerance_pct,
                    }
                }
                None => Comparison {
                    name: b.name.clone(),
                    baseline_ns: base,
                    current_ns: None,
                    delta_pct: None,
                    enforced: true,
                    regressed: true,
                },
            }
        })
        .collect()
}

/// The gate tolerance: `UNICORN_BENCH_GATE_PCT` or 25%.
pub fn tolerance_from_env() -> f64 {
    std::env::var("UNICORN_BENCH_GATE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(25.0)
}

/// The gate noise floor in nanoseconds: `UNICORN_BENCH_GATE_MIN_MS`
/// (milliseconds) or 1 ms.
pub fn min_ns_from_env() -> f64 {
    std::env::var("UNICORN_BENCH_GATE_MIN_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        * 1e6
}

/// The compared statistic: `UNICORN_BENCH_GATE_STAT` (`mean` or `min`),
/// defaulting to mean. Unknown values fall back to mean rather than
/// erroring — the gate must not pass vacuously because of a typo'd env
/// var, and mean is the stricter default.
pub fn stat_from_env() -> GateStat {
    match std::env::var("UNICORN_BENCH_GATE_STAT") {
        Ok(v) if v.eq_ignore_ascii_case("min") => GateStat::Min,
        _ => GateStat::Mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "benchmarks": [
    {"name": "discovery/skeleton \"quoted\"", "min_ns": 800000, "mean_ns": 1000000, "max_ns": 3000000, "samples": 3},
    {"name": "discovery/full", "min_ns": 1500000, "mean_ns": 2000000, "max_ns": 3000000, "samples": 3}
  ]
}
"#;

    #[test]
    fn parses_the_shim_format_including_escapes() {
        let records = parse_report(REPORT).expect("parse");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "discovery/skeleton \"quoted\"");
        assert_eq!(records[0].mean_ns, 1e6);
        assert_eq!(records[1].mean_ns, 2e6);
    }

    #[test]
    fn parses_reports_with_extra_sections() {
        // The suite report carries a trailing "scenarios" array; the gate
        // must read only the benchmarks.
        let json = REPORT.replace(
            "\n}\n",
            ",\n  \"scenarios\": [{\"name\": \"x\", \"mean_ns\": 5}]\n}\n",
        );
        let records = parse_report(&json).expect("parse");
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn regression_detection_honours_the_tolerance() {
        let baseline = parse_report(REPORT).expect("parse");
        let mut current = baseline.clone();
        current[0].mean_ns = 1.2e6; // +20%: inside a 25% tolerance
        current[1].mean_ns = 2.6e6; // +30%: outside
        let cmp = compare(&baseline, &current, 25.0, 0.0, GateStat::Mean);
        assert!(!cmp[0].regressed);
        assert!(cmp[1].regressed);
        // Looser tolerance clears it.
        assert!(!compare(&baseline, &current, 40.0, 0.0, GateStat::Mean)[1].regressed);
        // Improvements never trip the gate.
        current[1].mean_ns = 0.5e6;
        assert!(compare(&baseline, &current, 25.0, 0.0, GateStat::Mean)
            .iter()
            .all(|c| !c.regressed));
    }

    #[test]
    fn min_stat_ignores_outlier_passes_but_catches_real_slowdowns() {
        let baseline = parse_report(REPORT).expect("parse");
        let mut current = baseline.clone();
        // An outlier pass: the mean blows past any tolerance while the
        // fastest pass is unchanged — noise, not a regression.
        current[0].mean_ns = 5e6;
        assert!(compare(&baseline, &current, 25.0, 0.0, GateStat::Mean)[0].regressed);
        assert!(!compare(&baseline, &current, 25.0, 0.0, GateStat::Min)[0].regressed);
        // A structural slowdown moves the fastest pass too.
        current[0].min_ns = 2e6; // baseline min 8e5: +150%
        assert!(compare(&baseline, &current, 25.0, 0.0, GateStat::Min)[0].regressed);
    }

    #[test]
    fn stat_selection_defaults_to_mean() {
        assert_eq!(GateStat::Mean.name(), "mean");
        assert_eq!(GateStat::Min.name(), "min");
        let r = &parse_report(REPORT).expect("parse")[0];
        assert_eq!(GateStat::Mean.value(r), 1e6);
        assert_eq!(GateStat::Min.value(r), 8e5);
    }

    #[test]
    fn noise_floor_reports_but_does_not_enforce() {
        let baseline = vec![BenchRecord {
            name: "tiny/stage".to_string(),
            mean_ns: 2e5, // 0.2 ms
            min_ns: 2e5,
        }];
        let current = vec![BenchRecord {
            name: "tiny/stage".to_string(),
            mean_ns: 8e5, // +300%, but under a 1 ms floor
            min_ns: 8e5,
        }];
        let cmp = compare(&baseline, &current, 25.0, 1e6, GateStat::Mean);
        assert!(!cmp[0].enforced);
        assert!(!cmp[0].regressed);
        assert_eq!(cmp[0].delta_pct.map(f64::round), Some(300.0));
        // With the floor off it trips.
        assert!(compare(&baseline, &current, 25.0, 0.0, GateStat::Mean)[0].regressed);
    }

    #[test]
    fn missing_benchmarks_trip_the_gate_but_new_ones_do_not() {
        let baseline = parse_report(REPORT).expect("parse");
        let current = vec![
            baseline[0].clone(),
            BenchRecord {
                name: "brand/new".to_string(),
                mean_ns: 1.0,
                min_ns: 1.0,
            },
        ];
        let cmp = compare(&baseline, &current, 25.0, 0.0, GateStat::Mean);
        assert!(!cmp[0].regressed);
        assert!(cmp[1].regressed, "vanished benchmark must fail the gate");
        assert_eq!(cmp.len(), 2, "new benchmarks are not compared");
    }

    #[test]
    fn malformed_reports_error_out() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"benchmarks\": [").is_err());
        assert!(parse_report("{\"benchmarks\": [{\"name\": \"x\"}]}").is_err());
    }
}
