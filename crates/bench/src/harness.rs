//! Shared experiment harness: standard simulators/catalogs, the method
//! roster, and the debugging-comparison runner used by Tables 2a/2b/14 and
//! Figs 14/16.

use unicorn_baselines::{smac_debug, BugDoc, Cbi, DebugBudget, Debugger, DeltaDebugging, Encore};
use unicorn_core::{debug_fault, score_debugging, DebugScores, TransferMode, UnicornOptions};
use unicorn_systems::{
    discover_faults, Environment, Fault, FaultCatalog, FaultDiscoveryOptions, Hardware, Simulator,
    SubjectSystem,
};

/// Experiment scale, selected via the `UNICORN_SCALE` environment variable
/// (`quick` default, `full` for paper-sized runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale runs: fewer faults, smaller budgets.
    Quick,
    /// Paper-scale runs.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("UNICORN_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Faults evaluated per (system × method) cell.
    pub fn faults_per_cell(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 10,
        }
    }

    /// Observational samples granted to every method.
    pub fn n_samples(&self) -> usize {
        match self {
            Scale::Quick => 50,
            Scale::Full => 150,
        }
    }

    /// Fix probes granted to every method.
    pub fn n_probes(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 25,
        }
    }

    /// Fault-catalog sample size.
    pub fn catalog_samples(&self) -> usize {
        match self {
            Scale::Quick => 700,
            Scale::Full => 2000,
        }
    }
}

/// Builds the standard simulator for a system on a platform.
pub fn simulator(system: SubjectSystem, hw: Hardware) -> Simulator {
    Simulator::new(system.build(), Environment::on(hw), 0xBE2C)
}

/// Builds the fault catalog for a simulator at the given scale.
pub fn catalog(sim: &Simulator, scale: Scale) -> FaultCatalog {
    discover_faults(
        sim,
        &FaultDiscoveryOptions {
            n_samples: scale.catalog_samples(),
            ace_bases: 8,
            ..Default::default()
        },
    )
}

/// The debugging-method roster of Tables 2a/2b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugMethod {
    /// Unicorn (this paper).
    Unicorn,
    /// Statistical debugging.
    Cbi,
    /// Delta debugging.
    Dd,
    /// EnCore.
    Encore,
    /// BugDoc.
    BugDoc,
    /// SMAC-as-debugger (used in Fig 12).
    Smac,
}

impl DebugMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DebugMethod::Unicorn => "Unicorn",
            DebugMethod::Cbi => "CBI",
            DebugMethod::Dd => "DD",
            DebugMethod::Encore => "EnCore",
            DebugMethod::BugDoc => "BugDoc",
            DebugMethod::Smac => "SMAC",
        }
    }

    /// The single-objective roster of Table 2a.
    pub fn table2a() -> [DebugMethod; 5] {
        [
            DebugMethod::Unicorn,
            DebugMethod::Cbi,
            DebugMethod::Dd,
            DebugMethod::Encore,
            DebugMethod::BugDoc,
        ]
    }

    /// The multi-objective roster of Table 2b (DD minimizes a single
    /// pass/fail delta, so the paper drops it here too).
    pub fn table2b() -> [DebugMethod; 4] {
        [
            DebugMethod::Unicorn,
            DebugMethod::Cbi,
            DebugMethod::Encore,
            DebugMethod::BugDoc,
        ]
    }
}

/// Unicorn loop options matched to a comparison budget: the initial sample
/// set plays the role of the baselines' observational samples and the loop
/// budget the role of their probes.
pub fn unicorn_options(scale: Scale, seed: u64) -> UnicornOptions {
    UnicornOptions {
        initial_samples: scale.n_samples(),
        budget: scale.n_probes(),
        relearn_every: 6,
        stagnation_limit: 5,
        seed,
        ..Default::default()
    }
}

/// Runs one method on one fault and scores it against the ground truth.
pub fn run_method(
    method: DebugMethod,
    sim: &Simulator,
    fault: &Fault,
    cat: &FaultCatalog,
    scale: Scale,
    seed: u64,
) -> DebugScores {
    let budget = DebugBudget {
        n_samples: scale.n_samples(),
        n_probes: scale.n_probes(),
    };
    let (diagnosed, best_config, time_s, n_meas) = match method {
        DebugMethod::Unicorn => {
            let out = debug_fault(sim, fault, cat, &unicorn_options(scale, seed));
            (
                out.diagnosed_options,
                out.best_config,
                out.wall_time_s,
                out.n_measurements,
            )
        }
        DebugMethod::Cbi => {
            let out = Cbi::new().debug(sim, fault, cat, &budget, seed);
            (
                out.diagnosed_options,
                out.best_config,
                out.wall_time_s,
                out.n_measurements,
            )
        }
        DebugMethod::Dd => {
            let out = DeltaDebugging.debug(sim, fault, cat, &budget, seed);
            (
                out.diagnosed_options,
                out.best_config,
                out.wall_time_s,
                out.n_measurements,
            )
        }
        DebugMethod::Encore => {
            let out = Encore::default().debug(sim, fault, cat, &budget, seed);
            (
                out.diagnosed_options,
                out.best_config,
                out.wall_time_s,
                out.n_measurements,
            )
        }
        DebugMethod::BugDoc => {
            let out = BugDoc::default().debug(sim, fault, cat, &budget, seed);
            (
                out.diagnosed_options,
                out.best_config,
                out.wall_time_s,
                out.n_measurements,
            )
        }
        DebugMethod::Smac => {
            let out = smac_debug(sim, fault, cat, &budget, seed);
            (
                out.diagnosed_options,
                out.best_config,
                out.wall_time_s,
                out.n_measurements,
            )
        }
    };
    let fixed_true = sim.true_objectives(&best_config);
    score_debugging(fault, cat, &diagnosed, &fixed_true, time_s, n_meas)
}

/// Runs a method over up to `n_faults` faults of the requested kind and
/// returns the mean scores. `objective` filters single-objective faults;
/// pass `None` with `multi = true` for multi-objective ones.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    method: DebugMethod,
    sim: &Simulator,
    cat: &FaultCatalog,
    objective: Option<usize>,
    multi: bool,
    n_faults: usize,
    scale: Scale,
    seed: u64,
) -> DebugScores {
    let faults: Vec<&Fault> = if multi {
        cat.faults
            .iter()
            .filter(|f| f.is_multi_objective())
            .collect()
    } else if let Some(o) = objective {
        cat.single_objective(o)
    } else {
        cat.faults.iter().collect()
    };
    let scores: Vec<DebugScores> = faults
        .iter()
        .take(n_faults.max(1))
        .enumerate()
        .map(|(i, f)| run_method(method, sim, f, cat, scale, seed ^ (i as u64) << 3))
        .collect();
    unicorn_core::mean_scores(&scores)
}

/// The transfer-mode roster of Fig 16 / Table 15.
pub fn transfer_modes() -> [TransferMode; 3] {
    [
        TransferMode::Reuse,
        TransferMode::Update(25),
        TransferMode::Rerun,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_quick() {
        std::env::remove_var("UNICORN_SCALE");
        assert_eq!(Scale::from_env(), Scale::Quick);
    }

    #[test]
    fn roster_names() {
        assert_eq!(DebugMethod::table2a().len(), 5);
        assert_eq!(DebugMethod::table2b().len(), 4);
        assert_eq!(DebugMethod::Unicorn.name(), "Unicorn");
    }

    #[test]
    fn run_cell_produces_scores() {
        let sim = simulator(SubjectSystem::X264, Hardware::Tx2);
        let cat = catalog(&sim, Scale::Quick);
        let scores = run_cell(
            DebugMethod::Cbi,
            &sim,
            &cat,
            Some(0),
            false,
            1,
            Scale::Quick,
            3,
        );
        assert!(scores.accuracy >= 0.0 && scores.accuracy <= 100.0);
        assert!(!scores.gains.is_empty());
    }
}
