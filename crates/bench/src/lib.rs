//! # unicorn-bench
//!
//! The experiment harness of the Unicorn (EuroSys '22) reproduction: one
//! binary per table and figure of the paper (see DESIGN.md's experiment
//! index), plus Criterion micro-benchmarks of the discovery and inference
//! pipelines.
//!
//! All binaries honour the `UNICORN_SCALE` environment variable
//! (`quick` — default, minutes; `full` — paper-scale).

pub mod gate;
pub mod harness;
pub mod report;
pub mod suite;
pub mod transfer_analysis;

pub use gate::{compare, parse_report, BenchRecord, Comparison};
pub use harness::{catalog, run_cell, run_method, simulator, transfer_modes, DebugMethod, Scale};
pub use report::{f1, f2, render_series, section, Table};
pub use suite::{discovery_profile, run_scenario, run_suite, ScenarioReport, SuiteOptions};
pub use transfer_analysis::{causal_terms, causal_transfer, regression_transfer, TransferStats};
