//! The full-pipeline suite harness: every [`ScenarioRegistry`] entry is
//! driven through all five Unicorn stages — observational sampling,
//! causal discovery, SCM fitting, debugging (with its relearn loop),
//! optimization, and, where the scenario defines an environment shift,
//! transfer — recording per-scenario wall clock, CI-test counts, SHD
//! against the planted ground-truth graph, and query latencies.
//!
//! The `suite` bench target (`cargo bench -p unicorn-bench --bench
//! suite`) runs [`run_suite`] over [`ScenarioRegistry::standard`] and
//! writes one machine-readable `BENCH_suite.json` (path overridable via
//! `UNICORN_BENCH_JSON`): a criterion-shim-compatible `benchmarks` array
//! (one wall-clock entry per scenario × stage, consumable by the
//! `bench-gate` regression gate) plus a `scenarios` array with the
//! quality metrics. `UNICORN_SUITE_FILTER=<substring>` restricts the run
//! to matching scenario names.

use std::sync::Arc;
use std::time::Instant;

use unicorn_core::{
    debug_fault, gain_percent, learn_source_state, optimize_single, transfer_debug, TransferMode,
    UnicornOptions,
};
use unicorn_discovery::{learn_causal_model_on, DiscoveryOptions};
use unicorn_graph::{skeleton_distance, structural_hamming_distance};
use unicorn_inference::{CausalEngine, FittedScm, QosGoal};
use unicorn_systems::{
    discover_faults, generate, FaultDiscoveryOptions, Scenario, ScenarioRegistry,
};

/// Suite-scale loop budgets (kept small: the suite's job is covering the
/// scenario matrix end to end, not paper-scale evaluation).
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Base RNG seed.
    pub seed: u64,
    /// Initial samples granted to the debug/optimize/transfer loops.
    pub loop_samples: usize,
    /// Debug-loop measurement budget.
    pub debug_budget: usize,
    /// Optimization measurement budget.
    pub optimize_budget: usize,
    /// Fault-catalog sample size.
    pub catalog_samples: usize,
    /// Target samples folded in by the transfer `Update` regime.
    pub transfer_update: usize,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self {
            seed: 0x5017E,
            loop_samples: 60,
            debug_budget: 3,
            optimize_budget: 3,
            catalog_samples: 300,
            transfer_update: 10,
        }
    }
}

/// The discovery profile suite-scale harnesses use, scaled to the
/// variable count: multiple-testing control (a stricter alpha and
/// shallower conditioning) keeps the big variants sparse — the Table 3
/// regime — while the standard systems run the loop defaults.
pub fn discovery_profile(n_nodes: usize) -> DiscoveryOptions {
    if n_nodes > 150 {
        DiscoveryOptions {
            alpha: 1e-4,
            max_depth: 1,
            pds_depth: 0,
            ..Default::default()
        }
    } else {
        DiscoveryOptions {
            alpha: 0.01,
            max_depth: 2,
            pds_depth: 1,
            ..Default::default()
        }
    }
}

/// Everything the suite records about one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Registry name.
    pub name: String,
    /// Option count.
    pub n_options: usize,
    /// Event count.
    pub n_events: usize,
    /// Objective count.
    pub n_objectives: usize,
    /// Observational samples drawn for discovery.
    pub n_samples: usize,
    /// Stage II wall clock (ms).
    pub discovery_ms: f64,
    /// CI tests executed by discovery.
    pub ci_tests: usize,
    /// Structural hamming distance of the learned ADMG vs the planted
    /// ground truth (adjacency + endpoint marks).
    pub shd: usize,
    /// Adjacency-only distance vs the planted skeleton.
    pub skeleton_shd: usize,
    /// SCM fit wall clock (ms).
    pub scm_fit_ms: f64,
    /// Stage V query latency (ms): the full option-ACE table plus a
    /// root-cause ranking, each as one compiled plan batch.
    pub query_ms: f64,
    /// Debug-task wall clock (ms): catalog fault → full repair loop.
    pub debug_ms: f64,
    /// Ground-truth gain of the debug repair (percent).
    pub debug_gain_pct: f64,
    /// Optimization-task wall clock (ms).
    pub optimize_ms: f64,
    /// Transfer-task wall clock (ms); `None` when the scenario defines no
    /// environment shift.
    pub transfer_ms: Option<f64>,
    /// End-to-end wall clock (ms).
    pub total_ms: f64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Drives one scenario through the full five-stage pipeline.
pub fn run_scenario(sc: &Scenario, opts: &SuiteOptions) -> ScenarioReport {
    let t_total = Instant::now();
    let sim = sc.simulator(opts.seed);
    let truth = sim.model.true_admg();
    let tiers = sim.model.tiers();
    let disc = discovery_profile(sim.model.n_nodes());

    // Stage I: observational sample.
    let ds = generate(&sim, sc.suite_samples, opts.seed ^ 0xDA7A);
    let view = ds.view();

    // Stage II: causal discovery, scored against the planted graph.
    let t = Instant::now();
    let model = learn_causal_model_on(&view, &ds.names, &tiers, &disc);
    let discovery_ms = ms(t);
    let learned = model.admg.to_mixed();
    let planted = truth.to_mixed();
    let shd = structural_hamming_distance(&learned, &planted);
    let skeleton_shd = skeleton_distance(&learned, &planted);

    // SCM fit over the same shared view.
    let t = Instant::now();
    let scm = FittedScm::fit_view(model.admg.clone(), &view).expect("SCM fit");
    let scm_fit_ms = ms(t);

    // Stage V: the query surface as compiled plan batches.
    let engine = CausalEngine::new(scm, tiers.clone(), Arc::new(ds.domains(&sim)));
    let objective = ds.objective_node(0);
    let goal = QosGoal::single(
        objective,
        unicorn_stats::quantile(ds.objective_column(0), 0.5),
    );
    let t = Instant::now();
    let aces = engine.option_effects(objective);
    let ranked = engine.rank_root_causes(&goal);
    let query_ms = ms(t);
    assert_eq!(aces.len(), sim.model.n_options());
    drop(ranked);

    // Stages III/IV: the debugging loop on a catalog fault.
    let loop_opts = UnicornOptions {
        initial_samples: opts.loop_samples,
        budget: opts.debug_budget,
        relearn_every: 2,
        discovery: disc.clone(),
        seed: opts.seed,
        ..Default::default()
    };
    let cat = discover_faults(
        &sim,
        &FaultDiscoveryOptions {
            n_samples: opts.catalog_samples,
            ace_bases: 2,
            ..Default::default()
        },
    );
    let (debug_ms, debug_gain_pct) = match cat.faults.first() {
        Some(fault) => {
            let t = Instant::now();
            let out = debug_fault(&sim, fault, &cat, &loop_opts);
            let elapsed = ms(t);
            let o = fault.objectives[0];
            let after = sim.true_objectives(&out.best_config)[o];
            (elapsed, gain_percent(fault.true_objectives[o], after))
        }
        None => (0.0, 0.0),
    };

    // Optimization.
    let t = Instant::now();
    let opt = optimize_single(
        &sim,
        0,
        &UnicornOptions {
            budget: opts.optimize_budget,
            ..loop_opts.clone()
        },
    );
    let optimize_ms = ms(t);
    assert!(opt.best_value.is_finite());

    // Transfer (only when the scenario defines a shift).
    let transfer_ms = sc.target_simulator(opts.seed ^ 0x7A26E7).map(|target| {
        let t = Instant::now();
        let src_state = learn_source_state(&sim, &loop_opts);
        let tcat = discover_faults(
            &target,
            &FaultDiscoveryOptions {
                n_samples: opts.catalog_samples.min(200),
                ace_bases: 2,
                ..Default::default()
            },
        );
        if let Some(fault) = tcat.faults.first() {
            let _ = transfer_debug(
                &src_state,
                &target,
                fault,
                &tcat,
                &loop_opts,
                TransferMode::Update(opts.transfer_update),
            );
        }
        ms(t)
    });

    ScenarioReport {
        name: sc.name.clone(),
        n_options: sim.model.n_options(),
        n_events: sim.model.n_events(),
        n_objectives: sim.model.n_objectives(),
        n_samples: sc.suite_samples,
        discovery_ms,
        ci_tests: model.n_ci_tests,
        shd,
        skeleton_shd,
        scm_fit_ms,
        query_ms,
        debug_ms,
        debug_gain_pct,
        optimize_ms,
        transfer_ms,
        total_ms: ms(t_total),
    }
}

/// Runs every registry entry (optionally filtered by
/// `UNICORN_SUITE_FILTER`) through [`run_scenario`].
pub fn run_suite(reg: &ScenarioRegistry, opts: &SuiteOptions) -> Vec<ScenarioReport> {
    let filter = std::env::var("UNICORN_SUITE_FILTER").unwrap_or_default();
    let mut reports = Vec::new();
    for sc in reg.iter() {
        if !filter.is_empty() && !sc.name.contains(&filter) {
            continue;
        }
        let r = run_scenario(sc, opts);
        println!(
            "{:<26} discovery {:>8.1} ms ({} CI tests, SHD {}, skel {})  \
             fit {:>6.1} ms  queries {:>6.1} ms  debug {:>8.1} ms ({:.0}% gain)  \
             optimize {:>8.1} ms  transfer {:>8}  total {:>9.1} ms",
            r.name,
            r.discovery_ms,
            r.ci_tests,
            r.shd,
            r.skeleton_shd,
            r.scm_fit_ms,
            r.query_ms,
            r.debug_ms,
            r.debug_gain_pct,
            r.optimize_ms,
            r.transfer_ms
                .map_or("—".to_string(), |t| format!("{t:.1} ms")),
            r.total_ms,
        );
        reports.push(r);
    }
    reports
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The per-stage wall-clock entries (name, milliseconds) of one suite
/// pass, in canonical stage order — the `benchmarks` rows of the report.
fn stage_benches(reports: &[ScenarioReport]) -> Vec<(String, f64)> {
    let mut benches: Vec<(String, f64)> = Vec::new();
    for r in reports {
        benches.push((format!("suite/{}/discovery", r.name), r.discovery_ms));
        benches.push((format!("suite/{}/scm_fit", r.name), r.scm_fit_ms));
        benches.push((format!("suite/{}/queries", r.name), r.query_ms));
        benches.push((format!("suite/{}/debug", r.name), r.debug_ms));
        benches.push((format!("suite/{}/optimize", r.name), r.optimize_ms));
        if let Some(t) = r.transfer_ms {
            benches.push((format!("suite/{}/transfer", r.name), t));
        }
        benches.push((format!("suite/{}/total", r.name), r.total_ms));
    }
    benches
}

/// Renders a single-pass suite report — see [`render_json_runs`].
pub fn render_json(reports: &[ScenarioReport]) -> String {
    render_json_runs(std::slice::from_ref(&reports.to_vec()))
}

/// Renders a multi-sample suite report: `runs` holds one full suite pass
/// per sample (the bench target runs `UNICORN_BENCH_SAMPLES` passes), and
/// each scenario × stage entry reports the min/mean/max wall clock across
/// passes — the shape the criterion shim emits — so the suite bench-gate
/// can run a tight tolerance on mean timings instead of absorbing
/// single-run jitter. Quality metrics come from the first pass (they are
/// a deterministic function of the seed, identical in every pass).
///
/// # Panics
///
/// Panics when `runs` is empty or the passes cover different scenarios.
pub fn render_json_runs(runs: &[Vec<ScenarioReport>]) -> String {
    let first = runs.first().expect("at least one suite pass");
    let mut entries: Vec<(String, Vec<f64>)> = stage_benches(first)
        .into_iter()
        .map(|(name, v)| (name, vec![v]))
        .collect();
    for run in &runs[1..] {
        let pass = stage_benches(run);
        assert_eq!(pass.len(), entries.len(), "suite passes diverged");
        for (entry, (name, v)) in entries.iter_mut().zip(pass) {
            assert_eq!(entry.0, name, "suite passes diverged");
            entry.1.push(v);
        }
    }
    let reports = first;
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, vals)) in entries.iter().enumerate() {
        let min = (vals.iter().cloned().fold(f64::INFINITY, f64::min) * 1e6).round() as u128;
        let max = (vals.iter().cloned().fold(0.0f64, f64::max) * 1e6).round() as u128;
        let mean = (vals.iter().sum::<f64>() / vals.len() as f64 * 1e6).round() as u128;
        let sep = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": {}, \"min_ns\": {min}, \"mean_ns\": {mean}, \"max_ns\": {max}, \"samples\": {}}}{sep}\n",
            json_string(name),
            vals.len(),
        ));
    }
    out.push_str("  ],\n  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let sep = if i + 1 < reports.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": {}, \"n_options\": {}, \"n_events\": {}, \
             \"n_objectives\": {}, \"n_samples\": {}, \"ci_tests\": {}, \
             \"shd\": {}, \"skeleton_shd\": {}, \"debug_gain_pct\": {:.2}, \
             \"discovery_ms\": {:.3}, \"scm_fit_ms\": {:.3}, \"query_ms\": {:.3}, \
             \"debug_ms\": {:.3}, \"optimize_ms\": {:.3}, \"transfer_ms\": {}, \
             \"total_ms\": {:.3}}}{sep}\n",
            json_string(&r.name),
            r.n_options,
            r.n_events,
            r.n_objectives,
            r.n_samples,
            r.ci_tests,
            r.shd,
            r.skeleton_shd,
            r.debug_gain_pct,
            r.discovery_ms,
            r.scm_fit_ms,
            r.query_ms,
            r.debug_ms,
            r.optimize_ms,
            r.transfer_ms
                .map_or("null".to_string(), |t| format!("{t:.3}")),
            r.total_ms,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicorn_systems::{Interaction, Scenario, ScenarioSpec};

    #[test]
    fn discovery_profile_scales_with_variable_count() {
        let small = discovery_profile(60);
        assert_eq!(small.max_depth, 2);
        let big = discovery_profile(500);
        assert_eq!(big.max_depth, 1);
        assert!(big.alpha < small.alpha);
    }

    #[test]
    fn one_synthetic_scenario_runs_end_to_end() {
        let sc = Scenario::synthetic(ScenarioSpec::family(10, Interaction::Sparse, 1, 0))
            .with_samples(80);
        let opts = SuiteOptions {
            loop_samples: 40,
            debug_budget: 1,
            optimize_budget: 1,
            catalog_samples: 120,
            ..Default::default()
        };
        let r = run_scenario(&sc, &opts);
        assert_eq!(r.n_options, 10);
        assert!(r.discovery_ms > 0.0 && r.total_ms >= r.discovery_ms);
        assert!(r.ci_tests > 0);
        assert!(r.transfer_ms.is_none(), "no shift on this spec");
        // The report renders as JSON with both sections.
        let json = render_json(&[r]);
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("\"scenarios\""));
        assert!(json.contains("suite/synth-opt10-sparse-1obj/total"));
    }

    #[test]
    fn multi_sample_report_aggregates_across_passes() {
        let base = ScenarioReport {
            name: "demo".to_string(),
            n_options: 1,
            n_events: 0,
            n_objectives: 1,
            n_samples: 10,
            discovery_ms: 2.0,
            ci_tests: 5,
            shd: 0,
            skeleton_shd: 0,
            scm_fit_ms: 1.0,
            query_ms: 3.0,
            debug_ms: 4.0,
            debug_gain_pct: 0.0,
            optimize_ms: 5.0,
            transfer_ms: None,
            total_ms: 15.0,
        };
        let mut slow = base.clone();
        slow.discovery_ms = 6.0;
        let json = render_json_runs(&[vec![base], vec![slow]]);
        // discovery: min 2 ms, mean 4 ms, max 6 ms over 2 samples.
        assert!(json.contains(
            "{\"name\": \"suite/demo/discovery\", \"min_ns\": 2000000, \
             \"mean_ns\": 4000000, \"max_ns\": 6000000, \"samples\": 2}"
        ));
        // Quality metrics come from the first pass only.
        assert!(json.contains("\"ci_tests\": 5"));
    }
}
