//! Plain-text report rendering: markdown tables and ASCII line series, so
//! every table/figure binary prints the same rows/series the paper
//! reports.

/// A simple markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders to markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders a labeled series as an ASCII sparkline plot (one row per
/// series) plus the raw values — the "figure" output format.
pub fn render_series(title: &str, series: &[(&str, Vec<f64>)]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = format!("# {title}\n");
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
    for (name, values) in series {
        let spark: String = values
            .iter()
            .map(|v| {
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                GLYPHS[((t * 7.0).round()) as usize]
            })
            .collect();
        let nums: Vec<String> = values.iter().map(|v| format!("{v:.2}")).collect();
        out.push_str(&format!("{name:name_w$} {spark}  [{}]\n", nums.join(", ")));
    }
    out
}

/// Prints a figure header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["System", "Accuracy"]);
        t.row(vec!["x264".into(), "83".into()]);
        let s = t.render();
        assert!(s.contains("| System | Accuracy |"));
        assert!(s.contains("| x264 "));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn series_sparkline_spans_range() {
        let s = render_series("fig", &[("m", vec![0.0, 0.5, 1.0])]);
        assert!(s.contains('▁'));
        assert!(s.contains('█'));
        assert!(s.contains("# fig"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(2.4649), "2.5");
        assert_eq!(f2(2.4649), "2.46");
    }
}
