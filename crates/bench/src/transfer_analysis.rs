//! Shared analysis for the transferability figures (Figs 4, 5, 21, 22):
//! fitting regression and causal performance models in a source and a
//! target environment and comparing their terms, coefficients, and errors.

use std::collections::BTreeSet;

use unicorn_baselines::InfluenceModel;
use unicorn_discovery::{learn_causal_model_on, DiscoveryOptions, LearnedModel};
use unicorn_graph::backtrack_causal_paths;
use unicorn_inference::FittedScm;
use unicorn_stats::regression::StepwiseOptions;
use unicorn_stats::{mape, spearman};
use unicorn_systems::Dataset;

/// Comparison statistics of a source model against a target environment —
/// one bar group of Fig 4.
#[derive(Debug, Clone)]
pub struct TransferStats {
    /// Terms in the source model.
    pub total_terms_source: usize,
    /// Terms in the target model.
    pub total_terms_target: usize,
    /// Terms common to both.
    pub common_terms: usize,
    /// MAPE of the source model on source data.
    pub error_source: f64,
    /// MAPE of the target model on target data.
    pub error_target: f64,
    /// MAPE of the source model applied to target data.
    pub error_transferred: f64,
    /// Spearman rank correlation between the models' term
    /// coefficients/effects.
    pub rank_correlation: f64,
}

/// Fits performance-influence models in both environments and compares
/// them (the "Performance Influence Model" column of Fig 4).
pub fn regression_transfer(
    source: &Dataset,
    target: &Dataset,
    obj_idx: usize,
    max_terms: usize,
) -> (TransferStats, InfluenceModel, InfluenceModel) {
    let opts = StepwiseOptions {
        max_terms,
        ..Default::default()
    };
    let src = InfluenceModel::fit(source, obj_idx, &opts).expect("source fit");
    let dst = InfluenceModel::fit(target, obj_idx, &opts).expect("target fit");
    let stats = TransferStats {
        total_terms_source: src.terms().len(),
        total_terms_target: dst.terms().len(),
        common_terms: src.common_terms(&dst).len(),
        error_source: src.mape_on(source, obj_idx),
        error_target: dst.mape_on(target, obj_idx),
        error_transferred: src.mape_on(target, obj_idx),
        rank_correlation: src.coefficient_rank_correlation(&dst),
    };
    (stats, src, dst)
}

/// The causal terms of a learned model for one objective (appendix B.1):
/// backtrack causal paths from the objective; each path contributes its
/// source option, and events reached from several options contribute the
/// interaction of those options.
pub fn causal_terms(model: &LearnedModel, data: &Dataset, obj_idx: usize) -> BTreeSet<Vec<usize>> {
    let obj = data.objective_node(obj_idx);
    let mut terms: BTreeSet<Vec<usize>> = BTreeSet::new();
    let paths = backtrack_causal_paths(&model.admg, obj, 500);
    // Options feeding each event (for interaction terms).
    for p in &paths {
        let src = p.source();
        if src < data.n_options {
            terms.insert(vec![src]);
        }
        for &node in &p.nodes {
            if node >= data.n_options && node < obj {
                let mut opts: Vec<usize> = model
                    .admg
                    .parents(node)
                    .into_iter()
                    .filter(|&q| q < data.n_options)
                    .collect();
                opts.sort_unstable();
                if opts.len() >= 2 {
                    terms.insert(opts);
                }
            }
        }
    }
    terms
}

/// Per-option total causal strength in a fitted SCM — the "coefficient"
/// analog used for the causal rank-correlation statistic: the sum of
/// |coefficient| of every fitted term in which the option participates,
/// across all functional nodes.
pub fn causal_option_strengths(scm: &FittedScm, n_options: usize) -> Vec<f64> {
    let mut strength = vec![0.0; n_options];
    // Walk each non-root node's fitted polynomial.
    for v in 0..scm.n_vars() {
        let parents = scm.parents_of(v).to_vec();
        if parents.is_empty() {
            continue;
        }
        // The SCM's per-node models are not exposed directly; approximate
        // the strength by the node's parent ACE proxy: difference of
        // predictions when sweeping each option parent over the data range.
        for &p in &parents {
            if p >= n_options {
                continue;
            }
            let col = &scm.data()[p];
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if hi <= lo {
                continue;
            }
            let e_lo = scm.interventional_expectation(v, &[(p, lo)]);
            let e_hi = scm.interventional_expectation(v, &[(p, hi)]);
            strength[p] += (e_hi - e_lo).abs();
        }
    }
    strength
}

/// Learns causal models in both environments and compares them (the
/// "Causal Performance Model" column of Fig 4).
pub fn causal_transfer(
    source: &Dataset,
    target: &Dataset,
    obj_idx: usize,
    tiers: &unicorn_graph::TierConstraints,
    opts: &DiscoveryOptions,
) -> TransferStats {
    // One shared view per environment: structure learning and SCM fitting
    // read the same cached sufficient statistics.
    let source_view = source.view();
    let target_view = target.view();
    let src = learn_causal_model_on(&source_view, &source.names, tiers, opts);
    let dst = learn_causal_model_on(&target_view, &target.names, tiers, opts);
    let terms_src = causal_terms(&src, source, obj_idx);
    let terms_dst = causal_terms(&dst, target, obj_idx);
    let common = terms_src.intersection(&terms_dst).count();

    let scm_src = FittedScm::fit_view(src.admg.clone(), &source_view).expect("fit src");
    let scm_dst = FittedScm::fit_view(dst.admg.clone(), &target_view).expect("fit dst");
    let obj_node = source.objective_node(obj_idx);

    let predict = |scm: &FittedScm, data: &Dataset| -> f64 {
        let n = data.n_rows();
        let pred: Vec<f64> = (0..n)
            .map(|r| {
                let assignment: Vec<(usize, f64)> = (0..data.n_options)
                    .map(|o| (o, data.columns[o][r]))
                    .collect();
                scm.predict_from_assignment(&assignment, obj_node)
            })
            .collect();
        mape(data.objective_column(obj_idx), &pred)
    };

    let s_src = causal_option_strengths(&scm_src, source.n_options);
    let s_dst = causal_option_strengths(&scm_dst, target.n_options);

    TransferStats {
        total_terms_source: terms_src.len(),
        total_terms_target: terms_dst.len(),
        common_terms: common,
        error_source: predict(&scm_src, source),
        error_target: predict(&scm_dst, target),
        error_transferred: predict(&scm_src, target),
        rank_correlation: spearman(&s_src, &s_dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

    fn datasets() -> (Simulator, Dataset, Dataset) {
        let src_sim = Simulator::new(
            SubjectSystem::X264.build(),
            Environment::on(Hardware::Xavier),
            3,
        );
        let dst_sim = Simulator::new(
            SubjectSystem::X264.build(),
            Environment::on(Hardware::Tx2),
            3,
        );
        let src = generate(&src_sim, 220, 10);
        let dst = generate(&dst_sim, 220, 11);
        (src_sim, src, dst)
    }

    #[test]
    fn regression_transfer_reports_error_growth() {
        let (_, src, dst) = datasets();
        let (stats, _, _) = regression_transfer(&src, &dst, 0, 12);
        assert!(stats.total_terms_source > 0);
        assert!(stats.error_transferred >= stats.error_source);
        assert!(stats.common_terms <= stats.total_terms_source);
    }

    #[test]
    fn causal_transfer_keeps_structure_stable() {
        let (sim, src, dst) = datasets();
        let stats = causal_transfer(
            &src,
            &dst,
            0,
            &sim.model.tiers(),
            &DiscoveryOptions {
                max_depth: 2,
                pds_depth: 0,
                ..Default::default()
            },
        );
        assert!(stats.total_terms_source > 0);
        // The causal structure overlap should be substantial: common terms
        // at least a third of the smaller model.
        let smaller = stats.total_terms_source.min(stats.total_terms_target);
        assert!(
            stats.common_terms * 3 >= smaller,
            "common {} of {smaller}",
            stats.common_terms
        );
    }
}
