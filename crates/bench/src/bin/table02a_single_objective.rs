//! Table 2a — single-objective debugging efficiency: accuracy, precision,
//! recall, gain and wall time for the five methods on latency faults (TX2)
//! and energy faults (Xavier), across five systems.

use unicorn_bench::{catalog, f1, run_cell, section, simulator, DebugMethod, Scale, Table};
use unicorn_systems::{Hardware, SubjectSystem};

fn block(title: &str, hw: Hardware, objective: usize, scale: Scale) {
    section(title);
    let systems = [
        SubjectSystem::Deepstream,
        SubjectSystem::Xception,
        SubjectSystem::Bert,
        SubjectSystem::Deepspeech,
        SubjectSystem::X264,
    ];
    let mut t = Table::new(&[
        "System",
        "Method",
        "Accuracy",
        "Precision",
        "Recall",
        "Gain",
        "Time (s)",
        "Meas.",
    ]);
    for sys in systems {
        let sim = simulator(sys, hw);
        let cat = catalog(&sim, scale);
        if cat.single_objective(objective).is_empty() {
            t.row(vec![
                sys.name().into(),
                "(no faults at this scale)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        for method in DebugMethod::table2a() {
            let s = run_cell(
                method,
                &sim,
                &cat,
                Some(objective),
                false,
                scale.faults_per_cell(),
                scale,
                0x2A ^ objective as u64,
            );
            t.row(vec![
                sys.name().into(),
                method.name().into(),
                f1(s.accuracy),
                f1(s.precision),
                f1(s.recall),
                f1(s.gains.first().copied().unwrap_or(0.0)),
                f1(s.time_s),
                s.n_measurements.to_string(),
            ]);
        }
    }
    t.print();
}

fn main() {
    let scale = Scale::from_env();
    block(
        "Table 2a (top): latency faults on TX2",
        Hardware::Tx2,
        0,
        scale,
    );
    block(
        "Table 2a (bottom): energy faults on Xavier",
        Hardware::Xavier,
        1,
        scale,
    );
    println!(
        "\nExpected shape (paper): Unicorn leads accuracy/precision/recall \
         and gain in (nearly) every cell while spending a fraction of the \
         measurements/time."
    );
}
