//! Table 2b — multi-objective (energy + latency) debugging on Xavier:
//! Unicorn vs CBI, EnCore, BugDoc on four systems, with per-objective
//! gains.

use unicorn_bench::{catalog, f1, run_cell, section, simulator, DebugMethod, Scale, Table};
use unicorn_systems::{Hardware, SubjectSystem};

fn main() {
    let scale = Scale::from_env();
    section("Table 2b: multi-objective (latency + energy) faults on Xavier");
    let systems = [
        SubjectSystem::Xception,
        SubjectSystem::Bert,
        SubjectSystem::Deepspeech,
        SubjectSystem::X264,
    ];
    let mut t = Table::new(&[
        "System",
        "Method",
        "Accuracy",
        "Precision",
        "Recall",
        "Gain (Lat)",
        "Gain (En)",
        "Time (s)",
    ]);
    for sys in systems {
        let sim = simulator(sys, Hardware::Xavier);
        let cat = catalog(&sim, scale);
        let has_multi = cat.faults.iter().any(|f| f.is_multi_objective());
        if !has_multi {
            t.row(vec![
                sys.name().into(),
                "(no multi-objective faults at this scale)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        for method in DebugMethod::table2b() {
            let s = run_cell(
                method,
                &sim,
                &cat,
                None,
                true,
                scale.faults_per_cell(),
                scale,
                0x2B,
            );
            t.row(vec![
                sys.name().into(),
                method.name().into(),
                f1(s.accuracy),
                f1(s.precision),
                f1(s.recall),
                f1(s.gains.first().copied().unwrap_or(0.0)),
                f1(s.gains.get(1).copied().unwrap_or(0.0)),
                f1(s.time_s),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape (paper): Unicorn repairs improve both objectives \
         simultaneously; correlational methods trade one off against the \
         other."
    );
}
