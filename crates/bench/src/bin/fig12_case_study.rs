//! Fig 12 / §5 — the real-world case study: a scene-detection pipeline
//! migrated from TX1 to TX2 runs 4× slower because `CUDA_STATIC` plus four
//! conservative hardware clocks thrash the scheduler. Unicorn, SMAC,
//! BugDoc and the NVIDIA-forum fix are compared on fix quality and cost.

use std::collections::BTreeSet;

use unicorn_baselines::{smac_debug, BugDoc, DebugBudget, Debugger};
use unicorn_bench::{f1, section, Scale, Table};
use unicorn_core::{debug_fault, UnicornOptions};
use unicorn_systems::systems::scene_detection;
use unicorn_systems::{
    discover_faults, Environment, Fault, FaultCatalog, FaultDiscoveryOptions, Hardware, Simulator,
};

/// ms-per-frame → frames-per-second.
fn fps(latency_ms: f64) -> f64 {
    1000.0 / latency_ms.max(1e-9)
}

fn main() {
    let scale = Scale::from_env();
    let model = scene_detection::build();
    let tx2 = Simulator::new(model.clone(), Environment::on(Hardware::Tx2), 0xF5CA);
    let tx1 = Simulator::new(model.clone(), Environment::on(Hardware::Tx1), 0xF5CA);

    // The migration fault and its ground truth.
    let fault_cfg = scene_detection::faulty_config(&model);
    let forum_cfg = scene_detection::forum_fix(&model);
    let lat_fault_tx2 = tx2.true_objectives(&fault_cfg)[0];
    let lat_tx1 = tx1.true_objectives(&model.space.default_config())[0];
    println!(
        "TX1 baseline: {:.1} FPS; misconfigured TX2: {:.1} FPS ({}x worse)",
        fps(lat_tx1),
        fps(lat_fault_tx2),
        f1(lat_fault_tx2 / lat_tx1)
    );

    // Catalog for thresholds/weights, with the case-study fault injected.
    let mut cat: FaultCatalog = discover_faults(
        &tx2,
        &FaultDiscoveryOptions {
            n_samples: scale.catalog_samples(),
            ace_bases: 8,
            ..Default::default()
        },
    );
    let planted: BTreeSet<usize> = [
        "CUDA_STATIC",
        "CPU Cores",
        "CPU Frequency",
        "EMC Frequency",
        "GPU Frequency",
    ]
    .iter()
    .map(|n| model.space.index_of(n).expect("known option"))
    .collect();
    let fault = Fault {
        config: fault_cfg.clone(),
        objectives: vec![0],
        true_objectives: tx2.true_objectives(&fault_cfg),
        root_causes: planted.clone(),
    };
    cat.faults.push(fault.clone());
    // QoS per the §5 narrative: the developer *expects* real-time frame
    // rates, regardless of how common the misconfiguration is among random
    // configurations (half of them share the bad CUDA_STATIC bit, so the
    // sampled medians are useless as a goal here). Faulty = slower than
    // 8 FPS; fixed = the developer's expectation of 22-24 FPS.
    cat.thresholds[0] = 1000.0 / 8.0;
    cat.medians[0] = 1000.0 / 12.0;
    cat.targets[0] = 1000.0 / 22.0;

    // Run the three methods.
    let budget = DebugBudget {
        n_samples: scale.n_samples(),
        n_probes: scale.n_probes(),
    };
    // Equal measurement budgets: every method may spend
    // n_samples + n_probes measurements in total (the paper gave SMAC and
    // BugDoc four-hour budgets and Unicorn still finished first).
    let uni = debug_fault(
        &tx2,
        &fault,
        &cat,
        &UnicornOptions {
            initial_samples: 25,
            budget: scale.n_samples() + scale.n_probes() - 25,
            relearn_every: 5,
            stagnation_limit: 10,
            ..Default::default()
        },
    );
    let smac = smac_debug(&tx2, &fault, &cat, &budget, 0x5CA);
    let bugdoc = BugDoc::default().debug(&tx2, &fault, &cat, &budget, 0xB0C);

    section("Fig 12: which options each method changed");
    let mut t = Table::new(&["Configuration Option", "Unicorn", "SMAC", "BugDoc", "Forum"]);
    let forum_changed: Vec<usize> = (0..model.space.len())
        .filter(|&i| forum_cfg.values[i] != fault_cfg.values[i])
        .collect();
    for i in 0..model.space.len() {
        let mark = |set: &[usize]| if set.contains(&i) { "x" } else { "." };
        t.row(vec![
            model.space.option(i).name.clone(),
            mark(&uni.diagnosed_options).into(),
            mark(&smac.diagnosed_options).into(),
            mark(&bugdoc.diagnosed_options).into(),
            mark(&forum_changed).into(),
        ]);
    }
    t.print();

    section("Fig 12: fix quality");
    let mut q = Table::new(&["Metric", "Unicorn", "SMAC", "BugDoc", "Forum"]);
    let lat = |c: &unicorn_systems::Config| tx2.true_objectives(c)[0];
    let rows: Vec<(&str, f64)> = vec![
        ("Unicorn", lat(&uni.best_config)),
        ("SMAC", lat(&smac.best_config)),
        ("BugDoc", lat(&bugdoc.best_config)),
        ("Forum", lat(&forum_cfg)),
    ];
    q.row(
        std::iter::once("Latency (TX2 frames/sec)".to_string())
            .chain(rows.iter().map(|(_, l)| f1(fps(*l))))
            .collect(),
    );
    q.row(
        std::iter::once("Latency gain over TX1 (%)".to_string())
            .chain(
                rows.iter()
                    .map(|(_, l)| f1(100.0 * (fps(*l) - fps(lat_tx1)) / fps(lat_tx1))),
            )
            .collect(),
    );
    q.row(
        std::iter::once("Latency gain over fault (x)".to_string())
            .chain(rows.iter().map(|(_, l)| f1(fps(*l) / fps(lat_fault_tx2))))
            .collect(),
    );
    q.row(vec![
        "Measurements".into(),
        uni.n_measurements.to_string(),
        smac.n_measurements.to_string(),
        bugdoc.n_measurements.to_string(),
        "manual (2 days)".into(),
    ]);
    q.row(vec![
        "Wall time (s)".into(),
        f1(uni.wall_time_s),
        f1(smac.wall_time_s),
        f1(bugdoc.wall_time_s),
        "-".into(),
    ]);
    q.print();

    let hit: Vec<usize> = uni
        .diagnosed_options
        .iter()
        .copied()
        .filter(|o| planted.contains(o))
        .collect();
    println!(
        "\nUnicorn recovered {}/{} planted root causes {:?}",
        hit.len(),
        planted.len(),
        hit.iter()
            .map(|&i| model.space.option(i).name.clone())
            .collect::<Vec<_>>()
    );
}
