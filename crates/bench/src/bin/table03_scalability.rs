//! Table 3 — scalability: SQLite (34 → 242 options, 19 → 288 events) and
//! Deepstream (→ 288 events) on Xavier. For each scenario: causal-path and
//! repair-query counts, average node degree, repair gain, and the wall
//! time of discovery, query evaluation, and one full fault diagnosis.
//!
//! The scenario list comes from [`ScenarioRegistry::scalability`]: adding
//! a registry entry adds a table row.

use std::time::Instant;

use unicorn_bench::{f1, f2, section, Scale, Table};
use unicorn_core::{debug_fault, UnicornOptions};
use unicorn_discovery::{learn_causal_model_on, DiscoveryOptions};
use unicorn_graph::paths::count_causal_paths;
use unicorn_inference::{
    generate_repairs, root_cause_candidates, CausalEngine, FittedScm, QosGoal, RepairOptions,
};
use unicorn_systems::{
    discover_faults, generate, FaultDiscoveryOptions, Scenario, ScenarioRegistry,
};

#[allow(clippy::too_many_lines)]
fn run(scenario: &Scenario, scale: Scale, t: &mut Table) {
    let n = match scale {
        Scale::Quick => scenario.suite_samples,
        Scale::Full => 800,
    };
    let sim = scenario.simulator(0x3AB);
    let ds = generate(&sim, n, 0x5CA1E);

    // Discovery timing. Every row runs the same depth-1 profile so the
    // table isolates the *size* axis; only alpha scales down with the
    // quadratic number of pairwise tests (multiple-testing control keeps
    // the big variants sparse).
    let alpha = if sim.model.n_nodes() > 150 {
        1e-4
    } else {
        0.01
    };
    let disc_opts = DiscoveryOptions {
        alpha,
        max_depth: 1,
        pds_depth: 0,
        ..Default::default()
    };
    let view = ds.view();
    let t0 = Instant::now();
    let model = learn_causal_model_on(&view, &ds.names, &sim.model.tiers(), &disc_opts);
    let discovery_s = t0.elapsed().as_secs_f64();

    // Path and query counts + query-eval timing.
    let objectives: Vec<usize> = (0..sim.model.n_objectives())
        .map(|o| ds.objective_node(o))
        .collect();
    let paths = count_causal_paths(&model.admg, &objectives, 10_000);
    let scm = FittedScm::fit_view(model.admg.clone(), &view).expect("fit");
    let engine = CausalEngine::new(
        scm,
        sim.model.tiers(),
        std::sync::Arc::new(ds.domains(&sim)),
    )
    .with_repair_options(RepairOptions {
        max_pairs: 30,
        ..Default::default()
    });
    let goal = QosGoal::single(
        ds.objective_node(0),
        unicorn_stats::quantile(ds.objective_column(0), 0.5),
    );
    let t1 = Instant::now();
    let candidates = root_cause_candidates(
        engine.scm(),
        &goal,
        engine.tiers(),
        engine.domain(),
        engine.repair_options(),
    );
    let fault_values: Vec<f64> = ds.row(0);
    let repairs = generate_repairs(
        &fault_values,
        &candidates,
        engine.domain(),
        engine.repair_options(),
    );
    let n_queries = repairs.len();
    // Evaluate every repair's ICE — the "query evaluation" cost.
    let _ranked =
        unicorn_inference::rank_repairs(engine.scm(), &goal, 0, repairs, engine.repair_options());
    let query_s = t1.elapsed().as_secs_f64();

    // One full fault diagnosis (discovery + loop) for gain + total time.
    let cat = discover_faults(
        &sim,
        &FaultDiscoveryOptions {
            n_samples: 400,
            ace_bases: 4,
            ..Default::default()
        },
    );
    let (gain, total_s) = if let Some(fault) = cat.faults.iter().find(|f| f.objectives.contains(&0))
    {
        let t2 = Instant::now();
        let out = debug_fault(
            &sim,
            fault,
            &cat,
            &UnicornOptions {
                initial_samples: n.min(100),
                budget: 6,
                relearn_every: 4,
                discovery: disc_opts.clone(),
                ..Default::default()
            },
        );
        let after = sim.true_objectives(&out.best_config)[0];
        (
            unicorn_core::gain_percent(fault.true_objectives[0], after),
            t2.elapsed().as_secs_f64(),
        )
    } else {
        (0.0, 0.0)
    };

    t.row(vec![
        sim.model.name.clone(),
        sim.model.n_options().to_string(),
        sim.model.n_events().to_string(),
        paths.to_string(),
        n_queries.to_string(),
        f2(model.admg.average_degree()),
        f1(gain),
        f1(discovery_s),
        f1(query_s),
        f1(total_s),
    ]);
}

fn main() {
    let scale = Scale::from_env();
    section("Table 3: scalability on Xavier");
    let mut t = Table::new(&[
        "System",
        "Configs",
        "Events",
        "Paths",
        "Queries",
        "Degree",
        "Gain (%)",
        "Discovery (s)",
        "Query eval (s)",
        "Total (s)",
    ]);
    for scenario in &ScenarioRegistry::scalability() {
        run(scenario, scale, &mut t);
    }
    t.print();
    println!(
        "\nExpected shape (paper's Table 3): runtime grows sub-exponentially \
         with options/events because the causal graph stays sparse — the \
         average degree *drops* as variables grow."
    );
}
