//! The CI bench-regression gate: `bench-gate <baseline.json>
//! <current.json>` exits non-zero when any benchmark of the baseline
//! regressed by more than the tolerance (default 25%, configurable via
//! `UNICORN_BENCH_GATE_PCT`) or vanished from the current report.
//!
//! Baselines are checked in under `benchmarks/baselines/`; to refresh
//! one, rerun the bench on the reference machine with
//! `UNICORN_BENCH_JSON` pointing at the baseline file and commit the
//! diff (see `benchmarks/baselines/README.md`).

use std::process::ExitCode;

use unicorn_bench::gate::{
    compare, min_ns_from_env, parse_report, stat_from_env, tolerance_from_env,
};

fn load(path: &str) -> Result<Vec<unicorn_bench::gate::BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_report(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, current_path) = match &args[1..] {
        [b, c] => (b, c),
        _ => {
            eprintln!("usage: bench-gate <baseline.json> <current.json>");
            return ExitCode::from(2);
        }
    };
    let tolerance = tolerance_from_env();
    let min_ns = min_ns_from_env();
    let stat = stat_from_env();
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    println!(
        "bench-gate: {} vs {} (tolerance {tolerance:.0}%, floor {:.2} ms, stat {})",
        baseline_path,
        current_path,
        min_ns / 1e6,
        stat.name(),
    );
    let comparisons = compare(&baseline, &current, tolerance, min_ns, stat);
    let mut regressions = 0usize;
    for c in &comparisons {
        let verdict = if c.regressed {
            "REGRESSED"
        } else if c.enforced {
            "ok"
        } else {
            "ok (below floor)"
        };
        match (c.current_ns, c.delta_pct) {
            (Some(cur), Some(delta)) => println!(
                "  {:<56} {:>10.3} ms -> {:>10.3} ms  {:>+7.1}%  {verdict}",
                c.name,
                c.baseline_ns / 1e6,
                cur / 1e6,
                delta,
            ),
            _ => println!(
                "  {:<56} {:>10.3} ms -> (missing)              {verdict}",
                c.name,
                c.baseline_ns / 1e6,
            ),
        }
        regressions += usize::from(c.regressed);
    }
    if regressions > 0 {
        eprintln!(
            "bench-gate: {regressions} benchmark(s) regressed beyond {tolerance:.0}% \
             (raise UNICORN_BENCH_GATE_PCT only with cause; refresh \
             benchmarks/baselines/ when a slowdown is intended)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench-gate: all {} benchmarks within tolerance",
        comparisons.len()
    );
    ExitCode::SUCCESS
}
