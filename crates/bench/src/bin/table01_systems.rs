//! Table 1 — overview of the subject systems: workload, |C| (measured
//! configurations in the paper; here the full space cardinality is also
//! shown), |O| options, |S| events, |H| hardware platforms, |P| objectives.
//!
//! The system list comes from the scenario registry: registering a new
//! real system ([`ScenarioRegistry::standard`]) puts it in this table —
//! and in every other registry-driven harness — automatically.

use unicorn_bench::{section, Table};
use unicorn_systems::{Hardware, ScenarioRegistry};

fn main() {
    section("Table 1: Overview of the subject systems");
    let registry = ScenarioRegistry::standard();
    let mut t = Table::new(&["System", "Workload", "|Space|", "|O|", "|S|", "|H|", "|P|"]);
    for sys in registry.real_systems() {
        let m = sys.build();
        t.row(vec![
            sys.name().to_string(),
            sys.workload_description().chars().take(48).collect(),
            format!("{:.2e}", m.space.cardinality() as f64),
            m.n_options().to_string(),
            m.n_events().to_string(),
            Hardware::all().len().to_string(),
            m.n_objectives().to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPaper reference: O = 53/28/28/28/32/34, S = 19–288, H = 3 \
         (TX1, TX2, Xavier)."
    );
}
