//! Fig 11 — the incremental behaviour of Unicorn: (a) structural hamming
//! distance to the ground-truth causal model shrinks as more
//! configurations are measured, (b, c) latency/energy trajectories while
//! debugging a multi-objective fault, (d) the options selected at each
//! iteration.

use unicorn_bench::{catalog, render_series, section, simulator, Scale};
use unicorn_core::{debug_fault_with_state, UnicornOptions, UnicornState};
use unicorn_discovery::{learn_causal_model, DiscoveryOptions};
use unicorn_graph::structural_hamming_distance;
use unicorn_systems::{generate, Hardware, SubjectSystem};

fn main() {
    let scale = Scale::from_env();
    let sim = simulator(SubjectSystem::Deepstream, Hardware::Xavier);

    // (a) SHD vs measured samples: learn from growing prefixes of one
    // sample stream and compare against the ground truth.
    section("Fig 11a: structural hamming distance vs samples");
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![25, 50, 100, 200],
        Scale::Full => vec![25, 50, 100, 200, 400, 800],
    };
    let stream = generate(&sim, *sizes.last().expect("non-empty"), 0xF11A);
    let truth = sim.model.true_admg().to_mixed();
    let disc = DiscoveryOptions {
        max_depth: 2,
        pds_depth: 0,
        ..Default::default()
    };
    let shd: Vec<f64> = sizes
        .iter()
        .map(|&k| {
            let cols: Vec<Vec<f64>> = stream.columns.iter().map(|c| c[..k].to_vec()).collect();
            let m = learn_causal_model(&cols, &stream.names, &sim.model.tiers(), &disc);
            structural_hamming_distance(&m.admg.to_mixed(), &truth) as f64
        })
        .collect();
    print!(
        "{}",
        render_series(
            &format!("SHD to ground truth at sample sizes {sizes:?}"),
            &[("SHD", shd.clone())]
        )
    );
    println!(
        "decreased: {} ({} -> {})\n",
        shd.last().unwrap() < shd.first().unwrap(),
        shd[0],
        shd[shd.len() - 1]
    );

    // (b–d) One multi-objective debugging run.
    let cat = catalog(&sim, scale);
    let fault = cat
        .multi_objective(&[0, 1])
        .into_iter()
        .next()
        .or_else(|| cat.faults.iter().find(|f| f.is_multi_objective()))
        .or_else(|| cat.faults.first())
        .expect("a fault exists");
    println!(
        "Debugging a fault violating objectives {:?} (latency {:.1}, energy {:.1})",
        fault.objectives, fault.true_objectives[0], fault.true_objectives[1]
    );
    let opts = UnicornOptions {
        initial_samples: match scale {
            Scale::Quick => 40,
            Scale::Full => 100,
        },
        budget: match scale {
            Scale::Quick => 10,
            Scale::Full => 60,
        },
        relearn_every: 2,
        ..Default::default()
    };
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let start = std::time::Instant::now();
    let out = debug_fault_with_state(&sim, fault, &cat, &opts, &mut state, start);

    section("Fig 11b/11c: objective trajectories during debugging");
    let lat: Vec<f64> = std::iter::once(fault.true_objectives[0])
        .chain(out.trajectory.iter().map(|it| it.objectives[0]))
        .collect();
    let en: Vec<f64> = std::iter::once(fault.true_objectives[1])
        .chain(out.trajectory.iter().map(|it| it.objectives[1]))
        .collect();
    print!(
        "{}",
        render_series(
            "objectives per iteration",
            &[("Latency", lat), ("Energy", en)]
        )
    );

    section("Fig 11d: options selected per iteration");
    for it in &out.trajectory {
        println!("iter {:>2}: options {:?}", it.iteration, it.changed_options);
    }
    println!(
        "\nfinal fix changes options {:?} (red nodes in the paper's figure); \
         fixed = {}",
        out.diagnosed_options, out.fixed
    );
}
