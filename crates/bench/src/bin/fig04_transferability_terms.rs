//! Fig 4 — transferability of performance models across environments
//! (Deepstream, Xavier → TX2): performance-influence models lose most of
//! their terms and blow up their error, causal performance models stay
//! stable.

use unicorn_bench::{causal_transfer, f1, f2, regression_transfer, section, Scale, Table};
use unicorn_discovery::DiscoveryOptions;
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Quick => 250,
        Scale::Full => 1200,
    };
    let src_sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Xavier),
        0xF164,
    );
    let dst_sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Tx2),
        0xF164,
    );
    let src = generate(&src_sim, n, 0xA1);
    let dst = generate(&dst_sim, n, 0xA2);

    section("Fig 4a: performance-influence model, Xavier -> TX2");
    let (reg, _, _) = regression_transfer(&src, &dst, 0, 20);
    let mut t = Table::new(&["Statistic", "Regression", "Causal"]);

    section("Fig 4b: causal performance model, Xavier -> TX2");
    let causal = causal_transfer(
        &src,
        &dst,
        0,
        &src_sim.model.tiers(),
        &DiscoveryOptions {
            max_depth: 2,
            pds_depth: 0,
            ..Default::default()
        },
    );

    t.row(vec![
        "Total terms (source)".into(),
        reg.total_terms_source.to_string(),
        causal.total_terms_source.to_string(),
    ]);
    t.row(vec![
        "Total terms (target)".into(),
        reg.total_terms_target.to_string(),
        causal.total_terms_target.to_string(),
    ]);
    t.row(vec![
        "Common terms (src -> tgt)".into(),
        reg.common_terms.to_string(),
        causal.common_terms.to_string(),
    ]);
    t.row(vec![
        "Common / total source (%)".into(),
        f1(100.0 * reg.common_terms as f64 / reg.total_terms_source.max(1) as f64),
        f1(100.0 * causal.common_terms as f64 / causal.total_terms_source.max(1) as f64),
    ]);
    t.row(vec![
        "MAPE source (%)".into(),
        f1(reg.error_source),
        f1(causal.error_source),
    ]);
    t.row(vec![
        "MAPE target (%)".into(),
        f1(reg.error_target),
        f1(causal.error_target),
    ]);
    t.row(vec![
        "MAPE source -> target (%)".into(),
        f1(reg.error_transferred),
        f1(causal.error_transferred),
    ]);
    t.row(vec![
        "Coefficient rank corr.".into(),
        f2(reg.rank_correlation),
        f2(causal.rank_correlation),
    ]);
    t.print();
    println!(
        "\nPaper's shape: regression rank corr 0.07, causal 0.49; causal \
         models keep more common terms and smaller transferred error."
    );
}
