//! Fig 1 — the motivating confounding scenario: observationally, cache
//! misses and throughput correlate positively; stratified by the cache
//! policy the correlation flips negative; causal discovery recovers the
//! policy as a common cause.

use unicorn_bench::{section, Table};
use unicorn_discovery::{learn_causal_model, DiscoveryOptions};
use unicorn_graph::{TierConstraints, VarKind};
use unicorn_stats::pearson;
use unicorn_systems::CacheScenario;

fn main() {
    section("Fig 1: Cache-policy confounding");
    let s = CacheScenario::generate(3000, 0xF161);

    let mut t = Table::new(&["View", "corr(Cache Misses, Throughput)"]);
    t.row(vec![
        "(a) pooled (misleading)".into(),
        format!("{:+.3}", pearson(&s.misses, &s.throughput)),
    ]);
    for (p, name) in ["LRU", "FIFO", "LIFO", "MRU"].iter().enumerate() {
        let idx: Vec<usize> = (0..s.policy.len())
            .filter(|&i| s.policy[i] == p as f64)
            .collect();
        let m: Vec<f64> = idx.iter().map(|&i| s.misses[i]).collect();
        let th: Vec<f64> = idx.iter().map(|&i| s.throughput[i]).collect();
        t.row(vec![
            format!("(b) within {name}"),
            format!("{:+.3}", pearson(&m, &th)),
        ]);
    }
    t.print();

    // (c) The causal model: Cache Policy must come out as a common cause.
    let tiers = TierConstraints::new(vec![
        VarKind::ConfigOption, // Cache Policy
        VarKind::SystemEvent,  // Cache Misses
        VarKind::Objective,    // Throughput
    ]);
    let model = learn_causal_model(
        &s.columns(),
        &CacheScenario::names(),
        &tiers,
        &DiscoveryOptions::default(),
    );
    println!("\n(c) learned causal model edges:");
    for &(f, to) in model.admg.directed_edges() {
        println!("    {} -> {}", model.admg.name(f), model.admg.name(to));
    }
    let policy_causes_both = model.admg.directed_edges().contains(&(0, 1))
        && (model.admg.directed_edges().contains(&(0, 2))
            || model.admg.descendants(0).contains(&2));
    println!(
        "\nCache Policy recovered as common cause: {}",
        if policy_causes_both { "YES" } else { "NO" }
    );
}
