//! Table 15 (appendix) — the transfer matrix: causal models learned on one
//! platform debugging faults on another. TX1 → TX2 (latency),
//! TX2 → Xavier (energy), Xavier → TX1 (heat), each with Unicorn
//! Reuse / +25 / Rerun.

use unicorn_bench::{catalog, f1, section, simulator, Scale, Table};
use unicorn_core::{
    learn_source_state, mean_scores, score_debugging, transfer_debug, TransferMode, UnicornOptions,
};
use unicorn_systems::{Hardware, SubjectSystem};

fn scenario(title: &str, source_hw: Hardware, target_hw: Hardware, objective: usize, scale: Scale) {
    section(title);
    let systems = [
        SubjectSystem::Xception,
        SubjectSystem::Bert,
        SubjectSystem::Deepspeech,
        SubjectSystem::X264,
    ];
    let mut t = Table::new(&["System", "Mode", "Accuracy", "Recall", "Precision", "Gain"]);
    for sys in systems {
        let source = simulator(sys, source_hw);
        let target = simulator(sys, target_hw);
        let cat = catalog(&target, scale);
        let faults: Vec<_> = cat
            .single_objective(objective)
            .into_iter()
            .take(scale.faults_per_cell())
            .cloned()
            .collect();
        if faults.is_empty() {
            t.row(vec![
                sys.name().into(),
                "(no faults)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let opts = UnicornOptions {
            initial_samples: scale.n_samples(),
            budget: scale.n_probes(),
            ..Default::default()
        };
        let src_state = learn_source_state(&source, &opts);
        for mode in [
            TransferMode::Reuse,
            TransferMode::Update(25),
            TransferMode::Rerun,
        ] {
            let scores: Vec<_> = faults
                .iter()
                .map(|f| {
                    let out = transfer_debug(&src_state, &target, f, &cat, &opts, mode);
                    let fixed_true = target.true_objectives(&out.best_config);
                    score_debugging(
                        f,
                        &cat,
                        &out.diagnosed_options,
                        &fixed_true,
                        out.wall_time_s,
                        out.n_measurements,
                    )
                })
                .collect();
            let m = mean_scores(&scores);
            t.row(vec![
                sys.name().into(),
                mode.label(),
                f1(m.accuracy),
                f1(m.recall),
                f1(m.precision),
                f1(m.gains.first().copied().unwrap_or(0.0)),
            ]);
        }
    }
    t.print();
}

fn main() {
    let scale = Scale::from_env();
    scenario(
        "Table 15: TX1 (source) -> TX2 (target), latency faults",
        Hardware::Tx1,
        Hardware::Tx2,
        0,
        scale,
    );
    scenario(
        "Table 15: TX2 (source) -> Xavier (target), energy faults",
        Hardware::Tx2,
        Hardware::Xavier,
        1,
        scale,
    );
    scenario(
        "Table 15: Xavier (source) -> TX1 (target), heat faults",
        Hardware::Xavier,
        Hardware::Tx1,
        2,
        scale,
    );
    println!(
        "\nExpected shape (paper): Reuse lands close to Rerun, +25 closes \
         most of the remaining gap — causal performance models transfer."
    );
}
