//! Fig 5 — coefficient drift of the common performance-influence-model
//! terms between the source (Xavier) and target (TX2) environments.

use unicorn_bench::{regression_transfer, section, Scale, Table};
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Quick => 250,
        Scale::Full => 1200,
    };
    let src_sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Xavier),
        0xF165,
    );
    let dst_sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Tx2),
        0xF165,
    );
    let src = generate(&src_sim, n, 0xB1);
    let dst = generate(&dst_sim, n, 0xB2);

    let (_, src_model, dst_model) = regression_transfer(&src, &dst, 0, 20);

    section("Fig 5: coefficient differences of common terms (Xavier -> TX2)");
    let mut diffs = src_model.coefficient_diffs(&dst_model);
    diffs.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("NaN diff"));
    let mut t = Table::new(&["Predictor (options / interactions)", "Coefficient diff"]);
    for (term, d) in &diffs {
        t.row(vec![src_model.render_term(term), format!("{d:+.3}")]);
    }
    t.print();
    if diffs.is_empty() {
        println!("(no common terms survived the environment change)");
    } else {
        let drifted = diffs.iter().filter(|(_, d)| d.abs() > 1e-3).count();
        println!(
            "\n{drifted}/{} common terms drifted — regression coefficients \
             are environment-specific (the paper's Fig 5 point).",
            diffs.len()
        );
    }
}
