//! Fig 14 — sample efficiency: mean repair gain as a function of the
//! sampling budget for the five debugging methods, on latency faults
//! (TX2) and energy faults (Xavier).

use unicorn_bench::{catalog, render_series, section, simulator, DebugMethod, Scale};
use unicorn_systems::{Hardware, SubjectSystem};

fn sweep(sys: SubjectSystem, hw: Hardware, objective: usize, sizes: &[usize], scale: Scale) {
    let sim = simulator(sys, hw);
    let cat = catalog(&sim, scale);
    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
    for method in DebugMethod::table2a() {
        let gains: Vec<f64> = sizes
            .iter()
            .map(|&n| {
                // Scale the method's observational budget to `n` while
                // keeping probes fixed.

                run_cell_sized(method, &sim, &cat, objective, n, scale)
            })
            .collect();
        series.push((method.name(), gains));
    }
    print!(
        "{}",
        render_series(
            &format!(
                "{} on {}: gain (%) vs sample size {:?}",
                sys.name(),
                hw.name(),
                sizes
            ),
            &series
        )
    );
    println!();
}

/// `run_cell` with an overridden sample budget (via env-independent
/// plumbing: we temporarily construct a custom-scale runner).
fn run_cell_sized(
    method: DebugMethod,
    sim: &unicorn_systems::Simulator,
    cat: &unicorn_systems::FaultCatalog,
    objective: usize,
    n_samples: usize,
    scale: Scale,
) -> f64 {
    use unicorn_baselines::{BugDoc, Cbi, DebugBudget, Debugger, DeltaDebugging, Encore};
    use unicorn_core::{debug_fault, UnicornOptions};

    let faults = cat.single_objective(objective);
    let budget = DebugBudget {
        n_samples,
        n_probes: scale.n_probes(),
    };
    let mut gains = Vec::new();
    for (i, fault) in faults.iter().take(scale.faults_per_cell()).enumerate() {
        let seed = 0xF14 ^ (i as u64) << 4 ^ n_samples as u64;
        let best = match method {
            DebugMethod::Unicorn => {
                let out = debug_fault(
                    sim,
                    fault,
                    cat,
                    &UnicornOptions {
                        initial_samples: n_samples,
                        budget: scale.n_probes(),
                        seed,
                        ..Default::default()
                    },
                );
                out.best_config
            }
            DebugMethod::Cbi => Cbi::new().debug(sim, fault, cat, &budget, seed).best_config,
            DebugMethod::Dd => {
                DeltaDebugging
                    .debug(sim, fault, cat, &budget, seed)
                    .best_config
            }
            DebugMethod::Encore => {
                Encore::default()
                    .debug(sim, fault, cat, &budget, seed)
                    .best_config
            }
            DebugMethod::BugDoc => {
                BugDoc::default()
                    .debug(sim, fault, cat, &budget, seed)
                    .best_config
            }
            DebugMethod::Smac => unreachable!("not in the Fig 14 roster"),
        };
        let o = fault.objectives[0];
        let after = sim.true_objectives(&best)[o];
        gains.push(unicorn_core::gain_percent(fault.true_objectives[o], after));
    }
    gains.iter().sum::<f64>() / gains.len().max(1) as f64
}

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![25, 50, 100],
        Scale::Full => vec![25, 50, 100, 200, 400],
    };
    let systems = [
        SubjectSystem::Xception,
        SubjectSystem::Bert,
        SubjectSystem::Deepspeech,
        SubjectSystem::X264,
    ];

    section("Fig 14a: latency faults on TX2");
    for sys in systems {
        sweep(sys, Hardware::Tx2, 0, &sizes, scale);
    }

    section("Fig 14b: energy faults on Xavier");
    for sys in systems {
        sweep(sys, Hardware::Xavier, 1, &sizes, scale);
    }
}
