//! Figs 21/22 (appendix) — model stability vs training-set size: how the
//! number of terms, common terms, and source/transferred error of
//! regression (Fig 21) and causal (Fig 22) models change as the source
//! sample count grows, Deepstream Xavier → TX2.

use unicorn_bench::{causal_transfer, f1, regression_transfer, section, Scale, Table};
use unicorn_discovery::DiscoveryOptions;
use unicorn_systems::{generate, Dataset, Environment, Hardware, Simulator, SubjectSystem};

fn subset(ds: &Dataset, n: usize) -> Dataset {
    let mut out = ds.clone();
    for col in &mut out.columns {
        col.truncate(n);
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    let (sizes, target_n): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![50, 100, 300], 400),
        Scale::Full => (vec![50, 100, 500, 1000, 1500], 2000),
    };
    let src_sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Xavier),
        0xF21,
    );
    let dst_sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Tx2),
        0xF21,
    );
    let src_all = generate(&src_sim, *sizes.last().expect("non-empty"), 0x21A);
    let dst = generate(&dst_sim, target_n, 0x21B);
    let disc = DiscoveryOptions {
        max_depth: 2,
        pds_depth: 0,
        ..Default::default()
    };

    section("Fig 21: performance-influence models vs sample size");
    let mut t = Table::new(&[
        "Samples",
        "Total terms (src)",
        "Common terms",
        "Error src (%)",
        "Error src->tgt (%)",
    ]);
    for &n in &sizes {
        let src = subset(&src_all, n);
        let (stats, _, _) = regression_transfer(&src, &dst, 0, 20);
        t.row(vec![
            n.to_string(),
            stats.total_terms_source.to_string(),
            stats.common_terms.to_string(),
            f1(stats.error_source),
            f1(stats.error_transferred),
        ]);
    }
    t.print();

    section("Fig 22: causal performance models vs sample size");
    let mut t2 = Table::new(&[
        "Samples",
        "Total terms (src)",
        "Common terms",
        "Error src (%)",
        "Error src->tgt (%)",
    ]);
    for &n in &sizes {
        let src = subset(&src_all, n);
        let stats = causal_transfer(&src, &dst, 0, &src_sim.model.tiers(), &disc);
        t2.row(vec![
            n.to_string(),
            stats.total_terms_source.to_string(),
            stats.common_terms.to_string(),
            f1(stats.error_source),
            f1(stats.error_transferred),
        ]);
    }
    t2.print();
    println!(
        "\nExpected shape (paper): regression term sets churn with sample \
         size and transferred error stays high; causal term sets stabilize \
         and source/transferred errors stay close."
    );
}
