//! Fig 6 — a partial causal performance model for Deepstream: the
//! decoder/muxer options, the cache/branch events between them, and the
//! two objectives, rendered as an edge list and DOT.

use unicorn_bench::{section, Scale};
use unicorn_discovery::{learn_causal_model, DiscoveryOptions};
use unicorn_graph::dot::admg_to_dot;
use unicorn_graph::{TierConstraints, VarKind};
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

/// The focal variables of the paper's Fig 6, plus the two mediating
/// events (`Instructions`, `Cache References`) without which the
/// projection would contain genuine latent confounders and FCI would
/// (correctly) report bidirected edges instead of the figure's arrows.
const FOCUS: [&str; 11] = [
    "Bitrate",
    "Buffer Size",
    "Batch Size",
    "Enable Padding",
    "Instructions",
    "Cache References",
    "Branch Misses",
    "Cache Misses",
    "Cycles",
    "Latency",
    "Energy",
];

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Quick => 400,
        Scale::Full => 1500,
    };
    section("Fig 6: partial causal performance model for Deepstream");
    let sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Xavier),
        0xF166,
    );
    let ds = generate(&sim, n, 0xC6);

    // Project the dataset onto the focal variables.
    let tiers_all = sim.model.tiers();
    let mut columns = Vec::new();
    let mut names = Vec::new();
    let mut kinds = Vec::new();
    for f in FOCUS {
        let i = ds
            .names
            .iter()
            .position(|nm| nm == f)
            .unwrap_or_else(|| panic!("unknown focal variable {f}"));
        columns.push(ds.columns[i].clone());
        names.push(ds.names[i].clone());
        kinds.push(tiers_all.kind(i));
    }
    let tiers = TierConstraints::new(kinds.clone());
    let model = learn_causal_model(&columns, &names, &tiers, &DiscoveryOptions::default());

    println!("Learned edges (options -> events -> objectives):");
    for &(f, t) in model.admg.directed_edges() {
        println!("  {} -> {}", names[f], names[t]);
    }
    for &(a, b) in model.admg.bidirected_edges() {
        println!("  {} <-> {}", names[a], names[b]);
    }
    println!(
        "\naverage node degree: {:.2} (sparse, as in the paper)",
        model.admg.average_degree()
    );

    section("DOT rendering (pipe into `dot -Tpdf`)");
    print!("{}", admg_to_dot(&model.admg, Some(&tiers)));

    // Sanity line mirroring the figure's headline path.
    let has_pipeline = model
        .admg
        .directed_edges()
        .iter()
        .any(|&(f, t)| kinds[f] == VarKind::ConfigOption && kinds[t] == VarKind::SystemEvent)
        && model
            .admg
            .directed_edges()
            .iter()
            .any(|&(f, t)| kinds[f] == VarKind::SystemEvent && kinds[t] == VarKind::Objective);
    println!(
        "\noption -> event -> objective pipeline recovered: {}",
        if has_pipeline { "YES" } else { "NO" }
    );
}
