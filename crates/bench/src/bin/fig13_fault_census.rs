//! Fig 13 — the fault census: single-objective (latency, energy) and
//! multi-objective non-functional faults discovered per subject system
//! (the paper found 451 + 43 across its ground-truth measurements).

use unicorn_bench::{catalog, section, simulator, Scale, Table};
use unicorn_systems::{Hardware, SubjectSystem};

fn main() {
    let scale = Scale::from_env();
    section("Fig 13: distribution of non-functional faults");
    let mut t = Table::new(&["System", "Latency", "Energy", "Latency+Energy", "Total"]);
    let mut totals = (0usize, 0usize, 0usize);
    for sys in SubjectSystem::all() {
        let sim = simulator(sys, Hardware::Tx2);
        let cat = catalog(&sim, scale);
        let lat = cat.single_objective(0).len();
        let en = cat.single_objective(1).len();
        let multi = cat.multi_objective(&[0, 1]).len();
        totals.0 += lat;
        totals.1 += en;
        totals.2 += multi;
        t.row(vec![
            sys.name().to_string(),
            lat.to_string(),
            en.to_string(),
            multi.to_string(),
            (lat + en + multi).to_string(),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        totals.0.to_string(),
        totals.1.to_string(),
        totals.2.to_string(),
        (totals.0 + totals.1 + totals.2).to_string(),
    ]);
    t.print();
    println!(
        "\nPaper reference (full measurement campaign): 451 single- and 43 \
         multi-objective faults; faults sit beyond the 99th percentile by \
         construction, so counts scale with the sample size \
         (UNICORN_SCALE=full for larger sweeps)."
    );
}
