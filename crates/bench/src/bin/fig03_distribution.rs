//! Fig 3 — the performance distribution of Deepstream on Xavier: a
//! non-convex, multi-modal latency/energy cloud with misconfigurations in
//! the tail, plus one concrete tail misconfiguration (Fig 3b).

use unicorn_bench::{section, Scale, Table};
use unicorn_stats::quantile;
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn histogram(values: &[f64], bins: usize) -> String {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - lo) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let max = *counts.iter().max().unwrap_or(&1);
    counts
        .iter()
        .enumerate()
        .map(|(b, &c)| {
            let lo_b = lo + span * b as f64 / bins as f64;
            let bar = "#".repeat(1 + c * 40 / max.max(1));
            format!("{lo_b:9.1} | {bar} {c}\n")
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    // The paper measured 2461 Deepstream configurations.
    let n = match scale {
        Scale::Quick => 600,
        Scale::Full => 2461,
    };
    section("Fig 3a: Deepstream performance distribution on Xavier");
    let sim = Simulator::new(
        SubjectSystem::Deepstream.build(),
        Environment::on(Hardware::Xavier),
        0xF163,
    );
    let ds = generate(&sim, n, 0xD15);
    let lat = ds.objective_column(0).to_vec();
    let en = ds.objective_column(1).to_vec();
    println!("Latency (ms/frame), n = {n}:");
    print!("{}", histogram(&lat, 14));
    println!("\nEnergy (J):");
    print!("{}", histogram(&en, 14));

    let lat99 = quantile(&lat, 0.99);
    let en99 = quantile(&en, 0.99);
    println!("\n99th percentiles: latency {lat99:.1} ms, energy {en99:.1} J");

    // Fig 3b: the worst multi-objective configuration in the sample.
    let worst = (0..ds.n_rows())
        .max_by(|&a, &b| {
            let sa = lat[a] / lat99 + en[a] / en99;
            let sb = lat[b] / lat99 + en[b] / en99;
            sa.partial_cmp(&sb).expect("NaN score")
        })
        .expect("non-empty");
    section("Fig 3b: a multi-objective misconfiguration");
    let mut t = Table::new(&["Config. Option", "Value"]);
    let cfg = ds.config(worst);
    for (i, o) in sim.model.space.options().iter().enumerate().take(23) {
        t.row(vec![o.name.clone(), format!("{}", cfg.values[i])]);
    }
    t.row(vec!["Latency (ms)".into(), format!("{:.1}", lat[worst])]);
    t.row(vec!["Energy (J)".into(), format!("{:.1}", en[worst])]);
    t.print();
    println!(
        "\nTail membership: latency > p99 = {}, energy > p99 = {}",
        lat[worst] > lat99,
        en[worst] > en99
    );
}
