//! Fig 15 — optimization: (a) single-objective latency and (b) energy
//! (Unicorn vs SMAC), (c) hypervolume error over iterations and (d) Pareto
//! fronts (Unicorn vs PESMO), all for Xception on TX2.

use unicorn_baselines::{pesmo_optimize, smac_optimize, PesmoOptions, SmacOptions};
use unicorn_bench::{render_series, section, simulator, Scale};
use unicorn_core::{optimize_multi, optimize_single, UnicornOptions};
use unicorn_stats::pareto::pareto_front;
use unicorn_systems::{generate, Hardware, SubjectSystem};

fn downsample(xs: &[f64], k: usize) -> Vec<f64> {
    if xs.len() <= k {
        return xs.to_vec();
    }
    (0..k).map(|i| xs[i * (xs.len() - 1) / (k - 1)]).collect()
}

fn main() {
    let scale = Scale::from_env();
    let (n_init, budget) = match scale {
        Scale::Quick => (25, 30),
        Scale::Full => (25, 200),
    };
    let sim = simulator(SubjectSystem::Xception, Hardware::Tx2);
    let uni_opts = UnicornOptions {
        initial_samples: n_init,
        budget,
        relearn_every: 8,
        ..Default::default()
    };
    let smac_opts = SmacOptions {
        n_init,
        budget: n_init + budget,
        ..Default::default()
    };

    for (label, obj) in [("Fig 15a: latency", 0usize), ("Fig 15b: energy", 1usize)] {
        section(label);
        let uni = optimize_single(&sim, obj, &uni_opts);
        let smac = smac_optimize(&sim, obj, &smac_opts);
        print!(
            "{}",
            render_series(
                "best-so-far (min) vs iteration",
                &[
                    ("Unicorn", downsample(&uni.history, 12)),
                    ("SMAC", downsample(&smac.history, 12)),
                ],
            )
        );
        println!(
            "final: Unicorn {:.2} vs SMAC {:.2} ({})\n",
            uni.best_value,
            smac.best_value,
            if uni.best_value <= smac.best_value {
                "Unicorn wins/ties"
            } else {
                "SMAC wins"
            }
        );
    }

    section("Fig 15c: multi-objective hypervolume error (latency, energy)");
    // Common reference front from a broad random sweep.
    let sweep = generate(&sim, 400, 0xF15C);
    let pts: Vec<Vec<f64>> = (0..sweep.n_rows())
        .map(|r| vec![sweep.objective_column(0)[r], sweep.objective_column(1)[r]])
        .collect();
    let reference = pareto_front(&pts);
    let ref_point = [
        pts.iter().map(|p| p[0]).fold(0.0, f64::max) * 1.1,
        pts.iter().map(|p| p[1]).fold(0.0, f64::max) * 1.1,
    ];

    let uni_mo = optimize_multi(&sim, &[0, 1], &reference, &ref_point, &uni_opts);
    let pesmo = pesmo_optimize(
        &sim,
        &[0, 1],
        &PesmoOptions {
            n_init,
            budget: n_init + budget,
            ..Default::default()
        },
    );
    let pesmo_hist = unicorn_baselines::hv_error_history(&pesmo, &reference, &ref_point);
    print!(
        "{}",
        render_series(
            "hypervolume error vs iteration",
            &[
                ("Unicorn", downsample(&uni_mo.hv_error_history, 12)),
                ("PESMO", downsample(&pesmo_hist, 12)),
            ],
        )
    );
    println!(
        "final hypervolume error: Unicorn {:.3} vs PESMO {:.3}\n",
        uni_mo.hv_error_history.last().unwrap(),
        pesmo_hist.last().unwrap()
    );

    section("Fig 15d: Pareto fronts (latency s, energy J)");
    let mut uni_front = uni_mo.front.clone();
    uni_front.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("NaN"));
    let mut pesmo_front = pesmo.front.clone();
    pesmo_front.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("NaN"));
    println!("Unicorn front ({} pts):", uni_front.len());
    for p in &uni_front {
        println!("  ({:.2}, {:.2})", p[0], p[1]);
    }
    println!("PESMO front ({} pts):", pesmo_front.len());
    for p in &pesmo_front {
        println!("  ({:.2}, {:.2})", p[0], p[1]);
    }
}
