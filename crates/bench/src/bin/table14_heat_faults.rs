//! Table 14 (appendix) — the remaining fault families: (a) heat faults on
//! TX1; (b) latency+heat on TX2; (c) energy+heat on Xavier; (d) the
//! three-objective faults on TX2.

use unicorn_bench::{catalog, f1, section, simulator, DebugMethod, Scale, Table};
use unicorn_core::mean_scores;
use unicorn_systems::{FaultCatalog, Hardware, Simulator, SubjectSystem};

const HEAT: usize = 2;

/// Runs one multi-objective block over the systems with matching faults.
fn block(title: &str, hw: Hardware, objectives: &[usize], systems: &[SubjectSystem], scale: Scale) {
    section(title);
    let single = objectives.len() == 1;
    let methods = if single {
        DebugMethod::table2a().to_vec()
    } else {
        DebugMethod::table2b().to_vec()
    };
    let mut header = vec!["System", "Method", "Accuracy", "Precision", "Recall"];
    for &o in objectives {
        header.push(match o {
            0 => "Gain (Lat)",
            1 => "Gain (En)",
            _ => "Gain (Heat)",
        });
    }
    header.push("Time (s)");
    let mut t = Table::new(&header);
    for &sys in systems {
        let sim = simulator(sys, hw);
        let cat = catalog(&sim, scale);
        let faults = select_faults(&cat, objectives);
        if faults.is_empty() {
            let mut row = vec![sys.name().to_string(), "(no faults)".into()];
            row.extend(vec!["-".to_string(); header.len() - 2]);
            t.row(row);
            continue;
        }
        for method in &methods {
            let scores: Vec<_> = faults
                .iter()
                .take(scale.faults_per_cell())
                .enumerate()
                .map(|(i, f)| run_one(*method, &sim, f, &cat, scale, 0x14 ^ (i as u64)))
                .collect();
            let m = mean_scores(&scores);
            let mut row = vec![
                sys.name().to_string(),
                method.name().to_string(),
                f1(m.accuracy),
                f1(m.precision),
                f1(m.recall),
            ];
            for k in 0..objectives.len() {
                row.push(f1(m.gains.get(k).copied().unwrap_or(0.0)));
            }
            row.push(f1(m.time_s));
            t.row(row);
        }
    }
    t.print();
}

fn select_faults<'a>(
    cat: &'a FaultCatalog,
    objectives: &[usize],
) -> Vec<&'a unicorn_systems::Fault> {
    if objectives.len() == 1 {
        cat.single_objective(objectives[0])
    } else {
        cat.faults
            .iter()
            .filter(|f| objectives.iter().all(|o| f.objectives.contains(o)))
            .collect()
    }
}

fn run_one(
    method: DebugMethod,
    sim: &Simulator,
    fault: &unicorn_systems::Fault,
    cat: &FaultCatalog,
    scale: Scale,
    seed: u64,
) -> unicorn_core::DebugScores {
    unicorn_bench::run_method(method, sim, fault, cat, scale, seed)
}

fn main() {
    let scale = Scale::from_env();
    let dl = [
        SubjectSystem::Xception,
        SubjectSystem::Bert,
        SubjectSystem::Deepspeech,
        SubjectSystem::X264,
    ];
    block(
        "Table 14a: heat faults on TX1",
        Hardware::Tx1,
        &[HEAT],
        &dl,
        scale,
    );
    block(
        "Table 14b: latency + heat faults on TX2",
        Hardware::Tx2,
        &[0, HEAT],
        &dl,
        scale,
    );
    block(
        "Table 14c: energy + heat faults on Xavier",
        Hardware::Xavier,
        &[1, HEAT],
        &dl,
        scale,
    );
    block(
        "Table 14d: latency + energy + heat faults on TX2",
        Hardware::Tx2,
        &[0, 1, HEAT],
        &[
            SubjectSystem::Xception,
            SubjectSystem::X264,
            SubjectSystem::Sqlite,
        ],
        scale,
    );
    println!(
        "\nExpected shape (paper): heat gains are small in absolute terms \
         (a few %), and Unicorn still leads while three-objective repairs \
         are the hardest for every method."
    );
}
