//! Fig 16 — transfer debugging: resolving Xception energy faults on TX2
//! with models learned on Xavier. Unicorn and BugDoc each in Reuse / +25 /
//! Rerun regimes.

use std::time::Instant;

use unicorn_baselines::{common::sample_labeled, BugDoc, DebugBudget};
use unicorn_bench::{catalog, f1, section, simulator, Scale, Table};
use unicorn_core::{
    learn_source_state, score_debugging, transfer_debug, TransferMode, UnicornOptions,
};
use unicorn_systems::{Hardware, SubjectSystem};

fn main() {
    let scale = Scale::from_env();
    let source = simulator(SubjectSystem::Xception, Hardware::Xavier);
    let target = simulator(SubjectSystem::Xception, Hardware::Tx2);
    let cat = catalog(&target, scale);
    let faults: Vec<_> = cat
        .single_objective(1) // energy faults
        .into_iter()
        .take(scale.faults_per_cell())
        .cloned()
        .collect();
    assert!(!faults.is_empty(), "no energy faults in the catalog");

    let opts = UnicornOptions {
        initial_samples: scale.n_samples(),
        budget: scale.n_probes(),
        ..Default::default()
    };
    let src_state = learn_source_state(&source, &opts);
    let budget = DebugBudget {
        n_samples: scale.n_samples(),
        n_probes: scale.n_probes(),
    };

    section("Fig 16: Xavier -> TX2 energy-fault transfer");
    let mut t = Table::new(&[
        "Method",
        "Accuracy",
        "Precision",
        "Recall",
        "Gain",
        "Time (s)",
    ]);

    for mode in [
        TransferMode::Reuse,
        TransferMode::Update(25),
        TransferMode::Rerun,
    ] {
        let mut scores = Vec::new();
        for f in &faults {
            let out = transfer_debug(&src_state, &target, f, &cat, &opts, mode);
            let fixed_true = target.true_objectives(&out.best_config);
            scores.push(score_debugging(
                f,
                &cat,
                &out.diagnosed_options,
                &fixed_true,
                out.wall_time_s,
                out.n_measurements,
            ));
        }
        let m = unicorn_core::mean_scores(&scores);
        t.row(vec![
            format!("Unicorn ({})", mode.label()),
            f1(m.accuracy),
            f1(m.precision),
            f1(m.recall),
            f1(m.gains.first().copied().unwrap_or(0.0)),
            f1(m.time_s),
        ]);
    }

    // BugDoc in the three regimes: samples drawn from source / mixed /
    // target environments; probes always on the target.
    for (label, src_n, tgt_n) in [
        ("BugDoc (Reuse)", scale.n_samples(), 0usize),
        ("BugDoc (+25)", scale.n_samples(), 25),
        ("BugDoc (Rerun)", 0, scale.n_samples()),
    ] {
        let mut scores = Vec::new();
        for (i, f) in faults.iter().enumerate() {
            let start = Instant::now();
            let seed = 0xF16 ^ (i as u64);
            let mut samples = if src_n > 0 {
                sample_labeled(&source, f, &cat, src_n, seed)
            } else {
                sample_labeled(&target, f, &cat, tgt_n, seed)
            };
            if src_n > 0 && tgt_n > 0 {
                let extra = sample_labeled(&target, f, &cat, tgt_n, seed ^ 0x25);
                samples.configs.extend(extra.configs);
                samples.failing.extend(extra.failing);
                samples.objectives.extend(extra.objectives);
            }
            let out = BugDoc::default().debug_with_samples(
                &target, f, &cat, &samples, &budget, seed, start,
                tgt_n, // only target measurements count as new cost
            );
            let fixed_true = target.true_objectives(&out.best_config);
            scores.push(score_debugging(
                f,
                &cat,
                &out.diagnosed_options,
                &fixed_true,
                out.wall_time_s,
                out.n_measurements,
            ));
        }
        let m = unicorn_core::mean_scores(&scores);
        t.row(vec![
            label.to_string(),
            f1(m.accuracy),
            f1(m.precision),
            f1(m.recall),
            f1(m.gains.first().copied().unwrap_or(0.0)),
            f1(m.time_s),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): Unicorn (+25) ≈ Unicorn (Rerun) and \
         beats BugDoc (Rerun); reused causal models stay useful across the \
         hardware change."
    );
}
