//! Fig 17 — workload transfer for latency optimization on TX2: the
//! near-optimum found on the 5k-image Xception workload is reused on
//! 10k/20k/50k-image workloads, with 10%/20% extra budget for updating,
//! for both Unicorn and SMAC.

use unicorn_baselines::{smac_optimize, SmacOptions};
use unicorn_bench::{f1, section, Scale, Table};
use unicorn_core::{optimize_single, UnicornOptions};
use unicorn_systems::{Config, Environment, Hardware, Simulator, SubjectSystem, Workload};

fn sim_for(scale_factor: f64, name: &str) -> Simulator {
    Simulator::new(
        SubjectSystem::Xception.build(),
        Environment::new(Hardware::Tx2, Workload::scaled(name, scale_factor)),
        0xF17,
    )
}

/// Gain of a configuration over the default, on the target workload.
fn gain(sim: &Simulator, cfg: &Config) -> f64 {
    let default = sim.true_objectives(&sim.model.space.default_config())[0];
    let got = sim.true_objectives(cfg)[0];
    unicorn_core::gain_percent(default, got)
}

fn main() {
    let scale = Scale::from_env();
    let base_budget = match scale {
        Scale::Quick => 30usize,
        Scale::Full => 200,
    };
    let n_init = 20;

    // Source run on the 5k reference workload.
    let source = sim_for(1.0, "5k images");
    let uni_src = optimize_single(
        &source,
        0,
        &UnicornOptions {
            initial_samples: n_init,
            budget: base_budget,
            relearn_every: 8,
            ..Default::default()
        },
    );
    let smac_src = smac_optimize(
        &source,
        0,
        &SmacOptions {
            n_init,
            budget: n_init + base_budget,
            ..Default::default()
        },
    );

    section("Fig 17: latency gain (%) on larger workloads");
    let mut t = Table::new(&[
        "Workload",
        "Unicorn Reuse",
        "Unicorn +10%",
        "Unicorn +20%",
        "SMAC Reuse",
        "SMAC +10%",
        "SMAC +20%",
    ]);
    for (name, wl) in [("10k", 2.0), ("20k", 4.0), ("50k", 10.0)] {
        let target = sim_for(wl, name);
        // Reuse: evaluate the source optimum on the new workload.
        let uni_reuse = gain(&target, &uni_src.best_config);
        let smac_reuse = gain(&target, &smac_src.best_config);
        // +K%: rerun on the target with a fraction of the budget; the
        // method keeps whichever of (reused optimum, fresh optimum) is
        // better — the paper's "update the model with K% budget".
        let mut cells = vec![name.to_string(), f1(uni_reuse)];
        for frac in [0.10, 0.20] {
            let budget = ((base_budget as f64) * frac).ceil() as usize;
            let out = optimize_single(
                &target,
                0,
                &UnicornOptions {
                    initial_samples: n_init.min(10),
                    budget,
                    relearn_every: 6,
                    seed: (wl * 100.0) as u64,
                    ..Default::default()
                },
            );
            cells.push(f1(gain(&target, &out.best_config).max(uni_reuse)));
        }
        cells.push(f1(smac_reuse));
        for frac in [0.10, 0.20] {
            let budget = ((base_budget as f64) * frac).ceil() as usize;
            let out = smac_optimize(
                &target,
                0,
                &SmacOptions {
                    n_init: n_init.min(10),
                    budget: n_init.min(10) + budget,
                    seed: (wl * 100.0) as u64,
                    ..Default::default()
                },
            );
            cells.push(f1(gain(&target, &out.best_config).max(smac_reuse)));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\nExpected shape (paper): reuse alone degrades as the workload \
         grows; Unicorn +10/20% recovers more gain than SMAC +10/20%."
    );
}
