//! Criterion micro-benchmarks of the simulated testbed: per-measurement
//! cost across the six systems and the scalability variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unicorn_systems::scalability::sqlite_variant;
use unicorn_systems::{Environment, Hardware, Simulator, SubjectSystem};

fn bench_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure");
    for sys in SubjectSystem::all() {
        let sim = Simulator::new(sys.build(), Environment::on(Hardware::Tx2), 7);
        let cfg = sim.model.space.default_config();
        group.bench_with_input(BenchmarkId::from_parameter(sys.name()), &cfg, |b, cfg| {
            b.iter(|| sim.measure(cfg))
        });
    }
    group.finish();
}

fn bench_scalability_variant(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure_scalability");
    for (label, opts, evs) in [
        ("sqlite-34x19", 34usize, 19usize),
        ("sqlite-242x288", 242, 288),
    ] {
        let sim = Simulator::new(
            sqlite_variant(opts, evs),
            Environment::on(Hardware::Xavier),
            7,
        );
        let cfg = sim.model.space.default_config();
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| sim.measure(cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measure, bench_scalability_variant);
criterion_main!(benches);
