//! Criterion micro-benchmarks of the causal-discovery pipeline — the
//! "Discovery" column of Table 3 at machine precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unicorn_discovery::{learn_causal_model, pc_skeleton, DiscoveryOptions};
use unicorn_stats::independence::MixedTest;
use unicorn_systems::scalability::sqlite_variant;
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn bench_skeleton(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 200, 0xD0);
    let tiers = sim.model.tiers();
    let test = MixedTest::new(&ds.columns);
    c.bench_function("pc_skeleton/x264/200samples", |b| {
        b.iter(|| pc_skeleton(&test, &ds.names, &tiers, 0.05, 1));
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_causal_model");
    group.sample_size(10);
    for (label, n_options) in [("sqlite-34", 34usize), ("sqlite-242", 242)] {
        let model = sqlite_variant(n_options, 19);
        let sim = Simulator::new(model, Environment::on(Hardware::Xavier), 0xBE);
        let ds = generate(&sim, 150, 0xD1);
        let tiers = sim.model.tiers();
        let opts = DiscoveryOptions { max_depth: 1, pds_depth: 0, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            b.iter(|| learn_causal_model(&ds.columns, &ds.names, &tiers, &opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skeleton, bench_full_pipeline);
criterion_main!(benches);
