//! Criterion micro-benchmarks of the causal-discovery pipeline — the
//! "Discovery" column of Table 3 at machine precision.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use unicorn_discovery::{
    learn_causal_model, learn_causal_model_incremental, learn_causal_model_on, pc_skeleton,
    pc_skeleton_with_threads, DiscoveryOptions, RelearnSession,
};
use unicorn_stats::dataview::DataView;
use unicorn_stats::independence::MixedTest;
use unicorn_stats::parallel::default_threads;
use unicorn_systems::scalability::sqlite_variant;
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn bench_skeleton(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 200, 0xD0);
    let tiers = sim.model.tiers();
    let test = MixedTest::new(&ds.columns);
    c.bench_function("pc_skeleton/x264/200samples", |b| {
        b.iter(|| pc_skeleton(&test, &ds.names, &tiers, 0.05, 1));
    });
}

/// Cached `DataView` + parallel sweep vs the uncached serial baseline at
/// n = 1000 samples (the ISSUE's ≥2× acceptance target). The uncached arm
/// re-derives the correlation matrix and every CI outcome per iteration —
/// exactly what each relearn of the active-learning loop used to do; the
/// cached arm holds one view across iterations the way the loop now does.
fn bench_dataview(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 1000, 0xD2);
    let tiers = sim.model.tiers();
    let opts = DiscoveryOptions {
        max_depth: 1,
        pds_depth: 0,
        ..Default::default()
    };

    let mut group = c.benchmark_group("discovery_x264_1000samples");
    group.sample_size(10);
    group.bench_function("uncached_serial", |b| {
        b.iter(|| {
            let test = MixedTest::new(&ds.columns);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, 1)
        });
    });
    group.bench_function("cached_parallel", |b| {
        let view = ds.view();
        b.iter(|| {
            let test = MixedTest::from_view(&view);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, default_threads())
        });
    });
    group.bench_function("cached_serial", |b| {
        let view = ds.view();
        b.iter(|| {
            let test = MixedTest::from_view(&view);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, 1)
        });
    });
    group.bench_function("fresh_view_parallel", |b| {
        // Cold caches every iteration: isolates the parallel-sweep win.
        b.iter(|| {
            let view = DataView::from_columns(&ds.columns);
            let test = MixedTest::from_view(&view);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, default_threads())
        });
    });
    group.bench_function("full_pipeline_uncached", |b| {
        b.iter(|| learn_causal_model(&ds.columns, &ds.names, &tiers, &opts));
    });
    group.bench_function("full_pipeline_cached_view", |b| {
        let view = ds.view();
        b.iter(|| learn_causal_model_on(&view, &ds.names, &tiers, &opts));
    });
    group.finish();
}

/// The fig11/fig14-style active-learning loop (the ISSUE 2 acceptance
/// target): start from n = 1000 measured samples, then per iteration
/// append one measurement and rebuild the causal engine's SCM (Stage III
/// reads it every step), relearning the structure every 5 iterations, for
/// 50 iterations. The *cold* arm replays the PR 1 loop shape: every
/// append lands in a fresh-cache view over copied columns, every engine
/// build refits the SCM from scratch, and every relearn re-derives the
/// correlation matrix, every discretization, and every CI outcome. The
/// *incremental* arm holds one segmented view (O(new rows) appends,
/// epoch-tagged surviving caches), warm-refits the SCM from cached
/// per-segment Grams, and drives `learn_causal_model_incremental` over a
/// `RelearnSession`. Both arms produce bit-identical models
/// (`tests/incremental_relearn.rs`, `FittedScm::refit_view` docs).
///
/// Note the cold arm still benefits from this PR's shared optimizations
/// (closed-form low-order partial correlations, block-design Grams,
/// FxHash cache shards, tightened LatentSearch inner loops); the actual
/// PR 1 binary runs this same loop in ~340 ms on the reference container,
/// against ~90 ms for the incremental arm (~3.8×) and ~140 ms cold.
fn bench_relearn_loop(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    const INITIAL: usize = 1000;
    const ITERATIONS: usize = 50;
    const RELEARN_EVERY: usize = 5;
    let stream = generate(&sim, INITIAL + ITERATIONS, 0xD3);
    let tiers = sim.model.tiers();
    // The Unicorn loop's discovery settings (UnicornOptions::default).
    let opts = DiscoveryOptions {
        alpha: 0.01,
        max_depth: 2,
        pds_depth: 1,
        ..Default::default()
    };
    let initial: Vec<Vec<f64>> = stream
        .columns
        .iter()
        .map(|c| c[..INITIAL].to_vec())
        .collect();
    let appended: Vec<Vec<f64>> = (INITIAL..INITIAL + ITERATIONS)
        .map(|r| stream.row(r))
        .collect();

    let mut group = c.benchmark_group("relearn_loop_x264_n1000_every5_x50");
    group.sample_size(10);
    group.bench_function("cold_fresh_caches", |b| {
        b.iter(|| {
            let mut cols = initial.clone();
            let mut model = None;
            for (i, row) in appended.iter().enumerate() {
                for (col, &v) in cols.iter_mut().zip(row) {
                    col.push(v);
                }
                // PR 1 appends started a fresh-cache view over copied
                // columns; the engine refit the SCM from scratch on it.
                let view = DataView::from_columns(&cols);
                if (i + 1) % RELEARN_EVERY == 0 {
                    model = Some(learn_causal_model_on(&view, &stream.names, &tiers, &opts));
                }
                let m = model.get_or_insert_with(|| {
                    learn_causal_model_on(&view, &stream.names, &tiers, &opts)
                });
                black_box(
                    unicorn_inference::FittedScm::fit_view(m.admg.clone(), &view).expect("SCM fit"),
                );
            }
        });
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut view = DataView::from_columns(&initial);
            let mut session = RelearnSession::default();
            let mut model = None;
            let mut scm: Option<unicorn_inference::FittedScm> = None;
            for (i, row) in appended.iter().enumerate() {
                view = view.append_row(row);
                if (i + 1) % RELEARN_EVERY == 0 {
                    model = Some(learn_causal_model_incremental(
                        &view,
                        &stream.names,
                        &tiers,
                        &opts,
                        &mut session,
                    ));
                }
                let m = model.get_or_insert_with(|| {
                    learn_causal_model_incremental(
                        &view,
                        &stream.names,
                        &tiers,
                        &opts,
                        &mut session,
                    )
                });
                // Engine build: warm refit while the structure is stable
                // (the UnicornState::engine policy).
                scm = Some(match scm.take() {
                    Some(prev) if prev.admg() == &m.admg => {
                        prev.refit_view(&view).expect("SCM refit")
                    }
                    _ => unicorn_inference::FittedScm::fit_view(m.admg.clone(), &view)
                        .expect("SCM fit"),
                });
                black_box(scm.as_ref().map(unicorn_inference::FittedScm::n_rows));
            }
        });
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_causal_model");
    group.sample_size(10);
    for (label, n_options) in [("sqlite-34", 34usize), ("sqlite-242", 242)] {
        let model = sqlite_variant(n_options, 19);
        let sim = Simulator::new(model, Environment::on(Hardware::Xavier), 0xBE);
        let ds = generate(&sim, 150, 0xD1);
        let tiers = sim.model.tiers();
        let opts = DiscoveryOptions {
            max_depth: 1,
            pds_depth: 0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            b.iter(|| learn_causal_model(&ds.columns, &ds.names, &tiers, &opts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_skeleton,
    bench_dataview,
    bench_relearn_loop,
    bench_full_pipeline
);
criterion_main!(benches);
