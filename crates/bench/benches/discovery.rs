//! Criterion micro-benchmarks of the causal-discovery pipeline — the
//! "Discovery" column of Table 3 at machine precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unicorn_discovery::{
    learn_causal_model, learn_causal_model_on, pc_skeleton, pc_skeleton_with_threads,
    DiscoveryOptions,
};
use unicorn_stats::dataview::DataView;
use unicorn_stats::independence::MixedTest;
use unicorn_stats::parallel::default_threads;
use unicorn_systems::scalability::sqlite_variant;
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn bench_skeleton(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 200, 0xD0);
    let tiers = sim.model.tiers();
    let test = MixedTest::new(&ds.columns);
    c.bench_function("pc_skeleton/x264/200samples", |b| {
        b.iter(|| pc_skeleton(&test, &ds.names, &tiers, 0.05, 1));
    });
}

/// Cached `DataView` + parallel sweep vs the uncached serial baseline at
/// n = 1000 samples (the ISSUE's ≥2× acceptance target). The uncached arm
/// re-derives the correlation matrix and every CI outcome per iteration —
/// exactly what each relearn of the active-learning loop used to do; the
/// cached arm holds one view across iterations the way the loop now does.
fn bench_dataview(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 1000, 0xD2);
    let tiers = sim.model.tiers();
    let opts = DiscoveryOptions {
        max_depth: 1,
        pds_depth: 0,
        ..Default::default()
    };

    let mut group = c.benchmark_group("discovery_x264_1000samples");
    group.sample_size(10);
    group.bench_function("uncached_serial", |b| {
        b.iter(|| {
            let test = MixedTest::new(&ds.columns);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, 1)
        });
    });
    group.bench_function("cached_parallel", |b| {
        let view = ds.view();
        b.iter(|| {
            let test = MixedTest::from_view(&view);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, default_threads())
        });
    });
    group.bench_function("cached_serial", |b| {
        let view = ds.view();
        b.iter(|| {
            let test = MixedTest::from_view(&view);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, 1)
        });
    });
    group.bench_function("fresh_view_parallel", |b| {
        // Cold caches every iteration: isolates the parallel-sweep win.
        b.iter(|| {
            let view = DataView::from_columns(&ds.columns);
            let test = MixedTest::from_view(&view);
            pc_skeleton_with_threads(&test, &ds.names, &tiers, 0.05, 1, default_threads())
        });
    });
    group.bench_function("full_pipeline_uncached", |b| {
        b.iter(|| learn_causal_model(&ds.columns, &ds.names, &tiers, &opts));
    });
    group.bench_function("full_pipeline_cached_view", |b| {
        let view = ds.view();
        b.iter(|| learn_causal_model_on(&view, &ds.names, &tiers, &opts));
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_causal_model");
    group.sample_size(10);
    for (label, n_options) in [("sqlite-34", 34usize), ("sqlite-242", 242)] {
        let model = sqlite_variant(n_options, 19);
        let sim = Simulator::new(model, Environment::on(Hardware::Xavier), 0xBE);
        let ds = generate(&sim, 150, 0xD1);
        let tiers = sim.model.tiers();
        let opts = DiscoveryOptions {
            max_depth: 1,
            pds_depth: 0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            b.iter(|| learn_causal_model(&ds.columns, &ds.names, &tiers, &opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skeleton, bench_dataview, bench_full_pipeline);
criterion_main!(benches);
