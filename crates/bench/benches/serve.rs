//! The serving-layer benchmark (`BENCH_serve.json`): 32 concurrent
//! overlapping clients' worth of performance queries against one learned
//! x264 snapshot, in four arms:
//!
//! * `serial` — the no-daemon reference: every request evaluated alone
//!   (`CausalEngine::estimate` per query) with the sweep cache bypassed,
//!   each round paying its own baseline sweep and interventional sweeps.
//! * `coalesced` — one admission window's worth of requests compiled
//!   into one merged `PlanBatch` per round
//!   (`unicorn_inference::answer_coalesced`), still cache-bypassed: the
//!   cold first-contact cost of a window — duplicate sweeps deduplicated
//!   across requests, the no-intervention baseline shared, one domain
//!   probe per (node, grid).
//! * `repeated_query` — the same coalesced window against the snapshot's
//!   live `SweepCache` at steady state (cache warmed before timing):
//!   every sweep is served from memoized epoch-pinned buffers, so the
//!   round costs demux + fold, not simulation. The baseline keeps this
//!   arm well over 3× the cold `coalesced` arm.
//! * `admission_pipeline` — the same workload pushed through the real
//!   `unicorn-serve` machinery: an `AdmissionQueue` drained by a live
//!   batcher thread against a published `SnapshotCell` epoch (whose
//!   engine carries the sweep cache, as in production).
//!
//! Every arm is asserted bit-identical to `serial` before timing — the
//! daemon's coalescing and caching are throughput optimizations, never a
//! semantics change. The checked-in baseline shows the coalesced arm
//! well over 3× the serial arm; CI's bench gate keeps all four arms from
//! regressing.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unicorn_core::{SnapshotCell, SnapshotRouter, UnicornOptions, UnicornState, DEFAULT_TENANT};
use unicorn_graph::VarKind;
use unicorn_inference::{answer_coalesced, CausalEngine, PerformanceQuery, QueryAnswer};
use unicorn_serve::admission::{run_batcher, AdmissionQueue};
use unicorn_systems::{Environment, Hardware, Simulator, SubjectSystem};

const CLIENTS: usize = 32;

struct Setup {
    snapshots: Arc<SnapshotCell>,
    /// The published engine with the sweep cache stripped: the cold
    /// compute reference the `serial` and `coalesced` arms time (every
    /// round re-simulates, as a first-contact window would).
    cold: CausalEngine,
    queries: Vec<PerformanceQuery>,
}

fn setup() -> Setup {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let opts = UnicornOptions {
        initial_samples: 200,
        ..UnicornOptions::default()
    };
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let snapshots = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
    let cold = snapshots.load().engine.without_sweep_cache();

    // 32 concurrent clients with heavy overlap: interest concentrates on
    // a handful of options and objectives, as it does in an interactive
    // debugging session — exactly the workload admission batching dedups.
    let tiers = sim.model.tiers();
    let options = tiers.of_kind(VarKind::ConfigOption);
    let objectives = tiers.of_kind(VarKind::Objective);
    let queries: Vec<PerformanceQuery> = (0..CLIENTS)
        .map(|c| {
            let option = options[c % 4];
            let objective = objectives[c % 2];
            let values = &sim.model.space.option(c % 4).values;
            match c % 3 {
                0 => PerformanceQuery::CausalEffect { option, objective },
                1 => PerformanceQuery::ProbabilityOfQos {
                    interventions: vec![(option, values[0])],
                    objective,
                    threshold: 30.0,
                },
                _ => PerformanceQuery::ExpectedObjective {
                    interventions: vec![(option, values[values.len() - 1])],
                    objective,
                },
            }
        })
        .collect();
    Setup {
        snapshots,
        cold,
        queries,
    }
}

fn serial(s: &Setup) -> Vec<QueryAnswer> {
    s.queries.iter().map(|q| s.cold.estimate(q)).collect()
}

fn coalesced(s: &Setup) -> Vec<QueryAnswer> {
    answer_coalesced(&s.cold, &s.queries)
}

/// The steady-state arm: the same coalesced window against the
/// snapshot's cache-carrying engine — after warm-up, every sweep is a
/// hit.
fn repeated_query(s: &Setup) -> Vec<QueryAnswer> {
    let snap = s.snapshots.load();
    answer_coalesced(&snap.engine, &s.queries)
}

fn admission_pipeline(s: &Setup, queue: &AdmissionQueue) -> Vec<QueryAnswer> {
    let receivers: Vec<_> = s
        .queries
        .iter()
        .map(|q| queue.submit(DEFAULT_TENANT, q.clone()))
        .collect();
    receivers
        .into_iter()
        .map(|rx| rx.recv().expect("batcher died").answer)
        .collect()
}

fn bits(answers: &[QueryAnswer]) -> Vec<(u8, u64)> {
    answers
        .iter()
        .map(|a| match a {
            QueryAnswer::Effect(x) => (0u8, x.to_bits()),
            QueryAnswer::Probability(x) => (1, x.to_bits()),
            QueryAnswer::Expectation(x) => (2, x.to_bits()),
            other => panic!("scalar workload produced {other:?}"),
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let s = setup();

    // The live serving pipeline: one batcher thread with a short real
    // admission window, so the 32 submissions coalesce into one batch
    // the way concurrent clients would within a window.
    let queue = AdmissionQueue::new();
    let batcher = {
        let queue = Arc::clone(&queue);
        let router = SnapshotRouter::single(Arc::clone(&s.snapshots));
        std::thread::spawn(move || run_batcher(&queue, &router, Duration::from_micros(500)))
    };

    // Bit-identity across all three arms before any timing: coalescing
    // must be invisible in the answers.
    let reference = bits(&serial(&s));
    assert_eq!(
        reference,
        bits(&coalesced(&s)),
        "coalesced arm diverged — benchmark invalid"
    );
    assert_eq!(
        reference,
        bits(&admission_pipeline(&s, &queue)),
        "admission pipeline diverged — benchmark invalid"
    );
    // Warm the sweep cache (miss pass), then assert the steady-state
    // hit-serving pass is still bit-identical to the cache-bypass
    // reference — the cached arm's timing is only meaningful if its
    // answers are provably the same bits.
    assert_eq!(
        reference,
        bits(&repeated_query(&s)),
        "cache warm-up pass diverged — benchmark invalid"
    );
    assert_eq!(
        reference,
        bits(&repeated_query(&s)),
        "steady-state cached answers diverged — benchmark invalid"
    );
    if let Some(cache) = s.snapshots.load().engine.sweep_cache() {
        assert!(
            cache.stats().hits() > 0,
            "repeated workload never hit the sweep cache — benchmark invalid"
        );
    }

    let mut group = c.benchmark_group("serve_x264_32_clients");
    group.sample_size(10);
    group.bench_function("scalar_window/serial", |b| {
        b.iter(|| black_box(serial(&s)));
    });
    group.bench_function("scalar_window/coalesced", |b| {
        b.iter(|| black_box(coalesced(&s)));
    });
    group.bench_function("scalar_window/repeated_query", |b| {
        b.iter(|| black_box(repeated_query(&s)));
    });
    group.bench_function("scalar_window/admission_pipeline", |b| {
        b.iter(|| black_box(admission_pipeline(&s, &queue)));
    });
    group.finish();

    queue.close();
    let _ = batcher.join();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
