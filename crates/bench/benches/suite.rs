//! The full-pipeline suite bench (`BENCH_suite.json`): every entry of
//! [`ScenarioRegistry::standard`] — the five real subject-system families
//! of Table 1 plus the synthetic family points — is driven through all
//! five Unicorn stages (discover → SCM fit → debug → optimize → transfer
//! where a shift is defined) over the shared executor, and the
//! per-scenario wall clocks, CI-test counts, SHD against the planted
//! graph, and query latencies land in one machine-readable report.
//!
//! ```sh
//! UNICORN_BENCH_JSON=BENCH_suite.json cargo bench -p unicorn-bench --bench suite
//! ```
//!
//! `UNICORN_SUITE_FILTER=<substring>` restricts the run to matching
//! scenario names; `UNICORN_BENCH_SAMPLES=<n>` runs the whole suite `n`
//! times and reports min/mean/max per stage, so the suite bench-gate can
//! use a tight tolerance on mean timings. The report's `benchmarks`
//! section is consumable by the `bench-gate` regression gate.

use unicorn_bench::suite::{render_json_runs, run_suite, SuiteOptions};
use unicorn_systems::ScenarioRegistry;

fn main() {
    let registry = ScenarioRegistry::standard();
    let samples = std::env::var("UNICORN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    println!(
        "suite: {} scenarios ({} real systems), {samples} sample pass(es)\n",
        registry.len(),
        registry.real_systems().len(),
    );
    let runs: Vec<_> = (0..samples)
        .map(|pass| {
            if samples > 1 {
                println!("-- pass {}/{samples} --", pass + 1);
            }
            run_suite(&registry, &SuiteOptions::default())
        })
        .collect();
    let path =
        std::env::var("UNICORN_BENCH_JSON").unwrap_or_else(|_| "BENCH_suite.json".to_string());
    std::fs::write(&path, render_json_runs(&runs)).expect("write suite report");
    println!("\nsuite report: {} scenarios -> {path}", runs[0].len());
}
