//! The streaming-ingestion soak benchmark (`BENCH_soak.json`): one
//! long-lived tenant under live measurement traffic with a mid-stream
//! environment shift, exercising the full `unicorn_ingest` loop —
//! residual scoring against the pinned SCM, Page-Hinkley drift
//! detection, and the drift-triggered relearn + snapshot publish.
//!
//! The scenario is [`ScenarioRegistry::drift_soak`]: x264 on TX2 whose
//! workload surges 2.5× partway through the stream. The script:
//!
//! 1. bootstrap + publish epoch 1, pin the pipeline's reference SCM;
//! 2. stream in-distribution rows (the pre-shift phase) — the run
//!    asserts **zero** triggers here, so the thresholds are honest about
//!    false positives;
//! 3. flip the row source to the shifted environment and keep streaming
//!    — the run asserts the detector fires, reports how many rows the
//!    shift needed to surface (**detection latency, in rows** — exact
//!    and machine-independent, encoded as pseudo-ns), and times the
//!    relearn + publish it triggered;
//! 4. after recovery, asserts the published model actually adapted:
//!    mean |objective residual| on fresh shifted-environment rows drops
//!    versus the pre-shift model, and the relearned engine's SCM is
//!    **bit-identical** to a cold learn over the same total row set
//!    (the streamed path buys latency, never different bits).
//!
//! The `benchmarks` array carries the two streaming wall clocks, the
//! drift-relearn cost, and the detection latency for the bench gate;
//! the `soak` section records the scenario shape, trigger bookkeeping,
//! and the before/after accuracy for humans.
//!
//! ```sh
//! UNICORN_BENCH_JSON=BENCH_soak.json cargo bench -p unicorn-bench --bench soak
//! ```
//!
//! `UNICORN_BENCH_SAMPLES=<n>` repeats the whole soak `n` times; the
//! detection row is asserted identical across passes (it is a pure
//! function of the row stream).

use std::sync::Arc;
use std::time::{Duration, Instant};

use unicorn_core::{SnapshotCell, UnicornOptions, UnicornState};
use unicorn_ingest::{DriftOptions, DriftStats, IngestPipeline, RelearnReason};
use unicorn_systems::{Dataset, ScenarioRegistry, Simulator};

const SEED: u64 = 42;
const PRE_ROWS: usize = 96;
const POST_ROWS: usize = 160;
const CHUNK: usize = 16;
const EVAL_ROWS: usize = 64;

/// Row-major copy of a generated dataset (the wire shape).
fn rows_of(data: &Dataset) -> Vec<Vec<f64>> {
    (0..data.n_rows())
        .map(|r| data.columns.iter().map(|c| c[r]).collect())
        .collect()
}

fn soak_opts() -> UnicornOptions {
    UnicornOptions {
        initial_samples: 60,
        relearn_every: usize::MAX,
        ..UnicornOptions::default()
    }
}

/// Drift thresholds for the soak: the staleness fallback is pushed out
/// of reach so every relearn event in the run is detector-attributed,
/// and the Page-Hinkley knobs are sized for this stream's actual noise
/// — x264's out-of-sample residuals run ~1.9× the training RMS (the
/// normalization unit), so the per-sample allowance must sit above
/// that, while the 2.5× workload surge lands ~50 RMS units per row and
/// clears any sane threshold on the first few shifted rows.
fn soak_drift() -> DriftOptions {
    DriftOptions {
        delta: 1.0,
        lambda: 25.0,
        max_staleness_rows: usize::MAX,
        ..DriftOptions::default()
    }
}

/// Streams `rows` through the pipeline in fixed [`CHUNK`]-row batches
/// (the flush shape), collecting relearn events and the wall clock.
fn stream(
    pipeline: &mut IngestPipeline,
    rows: &[Vec<f64>],
) -> (Vec<unicorn_ingest::RelearnEvent>, Duration) {
    let mut events = Vec::new();
    let t0 = Instant::now();
    for chunk in rows.chunks(CHUNK) {
        events.extend(pipeline.ingest_rows(chunk));
    }
    (events, t0.elapsed())
}

/// Mean |objective residual| of `snap`'s SCM over `rows`.
fn mae(snap: &unicorn_core::EngineSnapshot, rows: &[Vec<f64>]) -> f64 {
    let total: f64 = rows
        .iter()
        .flat_map(|row| snap.objective_residuals(row))
        .map(f64::abs)
        .sum();
    total / (rows.len() * snap.objective_nodes().len()) as f64
}

/// Every fitted coefficient vector of the SCM, as exact bit patterns.
fn scm_bits(scm: &unicorn_inference::FittedScm) -> Vec<Option<Vec<u64>>> {
    (0..scm.n_vars())
        .map(|v| {
            scm.coefficients_of(v)
                .map(|c| c.iter().map(|x| x.to_bits()).collect())
        })
        .collect()
}

struct PassOutcome {
    pre_wall: Duration,
    post_wall: Duration,
    detect_row: u64,
    relearn_wall: Duration,
    drift_relearns: usize,
    mae_before: f64,
    mae_after: f64,
}

fn run_pass(sim: &Simulator, target: &Simulator, check_cold_identity: bool) -> PassOutcome {
    let opts = soak_opts();
    let mut state = UnicornState::bootstrap(sim, &opts);
    let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(sim, &opts)));
    let before = cell.load();
    let mut pipeline = IngestPipeline::new(
        state,
        sim.clone(),
        opts.clone(),
        Arc::clone(&cell),
        soak_drift(),
        Arc::new(DriftStats::default()),
    );

    let pre = rows_of(&unicorn_systems::generate(sim, PRE_ROWS, SEED ^ 0x11));
    let post = rows_of(&unicorn_systems::generate(target, POST_ROWS, SEED ^ 0x22));

    let (pre_events, pre_wall) = stream(&mut pipeline, &pre);
    assert!(
        pre_events.is_empty(),
        "in-distribution rows must not trigger: {pre_events:?}"
    );

    let (post_events, post_wall) = stream(&mut pipeline, &post);
    let first = post_events
        .first()
        .expect("a 2.5x workload surge must trip the drift detector");
    assert!(
        matches!(first.reason, RelearnReason::Drift { .. }),
        "staleness fallback is out of reach in this run"
    );
    assert!(
        first.epoch > before.epoch,
        "relearn must publish a new epoch"
    );
    let detect_row = first.stream_row - PRE_ROWS as u64;

    // Recovery: the published model must fit the shifted environment
    // better than the pre-shift one on rows neither has seen.
    let after = cell.load();
    let eval = rows_of(&unicorn_systems::generate(target, EVAL_ROWS, SEED ^ 0x33));
    let mae_before = mae(&before, &eval);
    let mae_after = mae(&after, &eval);
    assert!(
        mae_after < mae_before,
        "post-recovery objective MAE must improve ({mae_after} vs {mae_before})"
    );

    // Bit-identity: a cold state over the identical row set — one
    // bootstrap, then exactly the rows the stream had folded when the
    // *last* relearn published (rows arriving after it are recorded but
    // not yet fit), one relearn — must fit the exact same SCM the
    // streamed pipeline published.
    if check_cold_identity {
        let last_row = post_events.last().expect("events").stream_row as usize;
        let opts = soak_opts();
        let mut cold = UnicornState::bootstrap(sim, &opts);
        for row in pre.iter().chain(&post).take(last_row) {
            cold.record_row(row);
        }
        cold.relearn(sim, &opts);
        let cold_engine = cold.engine(sim, &opts);
        assert_eq!(
            scm_bits(cold_engine.scm()),
            scm_bits(after.engine.scm()),
            "streamed-then-relearned SCM diverged from the cold learn"
        );
        println!("soak: streamed SCM bit-identical to cold learn over the same rows");
    }

    PassOutcome {
        pre_wall,
        post_wall,
        detect_row,
        relearn_wall: first.wall,
        drift_relearns: post_events.len(),
        mae_before,
        mae_after,
    }
}

struct Row {
    name: &'static str,
    ns: Vec<u128>,
}

fn render_json(rows: &[Row], soak_section: &str) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let min = row.ns.iter().min().expect("samples");
        let max = row.ns.iter().max().expect("samples");
        let mean = row.ns.iter().sum::<u128>() / row.ns.len() as u128;
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {min}, \"mean_ns\": {mean}, \"max_ns\": {max}, \"samples\": {}}}{sep}\n",
            row.name,
            row.ns.len(),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(soak_section);
    out.push_str("}\n");
    out
}

fn main() {
    let samples: usize = std::env::var("UNICORN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);

    let reg = ScenarioRegistry::drift_soak();
    let sc = reg.get("x264-drift-soak").expect("soak scenario");
    let sim = sc.simulator(SEED);
    let target = sc
        .target_simulator(SEED)
        .expect("soak scenario has a shift");

    let mut rows = vec![
        Row {
            name: "soak/stream_pre_shift",
            ns: Vec::new(),
        },
        Row {
            name: "soak/stream_post_shift",
            ns: Vec::new(),
        },
        Row {
            name: "soak/drift_relearn",
            ns: Vec::new(),
        },
        Row {
            name: "soak/detection_latency_rows",
            ns: Vec::new(),
        },
    ];
    let mut last = None;
    let mut detect_row = None;
    for pass in 0..samples {
        let out = run_pass(&sim, &target, pass == 0);
        // The trigger is a pure function of the row stream — identical
        // in every pass, whatever the machine does to the wall clocks.
        assert_eq!(*detect_row.get_or_insert(out.detect_row), out.detect_row);
        println!(
            "pass {}/{samples}: pre {:?} ({PRE_ROWS} rows, 0 triggers), post {:?} ({POST_ROWS} rows), detected after {} rows, relearn {:?}, objective MAE {:.4} -> {:.4}",
            pass + 1,
            out.pre_wall,
            out.post_wall,
            out.detect_row,
            out.relearn_wall,
            out.mae_before,
            out.mae_after,
        );
        rows[0].ns.push(out.pre_wall.as_nanos());
        rows[1].ns.push(out.post_wall.as_nanos());
        rows[2].ns.push(out.relearn_wall.as_nanos());
        rows[3].ns.push(out.detect_row as u128);
        last = Some(out);
    }

    let out = last.expect("at least one pass");
    let soak_section = format!(
        "  \"soak\": {{\"scenario\": \"x264-drift-soak\", \"pre_rows\": {PRE_ROWS}, \"post_rows\": {POST_ROWS}, \"chunk_rows\": {CHUNK}, \"detection_latency_rows\": {}, \"false_triggers\": 0, \"drift_relearns\": {}, \"objective_mae_before\": {:.6}, \"objective_mae_after\": {:.6}}}\n",
        out.detect_row, out.drift_relearns, out.mae_before, out.mae_after,
    );
    let path =
        std::env::var("UNICORN_BENCH_JSON").unwrap_or_else(|_| "BENCH_soak.json".to_string());
    std::fs::write(&path, render_json(&rows, &soak_section)).expect("write soak report");
    println!("soak report -> {path}");
}
