//! The kernel microbenchmarks (`BENCH_kernels.json`): the three blocked
//! kernel families behind the pipeline benches, each timed against its
//! scalar reference arm so a regression in either the kernel or its
//! dispatch is caught directly, not just through end-to-end noise.
//!
//! * `corr_matrix` — the chunk-major lane-blocked correlation matrix
//!   ([`unicorn_stats::correlation_matrix`]) vs the pairwise scalar fold
//!   (one [`unicorn_stats::pearson`] per pair).
//! * `gtest_mi` / `gtest_cmi` — the dense structure-of-arrays contingency
//!   kernels behind the G-test vs the sparse BTreeMap folds.
//! * `scm_sweep` — the [`SIM_LANES`](unicorn_inference::SIM_LANES)-row
//!   lane topological sweep ([`FittedScm::simulate_batch`]) vs a scalar
//!   per-row [`FittedScm::simulate`] loop, both on one worker so the
//!   delta is pure data-level parallelism.
//!
//! Every pair of arms is cross-checked bit-for-bit before timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unicorn_exec::Executor;
use unicorn_graph::Admg;
use unicorn_inference::{FittedScm, ResidualMode};
use unicorn_stats::{
    conditional_mutual_information, conditional_mutual_information_sparse, correlation_matrix,
    mutual_information, mutual_information_sparse, pearson, Matrix,
};

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Column-major synthetic data with mild cross-column structure.
fn columns(p: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut s = seed;
    let mut cols: Vec<Vec<f64>> = (0..p).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        let shared = lcg(&mut s);
        for (j, col) in cols.iter_mut().enumerate() {
            col.push(lcg(&mut s) + shared * (j % 3) as f64 * 0.5);
        }
    }
    cols
}

/// Integer codes in `0..arity`.
fn codes(n: usize, arity: usize, seed: u64) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| (lcg(&mut s).abs() * 2.0 * arity as f64) as usize % arity)
        .collect()
}

/// The scalar reference arm: one per-pair [`pearson`] fold.
fn pairwise_scalar(cols: &[Vec<f64>]) -> Matrix {
    let p = cols.len();
    let mut m = Matrix::identity(p);
    for i in 0..p {
        for j in i + 1..p {
            let r = pearson(&cols[i], &cols[j]);
            m[(i, j)] = r;
            m[(j, i)] = r;
        }
    }
    m
}

/// A 12-node layered DAG fitted on LCG data, over one worker.
fn fitted_scm(n: usize) -> FittedScm {
    let p = 12usize;
    let names: Vec<String> = (0..p).map(|v| format!("v{v}")).collect();
    let mut g = Admg::new(names);
    for v in 4..p {
        g.add_directed(v % 4, v);
        g.add_directed((v + 1) % 4, v);
        if v >= 8 {
            g.add_directed(v - 4, v);
        }
    }
    let mut s = 7u64;
    let mut cols: Vec<Vec<f64>> = (0..p).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        let mut row = vec![0.0f64; p];
        for (v, r) in row.iter_mut().enumerate().take(4) {
            let _ = v;
            *r = lcg(&mut s);
        }
        for v in 4..p {
            row[v] = 0.8 * row[v % 4] - 0.5 * row[(v + 1) % 4]
                + if v >= 8 { 0.3 * row[v - 4] } else { 0.0 }
                + 0.05 * lcg(&mut s);
        }
        for (col, &r) in cols.iter_mut().zip(&row) {
            col.push(r);
        }
    }
    FittedScm::fit_view_on(
        g,
        &unicorn_stats::DataView::from_columns(&cols),
        Executor::new(1),
    )
    .expect("SCM fit")
}

fn bench_kernels(c: &mut Criterion) {
    let (p, n) = (34, 2048);
    let cols = columns(p, n, 0xC0FFEE);
    let nc = 6000;
    let (xs, ys, zs) = (codes(nc, 12, 0xA), codes(nc, 10, 0xB), codes(nc, 6, 0xC));
    let scm = fitted_scm(1024);
    let rows: Vec<usize> = (0..scm.n_rows()).step_by(2).collect();
    let interventions = [(4usize, 0.25f64)];

    // Cross-check once: every blocked arm must agree with its scalar
    // reference bit for bit before timing.
    {
        let blocked = correlation_matrix(&cols);
        let scalar = pairwise_scalar(&cols);
        for i in 0..p {
            for j in 0..p {
                assert_eq!(
                    blocked[(i, j)].to_bits(),
                    scalar[(i, j)].to_bits(),
                    "correlation arms diverged at ({i},{j})"
                );
            }
        }
        assert_eq!(
            mutual_information(&xs, &ys).to_bits(),
            mutual_information_sparse(&xs, &ys).to_bits(),
            "MI arms diverged"
        );
        assert_eq!(
            conditional_mutual_information(&xs, &ys, &zs).to_bits(),
            conditional_mutual_information_sparse(&xs, &ys, &zs).to_bits(),
            "CMI arms diverged"
        );
        let lanes = scm.simulate_batch(&rows, &interventions, ResidualMode::FromRow);
        for (&r, lane) in rows.iter().zip(&lanes) {
            let scalar = scm.simulate(r, &interventions, ResidualMode::FromRow(r));
            for (a, b) in lane.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits(), "SCM sweep arms diverged at {r}");
            }
        }
    }

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.bench_function("corr_matrix/blocked_p34_n2048", |b| {
        b.iter(|| black_box(correlation_matrix(&cols)));
    });
    group.bench_function("corr_matrix/pairwise_scalar_p34_n2048", |b| {
        b.iter(|| black_box(pairwise_scalar(&cols)));
    });
    group.bench_function("gtest_mi/dense_n6000", |b| {
        b.iter(|| black_box(mutual_information(&xs, &ys)));
    });
    group.bench_function("gtest_mi/sparse_n6000", |b| {
        b.iter(|| black_box(mutual_information_sparse(&xs, &ys)));
    });
    group.bench_function("gtest_cmi/dense_n6000", |b| {
        b.iter(|| black_box(conditional_mutual_information(&xs, &ys, &zs)));
    });
    group.bench_function("gtest_cmi/sparse_n6000", |b| {
        b.iter(|| black_box(conditional_mutual_information_sparse(&xs, &ys, &zs)));
    });
    group.bench_function("scm_sweep/lanes_rows512", |b| {
        b.iter(|| black_box(scm.simulate_batch(&rows, &interventions, ResidualMode::FromRow)));
    });
    group.bench_function("scm_sweep/scalar_rows512", |b| {
        b.iter(|| {
            let out: Vec<Vec<f64>> = rows
                .iter()
                .map(|&r| scm.simulate(r, &interventions, ResidualMode::FromRow(r)))
                .collect();
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
