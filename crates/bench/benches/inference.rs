//! Criterion micro-benchmarks of the inference engine — the "Query eval"
//! column of Table 3: SCM fitting, interventional expectations, ACE, and
//! repair ranking.

use criterion::{criterion_group, criterion_main, Criterion};

use unicorn_discovery::{learn_causal_model, DiscoveryOptions};
use unicorn_inference::{ace, CausalEngine, FittedScm, QosGoal, RepairOptions};
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn setup() -> (Simulator, unicorn_systems::Dataset, FittedScm) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 200, 0xD2);
    let model = learn_causal_model(
        &ds.columns,
        &ds.names,
        &sim.model.tiers(),
        &DiscoveryOptions {
            max_depth: 1,
            pds_depth: 0,
            ..Default::default()
        },
    );
    let scm = FittedScm::fit(model.admg, &ds.columns).expect("fit");
    (sim, ds, scm)
}

fn bench_scm_fit(c: &mut Criterion) {
    let (_, ds, scm) = setup();
    let admg = scm.admg().clone();
    c.bench_function("scm_fit/x264/200samples", |b| {
        b.iter(|| FittedScm::fit(admg.clone(), &ds.columns).expect("fit"));
    });
}

fn bench_interventional(c: &mut Criterion) {
    let (_, ds, scm) = setup();
    let obj = ds.objective_node(0);
    c.bench_function("interventional_expectation", |b| {
        b.iter(|| scm.interventional_expectation(obj, &[(0, 18.0)]));
    });
    c.bench_function("ace_single_option", |b| {
        b.iter(|| ace(&scm, obj, 0, &[13.0, 18.0, 24.0, 30.0]));
    });
}

fn bench_repair_ranking(c: &mut Criterion) {
    let (sim, ds, scm) = setup();
    let engine = CausalEngine::new(
        scm,
        sim.model.tiers(),
        std::sync::Arc::new(ds.domains(&sim)),
    )
    .with_repair_options(RepairOptions {
        max_pairs: 8,
        ..Default::default()
    });
    let goal = QosGoal::single(
        ds.objective_node(0),
        unicorn_stats::quantile(ds.objective_column(0), 0.5),
    );
    let mut group = c.benchmark_group("repair_ranking");
    group.sample_size(10);
    group.bench_function("recommend_repairs", |b| {
        b.iter(|| engine.recommend_repairs(&goal, 0));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scm_fit,
    bench_interventional,
    bench_repair_ranking
);
criterion_main!(benches);
