//! The fleet-scale benchmark (`BENCH_fleet.json`): N=1000 generate-on-
//! demand synthetic tenants multiplexed through one `unicorn_core::Fleet`
//! under mixed query / append / relearn traffic, in two arms:
//!
//! * `unbounded` — no memory budget: every tenant's statistic caches
//!   stay resident. Run once, it fixes the reference answers and the
//!   cache high-water mark the budget is derived from.
//! * `budgeted` — the same admission order and traffic under a global
//!   budget of (segment floor + ¼ of the unbounded cache bytes), so the
//!   maintain pass must evict cold tenants' caches throughout. Every
//!   answer is asserted **bit-identical** to the unbounded arm in-run:
//!   eviction trades latency, never answers.
//!
//! Tenants come from `ScenarioRegistry::synthetic_on_demand` — replica
//! groups of four share a spec and a bootstrap seed, so three of every
//! four admissions exercise the cross-tenant warm start (the admitted
//! model is adopted from the group head, provably bit-identical to the
//! cold learn it skips).
//!
//! After the mixed-traffic script, both arms run a **steady-state pass**:
//! every tenant's probe asked twice back-to-back (the keep-alive
//! debugging-session shape), with the usual periodic maintain sweeps.
//! The repeat is served from the tenant's epoch-pinned `SweepCache`, so
//! the pass measures the fleet's steady-state hit rate — and proves the
//! budgeted arm's evict-then-rederive answers stay bit-identical to the
//! unbounded arm's cache-warm ones.
//!
//! The report carries the usual `benchmarks` array for the bench gate
//! (admission, mixed-traffic, and steady-state wall clocks, plus query
//! p50/p99 encoded as pseudo-latencies) and a `fleet` section with
//! throughput, peak accounted bytes, the budget, eviction /
//! warm-admission counts, and the steady-state sweep-cache hit rate.
//!
//! ```sh
//! UNICORN_BENCH_JSON=BENCH_fleet.json cargo bench -p unicorn-bench --bench fleet
//! ```
//!
//! `UNICORN_BENCH_SAMPLES=<n>` repeats the budgeted arm `n` times (the
//! gate reads mean timings); `UNICORN_FLEET_TENANTS=<n>` shrinks the
//! fleet for quick local runs (the checked-in baseline is N=1000).

use std::time::{Duration, Instant};

use unicorn_core::{Fleet, FleetOptions, UnicornOptions};
use unicorn_graph::VarKind;
use unicorn_inference::{sweep_cache_enabled, PerformanceQuery};
use unicorn_systems::{ScenarioRegistry, ScenarioSpec};

/// Tenants per replica group share one bootstrap seed, so warm starts
/// actually fire (bit-identical bootstrap data is the adoption gate).
fn sample_seed(i: usize) -> u64 {
    0xA5A5_0000 ^ (i / ScenarioRegistry::ON_DEMAND_REPLICAS) as u64
}

fn fleet_unicorn_opts() -> UnicornOptions {
    let mut opts = UnicornOptions {
        initial_samples: 20,
        relearn_every: usize::MAX,
        ..UnicornOptions::default()
    };
    // Shallow discovery keeps a thousand cold admissions interactive;
    // depth is identical in both arms, so the bit-identity assertions
    // still cover the full cache economy.
    opts.discovery.max_depth = 1;
    opts.discovery.pds_depth = 0;
    opts
}

/// The per-tenant probe query: first option's effect on the first
/// objective (resolved per spec, since tenants differ in shape).
fn probe_query(spec: &ScenarioSpec) -> PerformanceQuery {
    let tiers = spec.build().tiers();
    PerformanceQuery::CausalEffect {
        option: tiers.of_kind(VarKind::ConfigOption)[0],
        objective: tiers.of_kind(VarKind::Objective)[0],
    }
}

struct TrafficOutcome {
    admit: Duration,
    mixed: Duration,
    latencies: Vec<Duration>,
    answers: Vec<String>,
    warm_admissions: u64,
}

/// Admits `n` tenants and drives the deterministic mixed-traffic script:
/// one probe query per tenant, every 10th tenant also appends a batch,
/// relearns, and re-queries; a maintain pass every 50 tenants models the
/// serving loop's periodic sweep. Returns wall clocks, per-query
/// latencies, and every answer (Debug-formatted — bitwise faithful).
fn run_traffic(fleet: &mut Fleet, n: usize) -> TrafficOutcome {
    let t0 = Instant::now();
    for i in 0..n {
        let spec = ScenarioRegistry::synthetic_on_demand(i);
        fleet.admit(&format!("t{i}"), spec, sample_seed(i));
    }
    let admit = t0.elapsed();
    let warm_admissions = fleet.stats().warm_admissions;

    let mut latencies = Vec::with_capacity(n + n / 10);
    let mut answers = Vec::with_capacity(n + n / 10);
    let t1 = Instant::now();
    for i in 0..n {
        let name = format!("t{i}");
        let q = probe_query(&ScenarioRegistry::synthetic_on_demand(i));
        let tq = Instant::now();
        let a = fleet.query(&name, &q);
        latencies.push(tq.elapsed());
        answers.push(format!("{a:?}"));
        if i % 10 == 0 {
            fleet.append(&name, 8, 0xFEED ^ i as u64);
            fleet.relearn(&name);
            let tq = Instant::now();
            let a = fleet.query(&name, &q);
            latencies.push(tq.elapsed());
            answers.push(format!("{a:?}"));
        }
        if i % 50 == 49 {
            fleet.maintain();
        }
    }
    fleet.maintain();
    let mixed = t1.elapsed();
    TrafficOutcome {
        admit,
        mixed,
        latencies,
        answers,
        warm_admissions,
    }
}

struct SteadyOutcome {
    wall: Duration,
    answers: Vec<String>,
    hits: u64,
    misses: u64,
}

/// The steady-state pass: every tenant's probe asked twice back-to-back
/// with no appends or relearns — repeated serving traffic against
/// settled epochs. The immediate repeat is the sweep cache's bread and
/// butter (no maintain can intervene), so the pass yields the fleet's
/// steady-state hit rate alongside the answers (Debug-formatted —
/// bitwise faithful) for the cross-arm identity assertion.
fn steady_pass(fleet: &mut Fleet, n: usize) -> SteadyOutcome {
    let before = fleet.stats();
    let mut answers = Vec::with_capacity(2 * n);
    let t0 = Instant::now();
    for i in 0..n {
        let name = format!("t{i}");
        let q = probe_query(&ScenarioRegistry::synthetic_on_demand(i));
        answers.push(format!("{:?}", fleet.query(&name, &q)));
        answers.push(format!("{:?}", fleet.query(&name, &q)));
        if i % 50 == 49 {
            fleet.maintain();
        }
    }
    fleet.maintain();
    let wall = t0.elapsed();
    let after = fleet.stats();
    SteadyOutcome {
        wall,
        answers,
        hits: after.sweep_hits - before.sweep_hits,
        misses: after.sweep_misses - before.sweep_misses,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct Row {
    name: String,
    ns: Vec<u128>,
}

fn render_json(rows: &[Row], fleet_section: &str) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let min = row.ns.iter().min().expect("samples");
        let max = row.ns.iter().max().expect("samples");
        let mean = row.ns.iter().sum::<u128>() / row.ns.len() as u128;
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {min}, \"mean_ns\": {mean}, \"max_ns\": {max}, \"samples\": {}}}{sep}\n",
            row.name,
            row.ns.len(),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(fleet_section);
    out.push_str("}\n");
    out
}

fn main() {
    let n: usize = std::env::var("UNICORN_FLEET_TENANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1000);
    let samples: usize = std::env::var("UNICORN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);

    // Reference arm: unbounded. Fixes the expected answers and the cache
    // high-water mark the budget is derived from.
    println!("fleet: {n} tenants, unbounded reference arm");
    let mut reference = Fleet::new(FleetOptions {
        memory_budget: None,
        unicorn: fleet_unicorn_opts(),
        ..FleetOptions::default()
    });
    let ref_out = run_traffic(&mut reference, n);
    let (ref_segments, ref_caches) = reference.accounted_breakdown();
    let ref_steady = steady_pass(&mut reference, n);
    let ref_stats = reference.stats();
    assert!(
        ref_out.warm_admissions > 0,
        "replica groups must produce warm admissions"
    );
    if sweep_cache_enabled() {
        assert!(
            ref_steady.hits > 0,
            "unbounded steady-state repeats must hit the sweep cache"
        );
    }
    drop(reference);

    // The budget admits the raw floor plus a quarter of the unbounded
    // cache footprint: tight enough that the maintain pass must keep
    // evicting, loose enough that eviction can always reach it.
    let budget = ref_segments + ref_caches / 4;
    println!(
        "fleet: budget {budget} B (floor {ref_segments} B + {} B of {ref_caches} B caches), {samples} budgeted pass(es)",
        ref_caches / 4
    );

    let mut rows = vec![
        Row {
            name: format!("fleet_n{n}/admit_{n}"),
            ns: Vec::new(),
        },
        Row {
            name: format!("fleet_n{n}/mixed_traffic"),
            ns: Vec::new(),
        },
        Row {
            name: format!("fleet_n{n}/query_p50"),
            ns: Vec::new(),
        },
        Row {
            name: format!("fleet_n{n}/query_p99"),
            ns: Vec::new(),
        },
        Row {
            name: format!("fleet_n{n}/steady_state_pass"),
            ns: Vec::new(),
        },
    ];
    let mut last_stats = None;
    let mut throughput_qps = 0.0;
    let mut steady_hit_rate = 0.0;
    for pass in 0..samples {
        let mut fleet = Fleet::new(FleetOptions {
            memory_budget: Some(budget),
            unicorn: fleet_unicorn_opts(),
            ..FleetOptions::default()
        });
        let out = run_traffic(&mut fleet, n);
        let steady = steady_pass(&mut fleet, n);
        let stats = fleet.stats();

        // In-run acceptance assertions: evictions actually happened, the
        // post-sweep accounting (now including sweep-cache bytes)
        // respects the budget through the steady-state pass, and every
        // evicted-then-rederived answer — mixed traffic and steady
        // repeats alike — matches the unbounded arm bitwise.
        assert!(stats.evictions > 0, "budgeted arm must evict");
        assert!(
            stats.peak_bytes <= budget,
            "peak {} exceeds budget {budget}",
            stats.peak_bytes
        );
        assert_eq!(out.warm_admissions, ref_out.warm_admissions);
        assert_eq!(
            out.answers, ref_out.answers,
            "budgeted answers diverged from the unbounded arm"
        );
        assert_eq!(
            steady.answers, ref_steady.answers,
            "budgeted steady-state answers diverged from the unbounded arm"
        );
        if sweep_cache_enabled() {
            assert!(
                steady.hits > 0,
                "budgeted steady-state repeats must hit the sweep cache"
            );
        }

        let mut sorted = out.latencies.clone();
        sorted.sort();
        let queries = out.latencies.len();
        throughput_qps = queries as f64 / out.mixed.as_secs_f64();
        let probes = steady.hits + steady.misses;
        steady_hit_rate = if probes > 0 {
            steady.hits as f64 / probes as f64
        } else {
            0.0
        };
        println!(
            "pass {}/{samples}: admit {:?}, mixed {:?} ({queries} queries, {:.0} q/s), p50 {:?}, p99 {:?}, steady {:?} (hit rate {:.3}), evictions {}, peak {} B",
            pass + 1,
            out.admit,
            out.mixed,
            throughput_qps,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            steady.wall,
            steady_hit_rate,
            stats.evictions,
            stats.peak_bytes,
        );
        rows[0].ns.push(out.admit.as_nanos());
        rows[1].ns.push(out.mixed.as_nanos());
        rows[2].ns.push(percentile(&sorted, 0.50).as_nanos());
        rows[3].ns.push(percentile(&sorted, 0.99).as_nanos());
        rows[4].ns.push(steady.wall.as_nanos());
        last_stats = Some(stats);
    }

    let stats = last_stats.expect("at least one pass");
    let fleet_section = format!(
        "  \"fleet\": {{\"tenants\": {n}, \"budget_bytes\": {budget}, \"peak_bytes\": {}, \"unbounded_peak_bytes\": {}, \"evictions\": {}, \"warm_admissions\": {}, \"throughput_qps\": {:.1}, \"steady_hit_rate\": {:.3}, \"sweep_hits\": {}, \"sweep_misses\": {}}}\n",
        stats.peak_bytes,
        ref_stats.peak_bytes,
        stats.evictions,
        stats.warm_admissions,
        throughput_qps,
        steady_hit_rate,
        stats.sweep_hits,
        stats.sweep_misses,
    );
    let path =
        std::env::var("UNICORN_BENCH_JSON").unwrap_or_else(|_| "BENCH_fleet.json".to_string());
    std::fs::write(&path, render_json(&rows, &fleet_section)).expect("write fleet report");
    println!("fleet report -> {path}");
}
