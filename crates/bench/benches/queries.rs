//! The Stage III/V query-fan-out benchmark (`BENCH_queries.json`): the
//! debugging query sweep (root-cause ranking), the option-ACE table, and
//! the repair sweep on x264 at n = 1000, each in two arms:
//!
//! * `per_intervention` — the legacy serial path: one interventional
//!   g-formula sweep per estimate (the free functions in `ace`/`repair`,
//!   exactly what the engine did before the planner).
//! * `batched` — the engine's compiled [`unicorn_inference::QueryPlan`]:
//!   the whole query set deduplicated, ancestor-sharing per swept row,
//!   fanned over the worker pool, canonically merged.
//!
//! Both arms produce bit-identical answers
//! (`tests/query_plan_determinism.rs`); the benchmark measures the
//! latency win of planning. The batched arm wins even on a single core:
//! interventions recompute only the intervened nodes' descendants on top
//! of one shared baseline sweep, and overlapping path links are simulated
//! once.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unicorn_discovery::{learn_causal_model_on, DiscoveryOptions};
use unicorn_graph::{TierConstraints, VarKind};
use unicorn_inference::{
    generate_repairs, option_aces, rank_repairs, root_cause_candidates, CausalEngine,
    ExplicitDomain, FittedScm, QosGoal, RepairOptions,
};
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

struct Setup {
    engine: CausalEngine,
    domain: ExplicitDomain,
    tiers: TierConstraints,
    goal: QosGoal,
    objective: usize,
    fault_row: usize,
    repair_opts: RepairOptions,
}

fn setup() -> Setup {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    let ds = generate(&sim, 1000, 0xD4);
    let view = ds.view();
    let tiers = sim.model.tiers();
    let model = learn_causal_model_on(
        &view,
        &ds.names,
        &tiers,
        &DiscoveryOptions {
            alpha: 0.01,
            max_depth: 2,
            pds_depth: 1,
            ..Default::default()
        },
    );
    let scm = FittedScm::fit_view(model.admg, &view).expect("SCM fit");
    let objective = ds.objective_node(0);
    // Fault: the worst latency sample; QoS: restore to the median.
    let obj_col = ds.objective_column(0);
    let fault_row = obj_col
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
        .map(|(i, _)| i)
        .expect("non-empty sample");
    let goal = QosGoal::single(objective, unicorn_stats::quantile(obj_col, 0.5));
    let domain = ds.domains(&sim);
    let repair_opts = RepairOptions {
        max_pairs: 8,
        ..Default::default()
    };
    let engine = CausalEngine::new(scm, tiers.clone(), Arc::new(domain.clone()))
        .with_repair_options(repair_opts.clone());
    Setup {
        engine,
        domain,
        tiers,
        goal,
        objective,
        fault_row,
        repair_opts,
    }
}

/// The pre-planner `CausalEngine::rank_root_causes` loop, verbatim.
fn legacy_rank_root_causes(s: &Setup) -> Vec<(usize, f64)> {
    let scm = s.engine.scm();
    let candidates = root_cause_candidates(scm, &s.goal, &s.tiers, &s.domain, &s.repair_opts);
    let mut scores: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&o| {
            let total: f64 = s
                .goal
                .thresholds
                .iter()
                .map(|&(obj, _)| option_aces(scm, obj, &[o], &s.domain)[0].1)
                .sum();
            (o, total)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN ACE"));
    scores
}

/// The pre-planner `CausalEngine::recommend_repairs` loop, verbatim.
fn legacy_recommend_repairs(s: &Setup) -> Vec<unicorn_inference::Repair> {
    let scm = s.engine.scm();
    let candidates = root_cause_candidates(scm, &s.goal, &s.tiers, &s.domain, &s.repair_opts);
    let fault: Vec<f64> = (0..scm.n_vars())
        .map(|v| scm.data()[v][s.fault_row])
        .collect();
    let repairs = generate_repairs(&fault, &candidates, &s.domain, &s.repair_opts);
    rank_repairs(scm, &s.goal, s.fault_row, repairs, &s.repair_opts)
}

fn bench_queries(c: &mut Criterion) {
    let s = setup();
    let options = s.tiers.of_kind(VarKind::ConfigOption);

    // Cross-check once: the arms must agree bit for bit before timing.
    {
        let legacy: Vec<(usize, u64)> =
            option_aces(s.engine.scm(), s.objective, &options, &s.domain)
                .into_iter()
                .map(|(o, a)| (o, a.to_bits()))
                .collect();
        let batched: Vec<(usize, u64)> = s
            .engine
            .option_effects(s.objective)
            .into_iter()
            .map(|(o, a)| (o, a.to_bits()))
            .collect();
        assert_eq!(legacy, batched, "arms diverged — benchmark invalid");
    }

    let mut group = c.benchmark_group("queries_x264_n1000");
    group.sample_size(10);
    group.bench_function("option_aces/per_intervention", |b| {
        b.iter(|| {
            black_box(option_aces(
                s.engine.scm(),
                s.objective,
                &options,
                &s.domain,
            ))
        });
    });
    group.bench_function("option_aces/batched", |b| {
        b.iter(|| black_box(s.engine.option_effects(s.objective)));
    });
    group.bench_function("debug_fault_root_causes/per_intervention", |b| {
        b.iter(|| black_box(legacy_rank_root_causes(&s)));
    });
    group.bench_function("debug_fault_root_causes/batched", |b| {
        b.iter(|| black_box(s.engine.rank_root_causes(&s.goal)));
    });
    group.bench_function("repair_sweep/per_intervention", |b| {
        b.iter(|| black_box(legacy_recommend_repairs(&s)));
    });
    group.bench_function("repair_sweep/batched", |b| {
        b.iter(|| black_box(s.engine.recommend_repairs(&s.goal, s.fault_row)));
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
