//! The fig11-style relearn-loop benchmark (the Stage-IV wall-clock metric
//! the roadmap tracks per PR), split into its own target so CI can emit
//! its JSON report (`BENCH_relearn_loop.json`) alongside the discovery
//! microbenchmarks.
//!
//! Shape: start from n = 1000 measured x264 samples, then per iteration
//! append one measurement and rebuild the causal engine's SCM (Stage III
//! reads it every step), relearning the structure every 5 iterations, for
//! 50 iterations. The *cold* arm replays the PR 1 loop: every append
//! lands in a fresh-cache view over copied columns, every engine build
//! refits the SCM from scratch, and every relearn re-derives every
//! statistic. The *incremental* arm is the current production path:
//! one segmented view (O(new rows) appends, epoch-surviving caches),
//! one persistent worker pool reused by every stage
//! (`DiscoveryOptions::exec` plus `FittedScm::fit_view_on`), warm SCM
//! refits from cached per-segment Grams, and
//! `learn_causal_model_incremental` over a `RelearnSession`.
//! Both arms produce bit-identical models (`tests/incremental_relearn.rs`,
//! `tests/executor_determinism.rs`).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unicorn_discovery::{
    learn_causal_model_incremental, learn_causal_model_on, DiscoveryOptions, RelearnSession,
};
use unicorn_exec::Executor;
use unicorn_stats::dataview::DataView;
use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

fn bench_relearn_loop(c: &mut Criterion) {
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        0xBE,
    );
    const INITIAL: usize = 1000;
    const ITERATIONS: usize = 50;
    const RELEARN_EVERY: usize = 5;
    let stream = generate(&sim, INITIAL + ITERATIONS, 0xD3);
    let tiers = sim.model.tiers();
    // The Unicorn loop's discovery settings (UnicornOptions::default).
    let base_opts = DiscoveryOptions {
        alpha: 0.01,
        max_depth: 2,
        pds_depth: 1,
        ..Default::default()
    };
    let initial: Vec<Vec<f64>> = stream
        .columns
        .iter()
        .map(|c| c[..INITIAL].to_vec())
        .collect();
    let appended: Vec<Vec<f64>> = (INITIAL..INITIAL + ITERATIONS)
        .map(|r| stream.row(r))
        .collect();

    let mut group = c.benchmark_group("relearn_loop_x264_n1000_every5_x50");
    group.sample_size(10);
    group.bench_function("cold_fresh_caches", |b| {
        b.iter(|| {
            let mut cols = initial.clone();
            let mut model = None;
            for (i, row) in appended.iter().enumerate() {
                for (col, &v) in cols.iter_mut().zip(row) {
                    col.push(v);
                }
                // PR 1 appends started a fresh-cache view over copied
                // columns; the engine refit the SCM from scratch on it.
                let view = DataView::from_columns(&cols);
                if (i + 1) % RELEARN_EVERY == 0 {
                    model = Some(learn_causal_model_on(
                        &view,
                        &stream.names,
                        &tiers,
                        &base_opts,
                    ));
                }
                let m = model.get_or_insert_with(|| {
                    learn_causal_model_on(&view, &stream.names, &tiers, &base_opts)
                });
                black_box(
                    unicorn_inference::FittedScm::fit_view(m.admg.clone(), &view).expect("SCM fit"),
                );
            }
        });
    });
    group.bench_function("incremental", |b| {
        // One pool for the whole loop — the UnicornState policy: workers
        // are spawned at most once and reused by every relearn and fit.
        let pool = Executor::new(unicorn_exec::default_threads());
        let opts = DiscoveryOptions {
            exec: Some(Arc::clone(&pool)),
            ..base_opts.clone()
        };
        b.iter(|| {
            let mut view = DataView::from_columns(&initial);
            let mut session = RelearnSession::default();
            let mut model = None;
            let mut scm: Option<unicorn_inference::FittedScm> = None;
            for (i, row) in appended.iter().enumerate() {
                view = view.append_row(row);
                if (i + 1) % RELEARN_EVERY == 0 {
                    model = Some(learn_causal_model_incremental(
                        &view,
                        &stream.names,
                        &tiers,
                        &opts,
                        &mut session,
                    ));
                }
                let m = model.get_or_insert_with(|| {
                    learn_causal_model_incremental(
                        &view,
                        &stream.names,
                        &tiers,
                        &opts,
                        &mut session,
                    )
                });
                // Engine build: warm refit while the structure is stable
                // (the UnicornState::engine policy); the refit inherits
                // the fit's pool.
                scm = Some(match scm.take() {
                    Some(prev) if prev.admg() == &m.admg => {
                        prev.refit_view(&view).expect("SCM refit")
                    }
                    _ => unicorn_inference::FittedScm::fit_view_on(
                        m.admg.clone(),
                        &view,
                        Arc::clone(&pool),
                    )
                    .expect("SCM fit"),
                });
                black_box(scm.as_ref().map(unicorn_inference::FittedScm::n_rows));
            }
        });
        assert!(
            pool.workers_spawned() <= pool.threads().saturating_sub(1),
            "pool must not respawn workers"
        );
    });
    group.finish();
}

criterion_group!(benches, bench_relearn_loop);
criterion_main!(benches);
