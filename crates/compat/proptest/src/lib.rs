//! Offline stand-in for the `proptest` crate: the subset this workspace's
//! property tests use — the `proptest!` macro, `ProptestConfig`,
//! range/tuple/`prop::collection::vec` strategies, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed (derived
//! from the test name and case index), so failures are reproducible; there
//! is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property, carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Generates values of `Value` from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`. There is no shrinking in this
    /// stand-in, so the combinator is plain composition.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u8, i64, i32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Vectors of `element` with length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy produced by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = if self.len.start < self.len.end {
                    rng.gen_range(self.len.start..self.len.end)
                } else {
                    self.len.start
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Deterministic per-(test, case) RNG seed.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37))
}

/// Declares property tests: each listed function body runs for every
/// generated case; `prop_assert*` failures abort with the offending seed.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(
            x in 1usize..10,
            y in -2.0f64..2.0,
            v in prop::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((2..6).contains(&v.len()), "len was {}", v.len());
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn tuples_generate(p in (0usize..3, 0.5f64..1.5)) {
            prop_assert!(p.0 < 3);
            prop_assert_eq!(p.0, p.0);
            prop_assert!(p.1 >= 0.5 && p.1 < 1.5);
        }

        #[test]
        fn four_tuples_and_prop_map_compose(
            q in (0u8..4, 0usize..7, 0usize..7, -1.0f64..1.0).prop_map(|(k, a, b, t)| {
                (k as usize + a + b, t)
            }),
        ) {
            prop_assert!(q.0 < 16);
            prop_assert!(q.1 >= -1.0 && q.1 < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        use rand::Rng;
        let a: f64 = crate::case_rng("t", 3).gen();
        let b: f64 = crate::case_rng("t", 3).gen();
        let c: f64 = crate::case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
