//! Offline stand-in for the `rand` crate: the subset of the 0.8 API this
//! workspace uses (`Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`),
//! backed by a deterministic xoshiro256** generator seeded via SplitMix64.
//!
//! The build environment has no registry access, so this crate ships in-tree.
//! Streams differ from the real `rand` crate; every consumer in this
//! workspace treats seeds as opaque, so only statistical quality matters.

/// Types that can be sampled uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // Width in i128 so full-width signed ranges (e.g.
                // i64::MIN..0) cannot overflow the subtraction.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                // Debiased via rejection sampling on the top multiple of span.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return ((self.start as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                // Width in i128 so e = MAX (with any start) cannot
                // overflow; a full-width range maps the raw stream through.
                let width = (e as i128) - (s as i128);
                if width as u128 >= u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = width as u64 + 1;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return ((s as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
int_range!(usize, u64, u32, u8, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The random-number-generator interface.
pub trait Rng {
    /// The raw 64-bit stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for rand's
    /// `StdRng`; statistically strong, not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seeded() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[r.gen_range(0..5usize)] += 1;
        }
        for c in counts {
            assert!(c > 700, "bucket count {c}");
        }
        for _ in 0..100 {
            let v = r.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn inclusive_ranges_cover_extremes_without_overflow() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = r.gen_range(1u64..=u64::MAX);
            assert!(v >= 1);
            let w = r.gen_range(usize::MAX - 3..=usize::MAX);
            assert!(w >= usize::MAX - 3);
            let x = r.gen_range(i64::MIN..=i64::MIN + 2);
            assert!((i64::MIN..=i64::MIN + 2).contains(&x));
            let xe = r.gen_range(i64::MIN..0); // wide signed exclusive range
            assert!(xe < 0);
            let y = r.gen_range(0u64..=u64::MAX); // full width
            let _ = y;
            let z = r.gen_range(3u32..=3); // single point
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
