//! Offline stand-in for the `criterion` crate: the subset of the 0.5 API the
//! bench targets use (`Criterion`, `BenchmarkId`, groups, `criterion_group!`
//! / `criterion_main!`), measuring wall-clock time with `std::time::Instant`
//! and printing mean/min/max per benchmark.
//!
//! Tuning knobs (environment variables):
//! * `UNICORN_BENCH_SAMPLES` — iteration count override (default: the
//!   group's `sample_size`, or 20).
//! * `UNICORN_BENCH_MAX_SECS` — soft wall-clock budget per benchmark
//!   (default 5s): sampling stops early once exceeded.
//! * `UNICORN_BENCH_JSON` — when set to a path, every benchmark's
//!   min/mean/max and sample count are additionally written there as a
//!   machine-readable JSON report when the suite finishes (the per-PR
//!   perf-trajectory artifact uploaded by CI).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One reported benchmark, collected for the optional JSON report.
struct ReportEntry {
    name: String,
    min_ns: u128,
    mean_ns: u128,
    max_ns: u128,
    samples: usize,
}

fn report_log() -> &'static Mutex<Vec<ReportEntry>> {
    static LOG: Mutex<Vec<ReportEntry>> = Mutex::new(Vec::new());
    &LOG
}

/// Writes the collected results to `$UNICORN_BENCH_JSON` (no-op when the
/// variable is unset). Called by `criterion_main!` after all groups ran;
/// safe to call repeatedly — the file reflects everything reported so far.
pub fn write_json_report() {
    let Ok(path) = std::env::var("UNICORN_BENCH_JSON") else {
        return;
    };
    // Minimal JSON string escaping (Rust's {:?} uses \u{..}, which JSON
    // does not accept).
    fn json_string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    let entries = report_log().lock().expect("report log poisoned");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"samples\": {}}}{sep}\n",
            json_string(&e.name),
            e.min_ns,
            e.mean_ns,
            e.max_ns,
            e.samples
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("failed to write bench report to {path}: {err}");
    }
}

/// Labels a parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Collected per-iteration durations, read by the harness.
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize, budget: Duration) -> Self {
        Self {
            samples,
            budget,
            times: Vec::new(),
        }
    }

    /// Times `f` repeatedly (one warm-up iteration, then up to the sample
    /// budget), recording per-iteration wall-clock durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn report(name: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = *times.iter().min().expect("nonempty");
    let max = *times.iter().max().expect("nonempty");
    println!(
        "{name:<56} time: [{} {} {}]  ({} samples)",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max),
        times.len()
    );
    report_log()
        .lock()
        .expect("report log poisoned")
        .push(ReportEntry {
            name: name.to_string(),
            min_ns: min.as_nanos(),
            mean_ns: mean.as_nanos(),
            max_ns: max.as_nanos(),
            samples: times.len(),
        });
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget = env_usize("UNICORN_BENCH_MAX_SECS").unwrap_or(5);
        Self {
            default_samples: env_usize("UNICORN_BENCH_SAMPLES").unwrap_or(20),
            budget: Duration::from_secs(budget as u64),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.default_samples, self.budget);
        f(&mut b);
        report(name, &b.times);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.default_samples,
            criterion: self,
        }
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_usize("UNICORN_BENCH_SAMPLES").unwrap_or(n);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.samples, self.criterion.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.times);
        self
    }

    /// Runs a named benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.samples, self.criterion.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.times);
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark suite function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for one or more suites, writing the optional JSON
/// report (`UNICORN_BENCH_JSON`) after the last group finishes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut b = Bencher::new(5, Duration::from_secs(1));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(b.times.len(), 5);
        assert_eq!(n, 6); // warm-up + 5 samples
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("single", |b| b.iter(|| 1 + 1));
    }
}
