//! An inline small-vector of `u32` ids for cache keys.
//!
//! The skeleton hot loop probes the CI-outcome LRU once per conditioning
//! set; with `Vec<u32>` keys every probe allocates. [`SmallIdSet`] stores up
//! to [`SmallIdSet::INLINE`] ids on the stack (conditioning sets are almost
//! always tiny — the default search depth is 2) and spills to a boxed slice
//! only beyond that. Equality and hashing are defined over the logical
//! slice, so an inline set and a spilled set with the same ids compare and
//! hash identically.

use std::hash::{Hash, Hasher};

/// A compact sequence of `u32` ids: inline up to 8, heap-spilled beyond.
#[derive(Debug, Clone)]
pub enum SmallIdSet {
    /// Stack storage for at most [`SmallIdSet::INLINE`] ids.
    Inline {
        /// Number of live ids in `buf`.
        len: u8,
        /// Storage; only `buf[..len]` is meaningful.
        buf: [u32; SmallIdSet::INLINE],
    },
    /// Heap spill for longer sets.
    Heap(Box<[u32]>),
}

impl SmallIdSet {
    /// Maximum inline length.
    pub const INLINE: usize = 8;

    /// Builds from a slice of ids (inline when it fits).
    pub fn from_slice(ids: &[u32]) -> Self {
        if ids.len() <= Self::INLINE {
            let mut buf = [0u32; Self::INLINE];
            buf[..ids.len()].copy_from_slice(ids);
            SmallIdSet::Inline {
                len: ids.len() as u8,
                buf,
            }
        } else {
            SmallIdSet::Heap(ids.into())
        }
    }

    /// Builds from `usize` indices (the pervasive column-index type),
    /// without an intermediate `Vec` for the inline case.
    pub fn from_indices(ids: &[usize]) -> Self {
        if ids.len() <= Self::INLINE {
            let mut buf = [0u32; Self::INLINE];
            for (slot, &v) in buf.iter_mut().zip(ids) {
                *slot = v as u32;
            }
            SmallIdSet::Inline {
                len: ids.len() as u8,
                buf,
            }
        } else {
            SmallIdSet::Heap(ids.iter().map(|&v| v as u32).collect())
        }
    }

    /// The logical contents.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            SmallIdSet::Inline { len, buf } => &buf[..*len as usize],
            SmallIdSet::Heap(b) => b,
        }
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorts the ids in place (small sets sort on the stack).
    pub fn sort(&mut self) {
        match self {
            SmallIdSet::Inline { len, buf } => buf[..*len as usize].sort_unstable(),
            SmallIdSet::Heap(b) => b.sort_unstable(),
        }
    }
}

impl PartialEq for SmallIdSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SmallIdSet {}

impl Hash for SmallIdSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the logical slice so inline and spilled forms agree.
        self.as_slice().hash(state);
    }
}

impl From<&[usize]> for SmallIdSet {
    fn from(ids: &[usize]) -> Self {
        Self::from_indices(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(s: &SmallIdSet) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    #[test]
    fn inline_and_heap_forms_agree() {
        let ids: Vec<u32> = (0..8).collect();
        let inline = SmallIdSet::from_slice(&ids);
        let heap = SmallIdSet::Heap(ids.clone().into_boxed_slice());
        assert!(matches!(inline, SmallIdSet::Inline { .. }));
        assert_eq!(inline, heap);
        assert_eq!(hash_of(&inline), hash_of(&heap));
        assert_eq!(inline.as_slice(), &ids[..]);
    }

    #[test]
    fn spills_beyond_inline_capacity() {
        let ids: Vec<u32> = (0..9).collect();
        let s = SmallIdSet::from_slice(&ids);
        assert!(matches!(s, SmallIdSet::Heap(_)));
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn length_distinguishes_prefixes() {
        // Inline padding must not make [1] equal [1, 0].
        let a = SmallIdSet::from_slice(&[1]);
        let b = SmallIdSet::from_slice(&[1, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn sort_and_from_indices() {
        let mut s = SmallIdSet::from_indices(&[5, 2, 9]);
        s.sort();
        assert_eq!(s.as_slice(), &[2, 5, 9]);
        assert!(SmallIdSet::from_indices(&[]).is_empty());
    }
}
