//! The columnar data layer: an immutable, `Arc`-shared table of `f64`
//! columns carrying lazily-computed, cached sufficient statistics.
//!
//! Every layer of the pipeline (CI tests, skeleton search, entropic
//! resolution, SCM fitting, the active-learning loop) reads the same
//! observational sample thousands of times. A [`DataView`] computes each
//! statistic at most once per data epoch and shares it across clones:
//!
//! * per-column means / variances / standard deviations,
//! * the full Pearson correlation matrix (the Fisher-Z substrate),
//! * per-column discretizations keyed by `(bins, max_levels)`,
//! * an LRU of joint conditioning-set codes (the G-test contingency
//!   substrate) keyed by `(vars, bins, max_levels)`,
//! * an LRU of conditional-independence outcomes keyed by
//!   `(test kind, x, y, conditioning set)`.
//!
//! # Segmented storage
//!
//! Columns are stored as a sequence of immutable [`Segment`]s of
//! [`MOMENT_CHUNK`] rows each. Segmentation is canonical in the row count
//! (segment `k` always covers rows `[k·CHUNK, (k+1)·CHUNK)`), so
//! [`DataView::append_rows`] shares every sealed segment by `Arc` bump and
//! rebuilds only the trailing partial one — O(new rows), not O(all rows).
//! Column moments and the correlation matrix are Chan-merged from
//! per-segment summaries in segment order, the exact arithmetic of
//! [`crate::descriptive`] / [`crate::correlation::pearson`]; sealed-segment
//! summaries are computed once ever and shared by every descendant view.
//!
//! # Epochs, lineage & invalidation
//!
//! A `DataView` is immutable; cloning is an `Arc` bump. Every view carries
//! a globally unique *data epoch* and a *lineage* id. [`DataView::append_rows`]
//! produces a child with a fresh epoch; the first append from a view also
//! passes the discretization / joint-code / CI-outcome LRUs along (a second
//! append from the same parent — a fork — starts fresh caches and a new
//! lineage, so divergent branches can never contaminate each other).
//! Cached entries are epoch-tagged: a lookup hits only when the entry was
//! computed at the reader's epoch, otherwise the value is recomputed from
//! the reader's own data and overwritten in place. Appends therefore
//! *retain* the cache structure (capacity, hot keys) while every served
//! value remains a pure function of the reader's data — cached reads stay
//! bit-identical to direct recomputation (`tests/dataview_equivalence.rs`),
//! and outstanding clones of older views stay valid.
//!
//! Within a lineage, data is append-only, which enables two true
//! incremental upgrades: a categorical discretization whose value set
//! already covers the appended rows is extended in O(new rows) instead of
//! refit, and a joint conditioning-set encoding whose member fits all
//! survived in their prefix lineages extends its first-seen stratum codes
//! by the appended rows only. Both extensions are provably identical to a
//! cold rebuild.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::cache::{EpochLru, FxBuild};
use crate::correlation::pearson_from_moments;
use crate::descriptive::{
    merge_col_moments, merge_comoment, variance_of, ColMoments, MOMENT_CHUNK,
};
use crate::discretize::Discretizer;
use crate::matrix::Matrix;
use crate::segment::{n_pairs, pair_index, Segment};
use crate::smallset::SmallIdSet;

/// Per-column first and second moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample variance (n−1 denominator).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

/// A fitted discretization of one column: integer codes plus their arity.
#[derive(Debug, Clone)]
pub struct ColumnCodes {
    /// Integer code per row.
    pub codes: Vec<usize>,
    /// Number of distinct codes.
    pub arity: usize,
    /// The fitted discretizer (kept for incremental extension).
    disc: Discretizer,
    /// Rows covered when the fit was made.
    n_rows: usize,
    /// Identity of the append-only code prefix this fit belongs to: a cold
    /// fit mints a fresh id, an incremental extension inherits its base's.
    /// Two fits sharing a `prefix_lineage` therefore agree code-for-code on
    /// their common row prefix — the invariant the joint-code extension
    /// relies on.
    prefix_lineage: u64,
}

/// A joint encoding of a conditioning set: one stratum code per row.
/// Stratum codes are assigned in **first-seen row order**, so within a
/// member-code prefix lineage they are prefix-stable under appends — the
/// cached first-seen map lets [`DataView::joint_codes`] extend a stale
/// encoding by the appended rows only instead of re-coding every row.
#[derive(Debug, Clone)]
pub struct JointCodes {
    /// Stratum code per row.
    pub codes: Vec<usize>,
    /// Product of member arities (contingency-table stratum count).
    pub strata: f64,
    /// First-seen map from member-code tuples to stratum codes (kept for
    /// incremental extension).
    map: HashMap<Vec<usize>, usize, FxBuild>,
    /// `prefix_lineage` of each member fit this encoding was built from.
    member_lineages: Vec<u64>,
    /// Rows covered when the encoding was built.
    n_rows: usize,
}

impl ColumnCodes {
    /// Approximate resident bytes of this fit (codes payload plus fixed
    /// struct overhead; the discretizer's cut/value vector is counted).
    pub fn approx_bytes(&self) -> usize {
        let disc_values = match &self.disc {
            Discretizer::Categorical { values } => values.len(),
            Discretizer::Quantile { cuts } => cuts.len(),
        };
        std::mem::size_of::<Self>()
            + self.codes.len() * std::mem::size_of::<usize>()
            + disc_values * std::mem::size_of::<f64>()
    }
}

impl JointCodes {
    /// Distinct stratum count. First-seen codes are contiguous from 0, so
    /// this is also the exclusive code bound — the `nz` the dense CMI
    /// kernel needs without a `max`-scan.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Approximate resident bytes of this encoding: the per-row codes, the
    /// first-seen map's key tuples, and fixed struct overhead.
    pub fn approx_bytes(&self) -> usize {
        let usizes = std::mem::size_of::<usize>();
        std::mem::size_of::<Self>()
            + self.codes.len() * usizes
            + self
                .map
                .keys()
                .map(|k| (k.len() + 1) * usizes)
                .sum::<usize>()
            + self.member_lineages.len() * std::mem::size_of::<u64>()
    }
}

/// Appends first-seen-order stratum codes for rows `from..to` of the member
/// code columns — the exact assignment rule of
/// [`crate::entropy::joint_code`], factored so both the cold build
/// (`from = 0` on empty state) and the incremental extension share it.
fn extend_joint_codes(
    cols: &[Arc<ColumnCodes>],
    codes: &mut Vec<usize>,
    map: &mut HashMap<Vec<usize>, usize, FxBuild>,
    from: usize,
    to: usize,
) {
    for i in from..to {
        let key: Vec<usize> = cols.iter().map(|c| c.codes[i]).collect();
        let next = map.len();
        codes.push(*map.entry(key).or_insert(next));
    }
}

/// Key of a cached CI outcome: `(kind, x, y, conditioning set)` with
/// `x < y` (both supported tests are symmetric in their arguments). The
/// kind tag carries the test family plus any parameters that change its
/// arithmetic (e.g. G-test discretization settings). The conditioning set
/// is an inline [`SmallIdSet`], so probes for sets of at most 8 variables
/// never touch the allocator.
pub type CiKey = (u32, u32, u32, SmallIdSet);

const CI_CACHE_CAPACITY: usize = 65_536;
const JOINT_CACHE_CAPACITY: usize = 4_096;
const CODE_CACHE_CAPACITY: usize = 4_096;

/// Globally unique ids for data epochs and lineages.
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The epoch-tagged caches shared along a lineage of appended views.
struct Caches {
    // (col, bins, max_levels) → fitted codes.
    codes: EpochLru<(u32, u32, u32), Arc<ColumnCodes>>,
    // (vars, bins, max_levels) → joint stratum codes.
    joint: EpochLru<(SmallIdSet, u32, u32), Arc<JointCodes>>,
    // CI-test memo: (kind, x, y, z) → (statistic, p_value).
    ci: EpochLru<CiKey, (f64, f64)>,
    /// Joint encodings extended incrementally (vs re-coded cold) —
    /// observability so tests can prove the O(new rows) path actually
    /// fires (extension and cold rebuild are otherwise indistinguishable:
    /// first-seen codes are prefix-stable either way).
    joint_extensions: AtomicU64,
}

impl Caches {
    fn fresh() -> Arc<Caches> {
        Arc::new(Caches {
            codes: EpochLru::new(CODE_CACHE_CAPACITY),
            joint: EpochLru::new(JOINT_CACHE_CAPACITY),
            ci: EpochLru::new(CI_CACHE_CAPACITY),
            joint_extensions: AtomicU64::new(0),
        })
    }

    /// Approximate resident bytes of the three epoch-LRUs (the CI cache's
    /// values are inline in its entries, so only the per-entry overhead
    /// counts there).
    fn approx_bytes(&self) -> usize {
        self.codes.approx_bytes(|c| c.approx_bytes())
            + self.joint.approx_bytes(|j| j.approx_bytes())
            + self.ci.approx_bytes(|_| 0)
    }
}

struct Inner {
    segments: Vec<Arc<Segment>>,
    n_rows: usize,
    n_cols: usize,
    epoch: u64,
    lineage: u64,
    /// Set once this view has handed its caches to a child append; a
    /// second append (a fork) gets fresh caches and a new lineage.
    appended: AtomicBool,
    caches: Arc<Caches>,
    /// Lazily materialized contiguous columns (the seam with slice-based
    /// consumers: regression, discretizer fitting, legacy call sites).
    materialized: OnceLock<Vec<Vec<f64>>>,
    col_stats: OnceLock<Vec<ColumnStats>>,
    correlation: OnceLock<Matrix>,
}

/// An immutable, `Arc`-shared columnar table with cached sufficient
/// statistics. See the module docs for the segment/epoch/invalidation
/// rules.
#[derive(Clone)]
pub struct DataView {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DataView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataView")
            .field("n_cols", &self.n_cols())
            .field("n_rows", &self.n_rows())
            .field("epoch", &self.inner.epoch)
            .field("lineage", &self.inner.lineage)
            .field("segments", &self.inner.segments.len())
            .field("ci_cache", &self.inner.caches.ci)
            .finish()
    }
}

/// Splits contiguous columns into canonical segments.
fn segment_columns(columns: &[Vec<f64>], n_rows: usize) -> Vec<Arc<Segment>> {
    let mut segments = Vec::with_capacity(n_rows.div_ceil(MOMENT_CHUNK));
    let mut start = 0;
    while start < n_rows {
        let end = (start + MOMENT_CHUNK).min(n_rows);
        segments.push(Arc::new(Segment::new(
            columns.iter().map(|c| c[start..end].to_vec()).collect(),
        )));
        start = end;
    }
    segments
}

impl DataView {
    /// Builds a view over owned columns. All columns must share one length.
    pub fn new(columns: Vec<Vec<f64>>) -> Self {
        let n_rows = columns.first().map_or(0, Vec::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), n_rows, "column {i} has ragged length");
        }
        let n_cols = columns.len();
        let segments = segment_columns(&columns, n_rows);
        let materialized = OnceLock::new();
        // The caller's columns double as the materialized form (moved, not
        // copied).
        let _ = materialized.set(columns);
        Self {
            inner: Arc::new(Inner {
                segments,
                n_rows,
                n_cols,
                epoch: next_id(),
                lineage: next_id(),
                appended: AtomicBool::new(false),
                caches: Caches::fresh(),
                materialized,
                col_stats: OnceLock::new(),
                correlation: OnceLock::new(),
            }),
        }
    }

    /// Builds a view by cloning borrowed columns (the seam with legacy
    /// `&[Vec<f64>]` call sites).
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        Self::new(columns.to_vec())
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.inner.n_rows
    }

    /// Number of columns (variables).
    pub fn n_cols(&self) -> usize {
        self.inner.n_cols
    }

    /// The globally unique id of this view's data version. Two views share
    /// an epoch only when they share the identical rows; every append
    /// produces a fresh epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The id of the append chain this view belongs to. Within one lineage
    /// data is append-only: any member's rows are a prefix of any later
    /// member's rows.
    pub fn lineage(&self) -> u64 {
        self.inner.lineage
    }

    /// One column as a contiguous slice (materializes on first use).
    pub fn column(&self, i: usize) -> &[f64] {
        &self.columns()[i]
    }

    /// All columns, contiguous (interop with column-major call sites;
    /// materialized from the segments on first use, then cached).
    pub fn columns(&self) -> &[Vec<f64>] {
        self.inner.materialized.get_or_init(|| {
            let mut cols: Vec<Vec<f64>> = (0..self.inner.n_cols)
                .map(|_| Vec::with_capacity(self.inner.n_rows))
                .collect();
            for seg in &self.inner.segments {
                for (out, part) in cols.iter_mut().zip(seg.columns()) {
                    out.extend_from_slice(part);
                }
            }
            cols
        })
    }

    /// One full row, materialized (read straight from its segment).
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.inner.n_rows, "row {r} out of bounds");
        let seg = &self.inner.segments[r / MOMENT_CHUNK];
        let off = r % MOMENT_CHUNK;
        (0..self.inner.n_cols).map(|c| seg.col(c)[off]).collect()
    }

    /// Calls `f` for every value of column `col` in rows `from..n_rows`
    /// without materializing the column (the incremental-extension walk).
    fn for_column_tail(&self, col: usize, from: usize, mut f: impl FnMut(f64)) {
        let mut seg_idx = from / MOMENT_CHUNK;
        let mut off = from % MOMENT_CHUNK;
        while seg_idx < self.inner.segments.len() {
            for &v in &self.inner.segments[seg_idx].col(col)[off..] {
                f(v);
            }
            off = 0;
            seg_idx += 1;
        }
    }

    /// A new view over this view's rows extended by `rows` — the epoch
    /// bump of the active-learning loop. Sealed segments are shared by
    /// `Arc`; only the trailing partial segment is rebuilt, so the cost is
    /// O(new rows), not O(all rows). The first append from a view passes
    /// the epoch-tagged caches along (see the module docs); the old view
    /// and its statistics remain valid.
    pub fn append_rows(&self, rows: &[Vec<f64>]) -> DataView {
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), self.inner.n_cols, "row {r} width mismatch");
        }
        self.append_cells(rows.len(), |c, r| rows[r][c])
    }

    /// [`DataView::append_rows`] for a single borrowed row (no
    /// intermediate copy — the row lands directly in the new segment).
    pub fn append_row(&self, row: &[f64]) -> DataView {
        assert_eq!(row.len(), self.inner.n_cols, "row width mismatch");
        self.append_cells(1, |c, _| row[c])
    }

    /// Columnar counterpart of [`DataView::append_rows`]: appends
    /// `columns[c][r]` for every new row `r` straight from borrowed
    /// columns — no per-row `Vec` materialization. Dataset concatenation
    /// (a transfer update, a suite-scale merge) lands on the same
    /// segmented path: sealed segments shared by `Arc`, only the partial
    /// tail rebuilt, O(new rows).
    pub fn append_columns(&self, columns: &[Vec<f64>]) -> DataView {
        assert_eq!(columns.len(), self.inner.n_cols, "column-count mismatch");
        let n_new = columns.first().map_or(0, Vec::len);
        for (c, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n_new, "column {c} length mismatch");
        }
        self.append_cells(n_new, |c, r| columns[c][r])
    }

    /// The one segmented append body: `cell(col, row)` supplies the new
    /// values; callers adapt row- or column-major inputs.
    fn append_cells(&self, n_new: usize, cell: impl Fn(usize, usize) -> f64) -> DataView {
        // Appending nothing must not bump the epoch (the data is
        // identical) nor consume this view's one cache-inheriting append.
        if n_new == 0 {
            return self.clone();
        }
        let p = self.inner.n_cols;
        if p == 0 {
            return DataView::new(Vec::new());
        }
        let mut segments = self.inner.segments.clone();
        // Reopen the trailing partial segment (copy ≤ one chunk of rows).
        let mut builder: Vec<Vec<f64>> = match segments.last() {
            Some(s) if !s.is_sealed() => {
                let s = segments.pop().expect("just matched");
                s.columns()
                    .iter()
                    .map(|c| {
                        let mut v = Vec::with_capacity(MOMENT_CHUNK.min(c.len() + n_new));
                        v.extend_from_slice(c);
                        v
                    })
                    .collect()
            }
            _ => (0..p)
                .map(|_| Vec::with_capacity(MOMENT_CHUNK.min(n_new)))
                .collect(),
        };
        let mut n_rows = self.inner.n_rows;
        for r in 0..n_new {
            for (c, col) in builder.iter_mut().enumerate() {
                col.push(cell(c, r));
            }
            n_rows += 1;
            if builder[0].len() == MOMENT_CHUNK {
                let sealed = std::mem::replace(
                    &mut builder,
                    (0..p).map(|_| Vec::with_capacity(MOMENT_CHUNK)).collect(),
                );
                segments.push(Arc::new(Segment::new(sealed)));
            }
        }
        if !builder[0].is_empty() {
            segments.push(Arc::new(Segment::new(builder)));
        }
        // First append inherits the caches; a fork starts fresh ones so
        // divergent branches can never observe each other's data.
        let (caches, lineage) = if self.inner.appended.swap(true, Ordering::AcqRel) {
            (Caches::fresh(), next_id())
        } else {
            (Arc::clone(&self.inner.caches), self.inner.lineage)
        };
        DataView {
            inner: Arc::new(Inner {
                segments,
                n_rows,
                n_cols: p,
                epoch: next_id(),
                lineage,
                appended: AtomicBool::new(false),
                caches,
                materialized: OnceLock::new(),
                col_stats: OnceLock::new(),
                correlation: OnceLock::new(),
            }),
        }
    }

    /// Per-column moments, Chan-merged from the per-segment summaries in
    /// segment order — bit-identical to `mean`/`variance` on the contiguous
    /// column, and O(new rows) after an append (sealed-segment summaries
    /// are shared).
    pub fn column_stats(&self) -> &[ColumnStats] {
        self.inner.col_stats.get_or_init(|| {
            let p = self.inner.n_cols;
            let mut acc = vec![ColMoments::EMPTY; p];
            for seg in &self.inner.segments {
                let st = seg.stats();
                for (a, &b) in acc.iter_mut().zip(&st.cols) {
                    *a = merge_col_moments(*a, b);
                }
            }
            acc.into_iter()
                .map(|m| {
                    let v = variance_of(m);
                    ColumnStats {
                        mean: m.mean,
                        variance: v,
                        std_dev: v.sqrt(),
                    }
                })
                .collect()
        })
    }

    /// The full Pearson correlation matrix, Chan-merged from per-segment
    /// moments and comoments in segment order. The merge is the exact
    /// arithmetic of [`crate::correlation::pearson`] over canonical
    /// [`MOMENT_CHUNK`] chunks, so the result is bit-identical to
    /// [`crate::correlation::correlation_matrix`] on the contiguous
    /// columns while costing only O(p² · (new rows + segments)) after an
    /// append.
    pub fn correlation(&self) -> &Matrix {
        self.inner.correlation.get_or_init(|| {
            let p = self.inner.n_cols;
            let mut acc_cols = vec![ColMoments::EMPTY; p];
            let mut acc_cross = vec![0.0; n_pairs(p)];
            for seg in &self.inner.segments {
                let st = seg.stats();
                // Cross moments merge against the pre-merge column moments.
                for i in 0..p {
                    for j in (i + 1)..p {
                        let k = pair_index(i, j, p);
                        acc_cross[k] = merge_comoment(
                            acc_cross[k],
                            acc_cols[i],
                            acc_cols[j],
                            st.cross[k],
                            st.cols[i],
                            st.cols[j],
                        );
                    }
                }
                for (a, &b) in acc_cols.iter_mut().zip(&st.cols) {
                    *a = merge_col_moments(*a, b);
                }
            }
            let mut m = Matrix::identity(p);
            for i in 0..p {
                for j in (i + 1)..p {
                    let r = pearson_from_moments(
                        acc_cols[i],
                        acc_cols[j],
                        acc_cross[pair_index(i, j, p)],
                    );
                    m[(i, j)] = r;
                    m[(j, i)] = r;
                }
            }
            m
        })
    }

    /// The cached discretization of column `col` under `(bins, max_levels)`
    /// (see [`Discretizer::fit`]). After an append, a stale categorical fit
    /// whose value set still covers the new rows is extended in O(new
    /// rows); anything else is refit from the full column. Both paths are
    /// provably identical to a cold fit.
    pub fn codes(&self, col: usize, bins: usize, max_levels: usize) -> Arc<ColumnCodes> {
        let key = (col as u32, bins as u32, max_levels as u32);
        let epoch = self.inner.epoch;
        self.inner.caches.codes.get_or_insert_with(key, epoch, || {
            if let Some((_, stale)) = self.inner.caches.codes.stale(&key) {
                if let Some(extended) = self.try_extend_codes(&stale, col) {
                    return extended;
                }
            }
            // Cold fit straight off the cached per-segment sorted runs:
            // the categorical probe gallops (bailing at max_levels + 1
            // distinct values) and each quantile cut is a multi-run order
            // statistic — O(bins · log n) selection per epoch, never a
            // merged-column rescan. Identical to the rescan path
            // (`tests/dataview_equivalence.rs::quantile_cuts_match_rescan`).
            let runs: Vec<&[f64]> = self
                .inner
                .segments
                .iter()
                .map(|seg| seg.sorted_col(col).as_slice())
                .collect();
            let d = Discretizer::fit_runs(&runs, bins, max_levels);
            let column = &self.columns()[col];
            Arc::new(ColumnCodes {
                codes: d.transform(column),
                arity: d.arity(),
                disc: d,
                n_rows: self.inner.n_rows,
                prefix_lineage: next_id(),
            })
        })
    }

    /// Upgrades a same-lineage stale fit covering a prefix of this view's
    /// rows: valid as-is when the row counts match (lineages are
    /// append-only, so equal counts ⇒ identical data), extended row-by-row
    /// when the fit is categorical and every appended value is already in
    /// its value set (then a cold refit would produce the same sorted
    /// distinct values, hence the same codes).
    fn try_extend_codes(&self, stale: &Arc<ColumnCodes>, col: usize) -> Option<Arc<ColumnCodes>> {
        let n = self.inner.n_rows;
        if stale.n_rows > n {
            return None;
        }
        if stale.n_rows == n {
            return Some(Arc::clone(stale));
        }
        let Discretizer::Categorical { values } = &stale.disc else {
            return None;
        };
        let mut codes = Vec::with_capacity(n);
        codes.extend_from_slice(&stale.codes);
        let mut covered = true;
        self.for_column_tail(col, stale.n_rows, |v| {
            if covered {
                match values.binary_search_by(|probe| {
                    probe.partial_cmp(&v).expect("NaN in discretized column")
                }) {
                    Ok(_) => codes.push(stale.disc.code(v)),
                    Err(_) => covered = false,
                }
            }
        });
        if !covered {
            return None;
        }
        Some(Arc::new(ColumnCodes {
            codes,
            arity: stale.arity,
            disc: stale.disc.clone(),
            n_rows: n,
            // The extension appends to the stale fit's codes verbatim, so
            // it stays in the same append-only prefix lineage.
            prefix_lineage: stale.prefix_lineage,
        }))
    }

    /// Column `col` in ascending order, merged from the per-segment sorted
    /// runs (which are cached in the shared segments, so after an append
    /// only the rebuilt tail re-sorts; the tournament merge below is
    /// O(n log segments)). Sorting is a pure function of the value
    /// multiset, so the result is identical to sorting the contiguous
    /// column.
    pub fn sorted_column(&self, col: usize) -> Vec<f64> {
        fn merge(a: &[f64], b: &[f64]) -> Vec<f64> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            out
        }
        // Tournament (pairwise-doubling) merge of the runs.
        let mut runs: Vec<Vec<f64>> = self
            .inner
            .segments
            .iter()
            .map(|seg| seg.sorted_col(col).as_ref().clone())
            .collect();
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(merge(&a, &b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        runs.pop().unwrap_or_default()
    }

    /// The cached joint stratum encoding of the conditioning set `z` under
    /// `(bins, max_levels)` — the row-wise contingency-table coordinate
    /// shared by every G-test conditioning on `z`.
    ///
    /// After an append, a stale encoding whose member fits all survived in
    /// the same prefix lineage (categorical extensions, or unchanged fits)
    /// is **extended by the appended rows only**: first-seen-order stratum
    /// codes are prefix-stable whenever every member's code column is,
    /// so re-coding starts from the cached first-seen map instead of row
    /// zero — mirroring the categorical-discretization O(new rows) path.
    /// Any member that was refit cold (a quantile fit, or a novel
    /// categorical value) breaks the lineage and forces a cold re-code.
    /// Both paths are provably identical to [`crate::entropy::joint_code`]
    /// over the full member columns.
    pub fn joint_codes(&self, z: &[usize], bins: usize, max_levels: usize) -> Arc<JointCodes> {
        let key = (SmallIdSet::from_indices(z), bins as u32, max_levels as u32);
        let epoch = self.inner.epoch;
        let stale_key = key.clone();
        self.inner.caches.joint.get_or_insert_with(key, epoch, || {
            let n = self.inner.n_rows;
            let cols: Vec<Arc<ColumnCodes>> =
                z.iter().map(|&i| self.codes(i, bins, max_levels)).collect();
            let strata: f64 = cols.iter().map(|c| c.arity.max(1) as f64).product();
            let member_lineages: Vec<u64> = cols.iter().map(|c| c.prefix_lineage).collect();
            if let Some((_, stale)) = self.inner.caches.joint.stale(&stale_key) {
                // Every member still in its recorded prefix lineage ⇒ the
                // stale encoding is exactly what rows 0..stale.n_rows of
                // the current member columns produce; extend it.
                if stale.n_rows <= n && stale.member_lineages == member_lineages {
                    self.inner
                        .caches
                        .joint_extensions
                        .fetch_add(1, Ordering::Relaxed);
                    let mut codes = Vec::with_capacity(n);
                    codes.extend_from_slice(&stale.codes);
                    let mut map = stale.map.clone();
                    extend_joint_codes(&cols, &mut codes, &mut map, stale.n_rows, n);
                    return Arc::new(JointCodes {
                        codes,
                        strata,
                        map,
                        member_lineages,
                        n_rows: n,
                    });
                }
            }
            let mut codes = Vec::with_capacity(n);
            let mut map = HashMap::default();
            extend_joint_codes(&cols, &mut codes, &mut map, 0, n);
            Arc::new(JointCodes {
                codes,
                strata,
                map,
                member_lineages,
                n_rows: n,
            })
        })
    }

    /// Memoized CI outcome: returns the cached `(statistic, p_value)` for
    /// `key` at this view's data epoch, or computes and caches it.
    /// `compute` must be a pure function of the view data and the key. An
    /// entry computed at another epoch is never served — it is refreshed in
    /// place (this per-test epoch check is the "dirty edge" predicate of
    /// the incremental skeleton: after an append every outcome is stale
    /// exactly once, while repeat relearns on unchanged data hit every
    /// entry).
    pub fn ci_outcome(&self, key: CiKey, compute: impl FnOnce() -> (f64, f64)) -> (f64, f64) {
        self.inner
            .caches
            .ci
            .get_or_insert_with(key, self.inner.epoch, compute)
    }

    /// Hit count of the CI-outcome cache (observability for tests/benches).
    /// Counters are shared along an append lineage.
    pub fn ci_cache_hits(&self) -> u64 {
        self.inner.caches.ci.stats().hits()
    }

    /// Miss count of the CI-outcome cache.
    pub fn ci_cache_misses(&self) -> u64 {
        self.inner.caches.ci.stats().misses()
    }

    /// How many joint encodings were extended incrementally (rather than
    /// re-coded cold) along this view's lineage — observability for the
    /// O(new rows) joint-code guarantee.
    pub fn joint_code_extensions(&self) -> u64 {
        self.inner.caches.joint_extensions.load(Ordering::Relaxed)
    }

    /// True when `other` shares this view's allocation (Arc identity).
    pub fn same_table(&self, other: &DataView) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The canonical storage segments (consumers that maintain their own
    /// per-segment summaries — e.g. the SCM's cached regression Grams —
    /// key them by these `Arc` identities).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.inner.segments
    }

    /// Number of storage segments (observability for tests/benches).
    pub fn n_segments(&self) -> usize {
        self.inner.segments.len()
    }

    /// Approximate resident bytes of the raw segment data (including any
    /// materialized sorted runs and moment summaries). Segments are
    /// `Arc`-shared across views of one lineage; callers accounting a
    /// *set* of views should deduplicate by [`Self::segments`] `Arc`
    /// identity before summing per-segment bytes.
    pub fn segment_bytes(&self) -> usize {
        self.inner.segments.iter().map(|s| s.approx_bytes()).sum()
    }

    /// Approximate resident bytes of the epoch-tagged statistic caches
    /// (discretizations, joint encodings, CI outcomes). Caches are shared
    /// along a lineage (`Arc`), so two views of one lineage report the
    /// same pool — deduplicate by [`Self::lineage`] when accounting many
    /// views.
    pub fn cache_bytes(&self) -> usize {
        self.inner.caches.approx_bytes()
    }

    /// [`Self::segment_bytes`] + [`Self::cache_bytes`]: the whole
    /// approximate footprint of this view (double-counts nothing within
    /// one view; see the per-part docs for cross-view deduplication).
    pub fn approx_bytes(&self) -> usize {
        self.segment_bytes() + self.cache_bytes()
    }

    /// Drops every entry of the statistic caches shared along this view's
    /// lineage — the memory-budget eviction hook. Raw data (segments) and
    /// per-view lazy state are untouched, and everything evicted is a pure
    /// function of the data, so subsequent reads recompute bit-identical
    /// values; only the next probe of each key pays a recomputation.
    pub fn evict_statistic_caches(&self) {
        self.inner.caches.codes.clear();
        self.inner.caches.joint.clear();
        self.inner.caches.ci.clear();
    }

    /// Number of segments shared (by `Arc` identity) with `other` —
    /// observability for the O(new rows) append guarantee.
    pub fn shared_segments_with(&self, other: &DataView) -> usize {
        self.inner
            .segments
            .iter()
            .zip(&other.inner.segments)
            .take_while(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

/// Canonicalizes a CI-cache key: orders `(x, y)` and keeps `z` sorted, so
/// symmetric queries share one entry.
pub fn ci_key(kind: u32, x: usize, y: usize, z: &[usize]) -> CiKey {
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    let mut zs = SmallIdSet::from_indices(z);
    zs.sort();
    (kind, lo as u32, hi as u32, zs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::correlation_matrix;
    use crate::descriptive::{mean, variance};

    fn view() -> DataView {
        DataView::new(vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![1.0, 1.0, 2.0, 2.0],
        ])
    }

    #[test]
    fn shape_and_access() {
        let v = view();
        assert_eq!(v.n_rows(), 4);
        assert_eq!(v.n_cols(), 3);
        assert_eq!(v.column(1), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(v.row(2), vec![3.0, 6.0, 2.0]);
    }

    #[test]
    fn stats_match_direct_computation() {
        let v = view();
        let s = v.column_stats();
        assert_eq!(s[0].mean, mean(v.column(0)));
        assert_eq!(s[1].variance, variance(v.column(1)));
        // Cached correlation is the exact same function output.
        assert_eq!(*v.correlation(), correlation_matrix(v.columns()));
    }

    #[test]
    fn clone_shares_caches() {
        let v = view();
        let w = v.clone();
        assert!(v.same_table(&w));
        let c1 = v.correlation() as *const Matrix;
        let c2 = w.correlation() as *const Matrix;
        assert_eq!(c1, c2, "clones must share the cached matrix");
    }

    #[test]
    fn append_rows_invalidates_by_construction() {
        let v = view();
        let _ = v.correlation();
        let w = v.append_rows(&[vec![5.0, 10.0, 3.0], vec![6.0, 12.0, 3.0]]);
        assert!(!v.same_table(&w));
        assert_ne!(v.epoch(), w.epoch());
        assert_eq!(v.lineage(), w.lineage(), "first append keeps the lineage");
        assert_eq!(w.n_rows(), 6);
        assert_eq!(v.n_rows(), 4, "old view untouched");
        // The new view's correlation reflects the new rows.
        assert_eq!(*w.correlation(), correlation_matrix(w.columns()));
    }

    #[test]
    fn append_columns_matches_append_rows_bit_for_bit() {
        let n = MOMENT_CHUNK + 7; // crosses a segment boundary
        let new_cols: Vec<Vec<f64>> = (0..3)
            .map(|c| (0..n).map(|r| (r * 3 + c) as f64 * 0.5).collect())
            .collect();
        let new_rows: Vec<Vec<f64>> = (0..n)
            .map(|r| new_cols.iter().map(|c| c[r]).collect())
            .collect();
        let by_cols = view().append_columns(&new_cols);
        let by_rows = view().append_rows(&new_rows);
        assert_eq!(by_cols.n_rows(), by_rows.n_rows());
        assert_eq!(by_cols.columns(), by_rows.columns());
        assert_eq!(*by_cols.correlation(), *by_rows.correlation());
        assert_eq!(by_cols.column_stats(), by_rows.column_stats());
        // Sealed segments of the base view are shared, as for row appends.
        let v = view();
        let w = v.append_columns(&new_cols);
        assert_eq!(v.lineage(), w.lineage(), "first append keeps the lineage");
        // Appending zero rows is the no-op contract of append_rows.
        let empty: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let same = v.append_columns(&empty);
        assert!(v.same_table(&same));
    }

    #[test]
    fn appends_share_sealed_segments() {
        let n = 3 * MOMENT_CHUNK + 10;
        let cols: Vec<Vec<f64>> = (0..2)
            .map(|c| (0..n).map(|i| (i * (c + 1)) as f64).collect())
            .collect();
        let v = DataView::new(cols.clone());
        assert_eq!(v.n_segments(), 4);
        let w = v.append_row(&[1.0, 2.0]);
        // The three sealed segments are shared; only the partial tail is
        // rebuilt.
        assert_eq!(w.shared_segments_with(&v), 3);
        assert_eq!(w.n_rows(), n + 1);
        // Grown-view statistics equal a cold rebuild, bit for bit.
        let mut full = cols;
        full[0].push(1.0);
        full[1].push(2.0);
        let cold = DataView::new(full);
        assert_eq!(*w.correlation(), *cold.correlation());
        assert_eq!(w.column_stats(), cold.column_stats());
        assert_eq!(w.columns(), cold.columns());
    }

    #[test]
    fn empty_append_is_identity() {
        let v = view();
        let w = v.append_rows(&[]);
        assert!(v.same_table(&w), "empty append must not mint a new view");
        // The real first append afterwards still inherits the caches.
        let a = v.append_row(&[0.0, 0.0, 1.0]);
        assert_eq!(a.lineage(), v.lineage());
    }

    #[test]
    fn second_append_forks_lineage() {
        let v = view();
        let a = v.append_row(&[0.0, 0.0, 0.0]);
        let b = v.append_row(&[9.0, 9.0, 9.0]);
        assert_eq!(a.lineage(), v.lineage());
        assert_ne!(b.lineage(), v.lineage(), "fork must isolate its caches");
        // Both branches still compute correct (their own) statistics.
        assert_eq!(*a.correlation(), correlation_matrix(a.columns()));
        assert_eq!(*b.correlation(), correlation_matrix(b.columns()));
    }

    #[test]
    fn codes_cached_and_equal_to_direct() {
        let v = view();
        let a = v.codes(2, 5, 8);
        let d = Discretizer::fit(v.column(2), 5, 8);
        assert_eq!(a.codes, d.transform(v.column(2)));
        assert_eq!(a.arity, d.arity());
        let b = v.codes(2, 5, 8);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn codes_extend_incrementally_across_appends() {
        // Column 2 is categorical with values {1, 2}; appending covered
        // values must extend the stale fit rather than refit.
        let v = view();
        let before = v.codes(2, 5, 8);
        let w = v.append_row(&[5.0, 10.0, 1.0]);
        let after = w.codes(2, 5, 8);
        let d = Discretizer::fit(w.column(2), 5, 8);
        assert_eq!(after.codes, d.transform(w.column(2)));
        assert_eq!(after.arity, before.arity);
        assert_eq!(after.codes[..4], before.codes[..]);
        // A novel value forces a refit — still identical to direct.
        let u = w.append_row(&[0.0, 0.0, 7.5]);
        let refit = u.codes(2, 5, 8);
        let d2 = Discretizer::fit(u.column(2), 5, 8);
        assert_eq!(refit.codes, d2.transform(u.column(2)));
        assert_eq!(refit.arity, d2.arity());
    }

    #[test]
    fn joint_codes_strata_product() {
        let v = view();
        let j = v.joint_codes(&[0, 2], 5, 8);
        let a0 = v.codes(0, 5, 8).arity;
        let a2 = v.codes(2, 5, 8).arity;
        assert_eq!(j.strata, (a0 * a2) as f64);
        assert_eq!(j.codes.len(), v.n_rows());
    }

    /// The cold joint encoding must reproduce `entropy::joint_code` on the
    /// member code columns, bit for bit (same first-seen assignment rule).
    #[test]
    fn joint_codes_match_entropy_joint_code() {
        let v = view();
        let j = v.joint_codes(&[0, 2], 5, 8);
        let c0 = v.codes(0, 5, 8);
        let c2 = v.codes(2, 5, 8);
        let direct = crate::entropy::joint_code(&[&c0.codes, &c2.codes], v.n_rows());
        assert_eq!(j.codes, direct);
    }

    /// Appending rows whose member values are already covered extends the
    /// cached joint encoding along the lineage; every step must equal a
    /// cold re-code of the grown member columns.
    #[test]
    fn joint_codes_extend_incrementally_across_appends() {
        // Two categorical columns (values {1,2} and {0,1}).
        let mut v = DataView::new(vec![
            vec![1.0, 2.0, 1.0, 2.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![1.0, 2.0, 2.0, 1.0],
        ]);
        let first = v.joint_codes(&[0, 1], 5, 8);
        assert_eq!(first.n_rows, 4);
        for step in 0..3 {
            let row = [
                vec![1.0, 1.0, 2.0],
                vec![2.0, 0.0, 1.0],
                vec![2.0, 1.0, 1.0],
            ][step]
                .clone();
            v = v.append_row(&row);
            let j = v.joint_codes(&[0, 1], 5, 8);
            let c0 = v.codes(0, 5, 8);
            let c1 = v.codes(1, 5, 8);
            let cold = crate::entropy::joint_code(&[&c0.codes, &c1.codes], v.n_rows());
            assert_eq!(j.codes, cold, "step {step} diverged from cold re-code");
            assert_eq!(j.n_rows, v.n_rows());
            // The O(new rows) path must actually have fired (equality
            // alone cannot distinguish it from a cold fallback).
            assert_eq!(
                v.joint_code_extensions(),
                step as u64 + 1,
                "step {step} fell back to a cold re-code"
            );
            // The member fits survived in their prefix lineages, so the
            // encoding extended instead of restarting: the prefix is the
            // previous encoding verbatim.
            assert_eq!(&j.codes[..j.codes.len() - 1], {
                let prev = v.n_rows() - 1;
                &crate::entropy::joint_code(&[&c0.codes[..prev], &c1.codes[..prev]], prev)[..]
            });
        }
    }

    /// A novel categorical value refits the member cold (new prefix
    /// lineage), which must force a cold joint re-code — still identical
    /// to direct computation.
    #[test]
    fn joint_codes_fall_back_cold_on_lineage_break() {
        let mut v = DataView::new(vec![vec![1.0, 2.0, 1.0, 2.0], vec![0.0, 1.0, 0.0, 1.0]]);
        let _ = v.joint_codes(&[0, 1], 5, 8);
        // 9.0 is a novel value for column 0: its fit restarts.
        v = v.append_row(&[9.0, 0.0]);
        let j = v.joint_codes(&[0, 1], 5, 8);
        let c0 = v.codes(0, 5, 8);
        let c1 = v.codes(1, 5, 8);
        let cold = crate::entropy::joint_code(&[&c0.codes, &c1.codes], v.n_rows());
        assert_eq!(j.codes, cold);
        assert_eq!(
            v.joint_code_extensions(),
            0,
            "a broken member lineage must force the cold path"
        );
    }

    #[test]
    fn approx_bytes_and_eviction_roundtrip() {
        let v = view();
        let raw = v.segment_bytes();
        assert!(raw >= 3 * 4 * std::mem::size_of::<f64>());
        assert_eq!(v.cache_bytes(), 0, "no statistics cached yet");

        // Populate all three caches.
        let codes_before = v.codes(2, 5, 8);
        let joint_before = v.joint_codes(&[0, 2], 5, 8);
        let ci_before = v.ci_outcome(ci_key(0, 0, 1, &[]), || (1.5, 0.25));
        let warm = v.cache_bytes();
        assert!(warm > 0, "cached statistics must be visible");
        assert_eq!(v.approx_bytes(), v.segment_bytes() + warm);

        // Warming the codes cache materialized sorted runs inside the
        // segments; those are data-side state and counted there.
        let raw_warm = v.segment_bytes();
        assert!(raw_warm >= raw);

        // Eviction clears only the caches, never the data…
        v.evict_statistic_caches();
        assert_eq!(v.cache_bytes(), 0);
        assert_eq!(v.segment_bytes(), raw_warm);
        assert_eq!(v.n_rows(), 4);

        // …and re-derivation is bit-identical.
        let codes_after = v.codes(2, 5, 8);
        assert_eq!(codes_after.codes, codes_before.codes);
        assert_eq!(codes_after.arity, codes_before.arity);
        let joint_after = v.joint_codes(&[0, 2], 5, 8);
        assert_eq!(joint_after.codes, joint_before.codes);
        assert_eq!(joint_after.strata.to_bits(), joint_before.strata.to_bits());
        let ci_after = v.ci_outcome(ci_key(0, 0, 1, &[]), || (1.5, 0.25));
        assert_eq!(ci_after.0.to_bits(), ci_before.0.to_bits());
        assert_eq!(ci_after.1.to_bits(), ci_before.1.to_bits());
    }

    #[test]
    fn ci_outcome_memoizes() {
        let v = view();
        let k = ci_key(0, 2, 0, &[1]);
        assert_eq!(k, ci_key(0, 0, 2, &[1]), "key must be symmetric in x,y");
        let first = v.ci_outcome(k.clone(), || (1.5, 0.25));
        let second = v.ci_outcome(k, || panic!("must not recompute"));
        assert_eq!(first, second);
        assert_eq!(v.ci_cache_hits(), 1);
        assert_eq!(v.ci_cache_misses(), 1);
    }

    #[test]
    fn ci_cache_survives_appends_but_never_serves_stale_values() {
        let v = view();
        let k = ci_key(0, 0, 1, &[]);
        let old = v.ci_outcome(k.clone(), || (1.0, 0.5));
        assert_eq!(old, (1.0, 0.5));
        let w = v.append_row(&[7.0, 7.0, 1.0]);
        // Same key, new epoch: the stale entry must be refreshed.
        let new = w.ci_outcome(k.clone(), || (2.0, 0.25));
        assert_eq!(new, (2.0, 0.25));
        // And the refreshed entry now hits at the new epoch.
        let hit = w.ci_outcome(k, || panic!("must hit refreshed entry"));
        assert_eq!(hit, (2.0, 0.25));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        DataView::new(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
