//! The columnar data layer: an immutable, `Arc`-shared table of `f64`
//! columns carrying lazily-computed, cached sufficient statistics.
//!
//! Every layer of the pipeline (CI tests, skeleton search, entropic
//! resolution, SCM fitting, the active-learning loop) reads the same
//! observational sample thousands of times. Before this module each layer
//! re-derived what it needed — discretizations, means, the correlation
//! matrix, contingency/joint codes — from raw `Vec<Vec<f64>>` clones at
//! every crate boundary. A [`DataView`] computes each statistic at most
//! once per view and shares it across clones:
//!
//! * per-column means / variances / standard deviations,
//! * the full Pearson correlation matrix (the Fisher-Z substrate),
//! * per-column discretizations keyed by `(bins, max_levels)`,
//! * an LRU of joint conditioning-set codes (the G-test contingency
//!   substrate) keyed by `(vars, bins, max_levels)`,
//! * an LRU of conditional-independence outcomes keyed by
//!   `(test kind, x, y, conditioning set)`.
//!
//! # Ownership & invalidation
//!
//! A `DataView` is immutable; cloning is an `Arc` bump. Growing the sample
//! (the active-learning loop's Stage IV) goes through [`DataView::append_rows`],
//! which builds a *new* view over the extended columns with *fresh, empty*
//! caches — statistics of the old sample are never silently reused for the
//! new one, and outstanding clones of the old view stay valid. Since every
//! cached value is a pure function of the immutable column data, cached
//! reads are bit-identical to direct recomputation.

use std::sync::{Arc, OnceLock};

use crate::cache::ShardedLru;
use crate::correlation::correlation_matrix;
use crate::descriptive::{mean, variance};
use crate::discretize::Discretizer;
use crate::entropy::joint_code;
use crate::matrix::Matrix;

/// Per-column first and second moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample variance (n−1 denominator).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

/// A fitted discretization of one column: integer codes plus their arity.
#[derive(Debug, Clone)]
pub struct ColumnCodes {
    /// Integer code per row.
    pub codes: Vec<usize>,
    /// Number of distinct codes.
    pub arity: usize,
}

/// A joint encoding of a conditioning set: one stratum code per row.
#[derive(Debug, Clone)]
pub struct JointCodes {
    /// Stratum code per row.
    pub codes: Vec<usize>,
    /// Product of member arities (contingency-table stratum count).
    pub strata: f64,
}

/// Key of a cached CI outcome: `(kind, x, y, conditioning set)` with
/// `x < y` (both supported tests are symmetric in their arguments). The
/// kind tag carries the test family plus any parameters that change its
/// arithmetic (e.g. G-test discretization settings).
pub type CiKey = (u32, u32, u32, Vec<u32>);

struct Inner {
    columns: Vec<Vec<f64>>,
    n_rows: usize,
    col_stats: OnceLock<Vec<ColumnStats>>,
    correlation: OnceLock<Matrix>,
    // (col, bins, max_levels) → fitted codes. Discretizations are few and
    // hot (one per column per parameterization), so no eviction.
    codes: ShardedLru<(u32, u32, u32), Arc<ColumnCodes>>,
    // (vars, bins, max_levels) → joint stratum codes.
    joint: ShardedLru<(Vec<u32>, u32, u32), Arc<JointCodes>>,
    // CI-test memo: (kind, x, y, z) → (statistic, p_value).
    ci: ShardedLru<CiKey, (f64, f64)>,
}

/// An immutable, `Arc`-shared columnar table with cached sufficient
/// statistics. See the module docs for the ownership and invalidation
/// rules.
#[derive(Clone)]
pub struct DataView {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DataView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataView")
            .field("n_cols", &self.n_cols())
            .field("n_rows", &self.n_rows())
            .field("ci_cache", &self.inner.ci)
            .finish()
    }
}

const CI_CACHE_CAPACITY: usize = 65_536;
const JOINT_CACHE_CAPACITY: usize = 4_096;
const CODE_CACHE_CAPACITY: usize = 4_096;

impl DataView {
    /// Builds a view over owned columns. All columns must share one length.
    pub fn new(columns: Vec<Vec<f64>>) -> Self {
        let n_rows = columns.first().map_or(0, Vec::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), n_rows, "column {i} has ragged length");
        }
        Self {
            inner: Arc::new(Inner {
                columns,
                n_rows,
                col_stats: OnceLock::new(),
                correlation: OnceLock::new(),
                codes: ShardedLru::new(CODE_CACHE_CAPACITY),
                joint: ShardedLru::new(JOINT_CACHE_CAPACITY),
                ci: ShardedLru::new(CI_CACHE_CAPACITY),
            }),
        }
    }

    /// Builds a view by cloning borrowed columns (the seam with legacy
    /// `&[Vec<f64>]` call sites).
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        Self::new(columns.to_vec())
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.inner.n_rows
    }

    /// Number of columns (variables).
    pub fn n_cols(&self) -> usize {
        self.inner.columns.len()
    }

    /// One column as a slice.
    pub fn column(&self, i: usize) -> &[f64] {
        &self.inner.columns[i]
    }

    /// All columns (interop with column-major call sites).
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.inner.columns
    }

    /// One full row, materialized.
    pub fn row(&self, r: usize) -> Vec<f64> {
        self.inner.columns.iter().map(|c| c[r]).collect()
    }

    /// A new view over this view's columns extended by `rows`, with fresh
    /// (empty) caches — the cache-invalidation point of the active-learning
    /// loop. The old view and its statistics remain valid.
    pub fn append_rows(&self, rows: &[Vec<f64>]) -> DataView {
        let mut columns = self.inner.columns.clone();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), columns.len(), "row {r} width mismatch");
            for (col, &v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        DataView::new(columns)
    }

    /// [`DataView::append_rows`] for a single row.
    pub fn append_row(&self, row: &[f64]) -> DataView {
        self.append_rows(&[row.to_vec()])
    }

    /// Per-column moments, computed once per view.
    pub fn column_stats(&self) -> &[ColumnStats] {
        self.inner.col_stats.get_or_init(|| {
            self.inner
                .columns
                .iter()
                .map(|c| {
                    let v = variance(c);
                    ColumnStats {
                        mean: mean(c),
                        variance: v,
                        std_dev: v.sqrt(),
                    }
                })
                .collect()
        })
    }

    /// The full Pearson correlation matrix, computed once per view with
    /// [`correlation_matrix`] (so cached and direct results are identical).
    pub fn correlation(&self) -> &Matrix {
        self.inner
            .correlation
            .get_or_init(|| correlation_matrix(&self.inner.columns))
    }

    /// The cached discretization of column `col` under `(bins, max_levels)`
    /// (see [`Discretizer::fit`]).
    pub fn codes(&self, col: usize, bins: usize, max_levels: usize) -> Arc<ColumnCodes> {
        let key = (col as u32, bins as u32, max_levels as u32);
        self.inner.codes.get_or_insert_with(key, || {
            let d = Discretizer::fit(&self.inner.columns[col], bins, max_levels);
            Arc::new(ColumnCodes {
                codes: d.transform(&self.inner.columns[col]),
                arity: d.arity(),
            })
        })
    }

    /// The cached joint stratum encoding of the conditioning set `z` under
    /// `(bins, max_levels)` — the row-wise contingency-table coordinate
    /// shared by every G-test conditioning on `z`.
    pub fn joint_codes(&self, z: &[usize], bins: usize, max_levels: usize) -> Arc<JointCodes> {
        let key: (Vec<u32>, u32, u32) = (
            z.iter().map(|&v| v as u32).collect(),
            bins as u32,
            max_levels as u32,
        );
        self.inner.joint.get_or_insert_with(key, || {
            let cols: Vec<Arc<ColumnCodes>> =
                z.iter().map(|&i| self.codes(i, bins, max_levels)).collect();
            let refs: Vec<&[usize]> = cols.iter().map(|c| c.codes.as_slice()).collect();
            let strata: f64 = cols.iter().map(|c| c.arity.max(1) as f64).product();
            Arc::new(JointCodes {
                codes: joint_code(&refs, self.inner.n_rows),
                strata,
            })
        })
    }

    /// Memoized CI outcome: returns the cached `(statistic, p_value)` for
    /// `key` or computes and caches it. `compute` must be a pure function
    /// of the view data and the key.
    pub fn ci_outcome(&self, key: CiKey, compute: impl FnOnce() -> (f64, f64)) -> (f64, f64) {
        self.inner.ci.get_or_insert_with(key, compute)
    }

    /// Hit count of the CI-outcome cache (observability for tests/benches).
    pub fn ci_cache_hits(&self) -> u64 {
        self.inner.ci.stats().hits()
    }

    /// Miss count of the CI-outcome cache.
    pub fn ci_cache_misses(&self) -> u64 {
        self.inner.ci.stats().misses()
    }

    /// True when `other` shares this view's allocation (Arc identity).
    pub fn same_table(&self, other: &DataView) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Canonicalizes a CI-cache key: orders `(x, y)` and keeps `z` sorted, so
/// symmetric queries share one entry.
pub fn ci_key(kind: u32, x: usize, y: usize, z: &[usize]) -> CiKey {
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    let mut zs: Vec<u32> = z.iter().map(|&v| v as u32).collect();
    zs.sort_unstable();
    (kind, lo as u32, hi as u32, zs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> DataView {
        DataView::new(vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![1.0, 1.0, 2.0, 2.0],
        ])
    }

    #[test]
    fn shape_and_access() {
        let v = view();
        assert_eq!(v.n_rows(), 4);
        assert_eq!(v.n_cols(), 3);
        assert_eq!(v.column(1), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(v.row(2), vec![3.0, 6.0, 2.0]);
    }

    #[test]
    fn stats_match_direct_computation() {
        let v = view();
        let s = v.column_stats();
        assert_eq!(s[0].mean, mean(v.column(0)));
        assert_eq!(s[1].variance, variance(v.column(1)));
        // Cached correlation is the exact same function output.
        assert_eq!(*v.correlation(), correlation_matrix(v.columns()));
    }

    #[test]
    fn clone_shares_caches() {
        let v = view();
        let w = v.clone();
        assert!(v.same_table(&w));
        let c1 = v.correlation() as *const Matrix;
        let c2 = w.correlation() as *const Matrix;
        assert_eq!(c1, c2, "clones must share the cached matrix");
    }

    #[test]
    fn append_rows_invalidates_by_construction() {
        let v = view();
        let _ = v.correlation();
        let w = v.append_rows(&[vec![5.0, 10.0, 3.0], vec![6.0, 12.0, 3.0]]);
        assert!(!v.same_table(&w));
        assert_eq!(w.n_rows(), 6);
        assert_eq!(v.n_rows(), 4, "old view untouched");
        // The new view's correlation reflects the new rows.
        assert_eq!(*w.correlation(), correlation_matrix(w.columns()));
    }

    #[test]
    fn codes_cached_and_equal_to_direct() {
        let v = view();
        let a = v.codes(2, 5, 8);
        let d = Discretizer::fit(v.column(2), 5, 8);
        assert_eq!(a.codes, d.transform(v.column(2)));
        assert_eq!(a.arity, d.arity());
        let b = v.codes(2, 5, 8);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn joint_codes_strata_product() {
        let v = view();
        let j = v.joint_codes(&[0, 2], 5, 8);
        let a0 = v.codes(0, 5, 8).arity;
        let a2 = v.codes(2, 5, 8).arity;
        assert_eq!(j.strata, (a0 * a2) as f64);
        assert_eq!(j.codes.len(), v.n_rows());
    }

    #[test]
    fn ci_outcome_memoizes() {
        let v = view();
        let k = ci_key(0, 2, 0, &[1]);
        assert_eq!(k, ci_key(0, 0, 2, &[1]), "key must be symmetric in x,y");
        let first = v.ci_outcome(k.clone(), || (1.5, 0.25));
        let second = v.ci_outcome(k, || panic!("must not recompute"));
        assert_eq!(first, second);
        assert_eq!(v.ci_cache_hits(), 1);
        assert_eq!(v.ci_cache_misses(), 1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        DataView::new(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
