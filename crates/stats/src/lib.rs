//! # unicorn-stats
//!
//! Self-contained statistics and numerics substrate for the Unicorn
//! (EuroSys '22) reproduction. Because no suitable causal-discovery or
//! statistics crates exist offline, everything here is implemented from
//! first principles: dense linear algebra, special functions, probability
//! distributions, correlation and conditional-independence tests, entropy
//! estimators, discretization, stepwise polynomial regression, and
//! multi-objective quality indicators.
//!
//! The API is deliberately small and deterministic: no global state, no
//! RNG (callers that need randomness seed their own `rand` generators).

pub mod cache;
pub mod correlation;
pub mod dataview;
pub mod descriptive;
pub mod discretize;
pub mod dist;
pub mod entropy;
pub mod independence;
pub mod matrix;
pub mod parallel;
pub mod pareto;
pub mod ranking;
pub mod regression;
pub mod segment;
pub mod smallset;
pub mod special;

pub use cache::{CacheStats, EpochLru, LruCache, ShardedLru};
pub use correlation::{correlation_matrix, partial_correlation, pearson, spearman};
pub use dataview::{ColumnCodes, ColumnStats, DataView, JointCodes};
pub use descriptive::{mape, mean, median, quantile, r_squared, standardize, std_dev, variance};
pub use discretize::{discretize_columns, Discretizer};
pub use entropy::{
    conditional_mutual_information, conditional_mutual_information_bounded,
    conditional_mutual_information_sparse, entropy, mutual_information, mutual_information_bounded,
    mutual_information_sparse,
};
pub use independence::{CiOutcome, CiTest, FisherZ, GTest, MixedTest};
pub use matrix::{ols, Matrix};
pub use parallel::{default_threads, par_map};
pub use pareto::{dominates, hypervolume_2d, hypervolume_error, pareto_front};
pub use ranking::{jaccard, ranks_with_ties, weighted_jaccard};
pub use regression::{bic, fit_terms, stepwise_fit, PolyModel, StepwiseOptions, Term};
pub use smallset::SmallIdSet;

/// Errors surfaced by the numerics layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// Operation requires a square matrix.
    NotSquare,
    /// Cholesky factorization of a non-positive-definite matrix.
    NotPositiveDefinite,
    /// Matrix is numerically singular.
    Singular,
    /// Incompatible dimensions.
    DimensionMismatch,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NotSquare => write!(f, "matrix is not square"),
            StatsError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            StatsError::Singular => write!(f, "matrix is singular"),
            StatsError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for StatsError {}
