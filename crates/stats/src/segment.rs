//! Immutable column segments — the storage unit of the chunked
//! [`crate::dataview::DataView`].
//!
//! A segment holds up to [`MOMENT_CHUNK`] rows of every column, plus a
//! lazily computed, `Arc`-shared summary of the canonical per-column and
//! cross-column moments defined in [`crate::descriptive`]. Segmentation is
//! *canonical in the row count*: segment `k` always covers rows
//! `[k·MOMENT_CHUNK, (k+1)·MOMENT_CHUNK)`, regardless of the append
//! schedule that produced the view. Appends therefore share every sealed
//! (full) segment by `Arc` bump and rebuild only the trailing partial
//! segment — O(new rows) — while any two views over the same rows agree on
//! segment boundaries, which is what makes incrementally merged statistics
//! bit-identical to a cold recomputation.

use std::sync::{Arc, OnceLock};

use crate::descriptive::{chunk_comoment_lanes, ColMoments, MOMENT_CHUNK};

/// Index of the pair `(i, j)` with `i < j` in a packed upper triangle over
/// `p` columns (row-major: all pairs of row 0 first).
pub fn pair_index(i: usize, j: usize, p: usize) -> usize {
    debug_assert!(i < j && j < p);
    i * p - i * (i + 1) / 2 + (j - i - 1)
}

/// Number of packed pairs over `p` columns (0 for `p` of 0 or 1).
pub fn n_pairs(p: usize) -> usize {
    p * p.saturating_sub(1) / 2
}

/// Fills the packed upper-triangle cross comoments of one chunk: for every
/// pair `(i, j)`, `cross[pair_index(i, j, p)] = Σ (xᵢ − mᵢ)(xⱼ − mⱼ)` over
/// the chunk's rows. Walks the triangle anchor-by-anchor — pairs `(i, ·)`
/// are contiguous in the packed layout — handing each anchor's partner
/// block to the lane-blocked kernel, so every pair's accumulation stays
/// bit-identical to [`crate::descriptive::chunk_comoment`] while up to
/// [`crate::descriptive::COMOMENT_LANES`] pairs advance per row. Shared by
/// [`Segment::stats`] (the cached path) and
/// [`crate::correlation::correlation_matrix`] (the direct path), so the
/// two stay bit-identical by construction.
pub fn chunk_cross_comoments(cols: &[&[f64]], means: &[f64], cross: &mut [f64]) {
    let p = cols.len();
    debug_assert_eq!(means.len(), p);
    debug_assert_eq!(cross.len(), n_pairs(p));
    for i in 0..p.saturating_sub(1) {
        let lo = pair_index(i, i + 1, p);
        let hi = lo + (p - 1 - i);
        chunk_comoment_lanes(
            cols[i],
            means[i],
            &cols[i + 1..],
            &means[i + 1..],
            &mut cross[lo..hi],
        );
    }
}

/// Per-segment sufficient statistics: one [`ColMoments`] per column and the
/// packed upper triangle of cross-column comoments
/// `C2(i, j) = Σ (xᵢ − meanᵢ)(xⱼ − meanⱼ)` over the segment's rows.
#[derive(Debug, Clone)]
pub struct SegmentStats {
    /// Per-column chunk moments.
    pub cols: Vec<ColMoments>,
    /// Packed `C2` upper triangle (see [`pair_index`]).
    pub cross: Vec<f64>,
}

/// One immutable chunk of rows across all columns.
#[derive(Debug)]
pub struct Segment {
    cols: Vec<Vec<f64>>,
    rows: usize,
    stats: OnceLock<SegmentStats>,
    /// Per-column sorted runs, computed lazily (the quantile-discretizer
    /// substrate: a grown view merges cached runs instead of re-sorting
    /// the full column).
    sorted: Vec<OnceLock<Arc<Vec<f64>>>>,
}

impl Segment {
    /// Builds a segment from column-major data (`cols[column][row]`); all
    /// columns must share one length of at most [`MOMENT_CHUNK`] rows.
    pub fn new(cols: Vec<Vec<f64>>) -> Self {
        let rows = cols.first().map_or(0, Vec::len);
        debug_assert!(rows <= MOMENT_CHUNK, "segment over capacity");
        debug_assert!(cols.iter().all(|c| c.len() == rows), "ragged segment");
        let sorted = (0..cols.len()).map(|_| OnceLock::new()).collect();
        Self {
            cols,
            rows,
            stats: OnceLock::new(),
            sorted,
        }
    }

    /// Rows stored in this segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the segment holds a full [`MOMENT_CHUNK`] of rows.
    pub fn is_sealed(&self) -> bool {
        self.rows == MOMENT_CHUNK
    }

    /// One column of this segment.
    pub fn col(&self, i: usize) -> &[f64] {
        &self.cols[i]
    }

    /// The column-major data (used when rebuilding the partial tail).
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Column `i`'s values in ascending order, computed once and shared by
    /// every view holding this segment.
    ///
    /// # Panics
    ///
    /// Panics if the column contains NaN.
    pub fn sorted_col(&self, i: usize) -> &Arc<Vec<f64>> {
        self.sorted[i].get_or_init(|| {
            let mut v = self.cols[i].clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sorted column"));
            Arc::new(v)
        })
    }

    /// Approximate resident bytes of this segment: raw column data plus
    /// whatever lazy state has materialized (sorted runs, the moment
    /// summary). Cheap introspection for memory-budget accounting — the
    /// raw-data term is exact, the lazy terms count payloads only.
    pub fn approx_bytes(&self) -> usize {
        let f64s = std::mem::size_of::<f64>();
        let mut bytes = self.cols.len() * self.rows * f64s;
        bytes += self.sorted.iter().filter(|s| s.get().is_some()).count() * self.rows * f64s;
        if let Some(st) = self.stats.get() {
            bytes += st.cols.len() * std::mem::size_of::<ColMoments>() + st.cross.len() * f64s;
        }
        bytes
    }

    /// The segment's moment summary, computed once and shared by every view
    /// holding this segment.
    pub fn stats(&self) -> &SegmentStats {
        self.stats.get_or_init(|| {
            let p = self.cols.len();
            let cols: Vec<ColMoments> = self.cols.iter().map(|c| ColMoments::of_chunk(c)).collect();
            let slices: Vec<&[f64]> = self.cols.iter().map(Vec::as_slice).collect();
            let means: Vec<f64> = cols.iter().map(|m| m.mean).collect();
            let mut cross = vec![0.0; n_pairs(p)];
            chunk_cross_comoments(&slices, &means, &mut cross);
            SegmentStats { cols, cross }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{column_moments, merge_col_moments};

    #[test]
    fn pair_index_is_a_bijection() {
        let p = 7;
        let mut seen = vec![false; n_pairs(p)];
        for i in 0..p {
            for j in (i + 1)..p {
                let k = pair_index(i, j, p);
                assert!(!seen[k], "collision at ({i},{j})");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn segment_stats_match_canonical_moments() {
        let n = MOMENT_CHUNK - 5;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let seg = Segment::new(vec![xs.clone(), ys]);
        let st = seg.stats();
        // A single chunk's segment moments equal the canonical column fold.
        assert_eq!(st.cols[0], column_moments(&xs));
        assert_eq!(st.cols.len(), 2);
        assert_eq!(st.cross.len(), 1);
    }

    #[test]
    fn approx_bytes_grows_with_lazy_state() {
        let n = 64;
        let seg = Segment::new(vec![
            (0..n).map(|i| i as f64).collect(),
            (0..n).map(|i| (i as f64).cos()).collect(),
        ]);
        let raw = seg.approx_bytes();
        assert_eq!(raw, 2 * n * std::mem::size_of::<f64>());
        let _ = seg.sorted_col(0);
        let with_sorted = seg.approx_bytes();
        assert_eq!(with_sorted, raw + n * std::mem::size_of::<f64>());
        let _ = seg.stats();
        assert!(seg.approx_bytes() > with_sorted);
    }

    #[test]
    fn sealed_segment_merge_reproduces_full_column() {
        // Two sealed segments merged in order equal the canonical moments
        // of the concatenated column, bit for bit.
        let full: Vec<f64> = (0..2 * MOMENT_CHUNK)
            .map(|i| (i as f64) * 0.7 - 3.0)
            .collect();
        let a = Segment::new(vec![full[..MOMENT_CHUNK].to_vec()]);
        let b = Segment::new(vec![full[MOMENT_CHUNK..].to_vec()]);
        let merged = merge_col_moments(a.stats().cols[0], b.stats().cols[0]);
        let direct = column_moments(&full);
        assert_eq!(merged.n, direct.n);
        assert_eq!(merged.mean.to_bits(), direct.mean.to_bits());
        assert_eq!(merged.m2.to_bits(), direct.m2.to_bits());
    }
}
