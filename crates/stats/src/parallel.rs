//! Minimal data-parallel helper (the registry-free stand-in for rayon):
//! deterministic ordered fork–join over a slice with `std::thread::scope`.
//!
//! Results are returned in input order regardless of thread count, which is
//! what lets the parallel PC-stable sweep produce output independent of
//! parallelism (asserted by `tests/dataview_equivalence.rs`).

/// Default worker count: the `UNICORN_THREADS` environment variable if set
/// (a value of `1` forces serial execution), otherwise the machine's
/// available parallelism, capped at 16.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("UNICORN_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results **in input order**. `f` receives `(index, &item)`.
/// With `threads <= 1` (or trivially small inputs) this is a plain serial
/// map — the parallel and serial paths run the same `f` on the same items.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Contiguous chunks, one per worker; each worker returns its chunk's
    // results in order, and chunks are re-joined in order.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (w, slice) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                slice
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(w * chunk + i, t))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let got = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x, "index must match item position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = Vec::new();
        assert!(par_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42], 8, |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
