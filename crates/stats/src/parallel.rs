//! Compatibility shim over the [`unicorn_exec`] worker-pool subsystem.
//!
//! Earlier revisions implemented a scoped fork–join here; the pipeline now
//! fans out over a persistent [`unicorn_exec::Executor`] threaded through
//! the option structs, and this module only keeps the old free-function
//! surface alive for direct callers. Results are returned in input order
//! regardless of thread count — the property the parallel stages'
//! equivalence tests rest on — and worker panics are re-raised on the
//! caller with the failing index and original message instead of the old
//! bare `expect("worker panicked")`.

pub use unicorn_exec::default_threads;
use unicorn_exec::Executor;

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results **in input order**. `f` receives `(index, &item)`.
/// With `threads <= 1` (or trivially small inputs) this is a plain serial
/// map — the parallel and serial paths run the same `f` on the same items.
///
/// Spawns a transient pool per call; callers on a hot path should hold an
/// [`Executor`] and call [`Executor::par_map`] so workers are reused.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    Executor::new(threads).par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8] {
            let got = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x, "index must match item position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = Vec::new();
        assert!(par_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42], 8, |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn panic_carries_task_context() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, 4, |_, &x| {
                assert!(x != 5, "item rejected");
                x
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("task 5"), "missing index context: {msg}");
    }
}
