//! Cache primitives backing [`crate::dataview::DataView`]: a compact LRU
//! with O(1) touch/insert/evict, and a sharded, thread-safe wrapper so the
//! parallel PC-stable sweep does not serialize on a single lock.
//!
//! Everything cached here is a *pure function of the immutable view data*,
//! so cache hits are bit-identical to recomputation by construction; the
//! equivalence tests in `tests/dataview_equivalence.rs` assert this.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map: `HashMap` index into a slab of
/// entries threaded on an intrusive doubly-linked recency list.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache evicting beyond `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            map: HashMap::with_capacity(capacity.min(4096)),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slab[i].value)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry at
    /// capacity. An existing key is overwritten and refreshed.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.map.len() >= self.capacity {
            // Reuse the evicted tail slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.slab[victim].key = key.clone();
            self.slab[victim].value = value;
            victim
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// Hit/miss counters for cache observability (used by the benches and the
/// equivalence tests to prove the cache is actually exercised).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A sharded, mutex-protected LRU: keys hash to one of `SHARDS` independent
/// caches so concurrent CI tests rarely contend on the same lock.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    stats: CacheStats,
}

const SHARDS: usize = 8;

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a sharded cache with `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        Self {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached value for `key`, or computes, caches, and returns
    /// it. `compute` runs outside the lock, so a race may compute twice —
    /// harmless because every cached value is a pure function of the key.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.shard(&key).lock().expect("lru poisoned").get(&key) {
            self.stats.hit();
            return v.clone();
        }
        self.stats.miss();
        let v = compute();
        self.shard(&key)
            .lock()
            .expect("lru poisoned")
            .insert(key, v.clone());
        v
    }

    /// Cache observability counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Total number of live entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru poisoned").len())
            .sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("hits", &self.stats.hits())
            .field("misses", &self.stats.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basic_roundtrip() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        c.get(&1); // 2 is now LRU
        c.insert(3, "three");
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_overwrite_refreshes() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh 1; 2 becomes LRU
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn lru_single_slot() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * i);
            assert_eq!(c.get(&i), Some(&(i * i)));
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn sharded_lru_computes_once_then_hits() {
        let c: ShardedLru<(usize, usize), f64> = ShardedLru::new(64);
        let v1 = c.get_or_insert_with((1, 2), || 3.5);
        let v2 = c.get_or_insert_with((1, 2), || panic!("must hit cache"));
        assert_eq!(v1, v2);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn sharded_lru_concurrent_access() {
        let c: std::sync::Arc<ShardedLru<usize, usize>> = std::sync::Arc::new(ShardedLru::new(128));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        let v = c.get_or_insert_with(i % 32, || (i % 32) * 7);
                        assert_eq!(v, (i % 32) * 7);
                        let _ = t;
                    }
                });
            }
        });
        assert!(c.len() <= 32);
    }
}
