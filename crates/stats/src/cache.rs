//! Cache primitives backing [`crate::dataview::DataView`]: a compact LRU
//! with O(1) touch/insert/evict, and a sharded, thread-safe wrapper so the
//! parallel PC-stable sweep does not serialize on a single lock.
//!
//! Everything cached here is a *pure function of the immutable view data*,
//! so cache hits are bit-identical to recomputation by construction; the
//! equivalence tests in `tests/dataview_equivalence.rs` assert this.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A fast non-cryptographic hasher (the FxHash multiply-xor scheme rustc
/// uses). The skeleton hot loop probes these caches thousands of times per
/// level; SipHash's per-probe cost is measurable there, and HashDoS
/// resistance buys nothing for process-internal statistic keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map: `HashMap` index into a slab of
/// entries threaded on an intrusive doubly-linked recency list.
pub struct LruCache<K, V> {
    map: HashMap<K, usize, FxBuild>,
    slab: Vec<Entry<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache evicting beyond `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            map: HashMap::with_capacity_and_hasher(capacity.min(4096), FxBuild::default()),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Drops every entry, keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Approximate resident bytes: per-entry slab + index overhead plus
    /// `value_bytes` of every live value. Every slab slot is live (eviction
    /// reuses the tail slot in place), so the slab *is* the value set.
    pub fn approx_bytes(&self, mut value_bytes: impl FnMut(&V) -> usize) -> usize {
        let fixed = std::mem::size_of::<Entry<K, V>>() + std::mem::size_of::<(K, usize)>();
        self.slab
            .iter()
            .map(|e| fixed + value_bytes(&e.value))
            .sum()
    }

    /// Looks up `key` without altering recency (read-only).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slab[i].value)
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slab[i].value)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry at
    /// capacity. An existing key is overwritten and refreshed. Returns
    /// `true` when an unrelated entry was evicted to make room — the
    /// signal the sharded wrapper's eviction counter is built on.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        let mut evicted = false;
        let i = if self.map.len() >= self.capacity {
            // Reuse the evicted tail slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.slab[victim].key = key.clone();
            self.slab[victim].value = value;
            evicted = true;
            victim
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }
}

/// Hit/miss counters for cache observability (used by the benches and the
/// equivalence tests to prove the cache is actually exercised).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a capacity eviction.
    pub fn evicted(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total capacity evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A sharded, mutex-protected LRU: keys hash to one of `SHARDS` independent
/// caches so concurrent CI tests rarely contend on the same lock.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    stats: CacheStats,
}

const SHARDS: usize = 8;

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a sharded cache with `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        Self {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // The shard's inner HashMap uses the same hash function; picking
        // the shard from the LOW bits would leave every shard's keys
        // agreeing on those bits and cluster hashbrown's bucket indices
        // (which are the low bits). Use middle bits instead — untouched by
        // bucket selection at any realistic table size and by the top-7
        // control tag.
        &self.shards[((h.finish() >> 32) as usize) % SHARDS]
    }

    /// Returns the cached value for `key`, or computes, caches, and returns
    /// it. `compute` runs outside the lock, so a race may compute twice —
    /// harmless because every cached value is a pure function of the key.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.shard(&key).lock().expect("lru poisoned").get(&key) {
            self.stats.hit();
            return v.clone();
        }
        self.stats.miss();
        let v = compute();
        if self
            .shard(&key)
            .lock()
            .expect("lru poisoned")
            .insert(key, v.clone())
        {
            self.stats.evicted();
        }
        v
    }

    /// Raw lookup without touching the hit/miss counters or the recency
    /// list (used by the epoch-aware wrapper, which keeps its own stats;
    /// its working sets sit far below capacity, so recency upkeep on the
    /// read path buys nothing and the skeleton hot loop probes here
    /// thousands of times per level).
    pub fn peek(&self, key: &K) -> Option<V> {
        let shard = self.shard(key).lock().expect("lru poisoned");
        shard.peek(key).cloned()
    }

    /// Raw insert without touching the hit/miss counters (capacity
    /// evictions are still counted — they are a property of the cache,
    /// not of the probe discipline).
    pub fn put(&self, key: K, value: V) {
        if self
            .shard(&key)
            .lock()
            .expect("lru poisoned")
            .insert(key, value)
        {
            self.stats.evicted();
        }
    }

    /// Cache observability counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Drops every entry in every shard (the hit/miss counters are kept —
    /// they are cumulative observability, not cache contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("lru poisoned").clear();
        }
    }

    /// Approximate resident bytes across shards (see
    /// [`LruCache::approx_bytes`]); takes each shard lock briefly.
    pub fn approx_bytes(&self, mut value_bytes: impl FnMut(&V) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("lru poisoned")
                    .approx_bytes(&mut value_bytes)
            })
            .sum()
    }

    /// Total number of live entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru poisoned").len())
            .sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An epoch-tagged [`ShardedLru`]: every entry records the data epoch it
/// was computed at. A lookup *hits* only when the entry's epoch matches the
/// caller's; a mismatched entry is reported as stale, recomputed, and
/// overwritten in place. This is what lets the `DataView` caches *survive*
/// sample appends — capacity, allocations, and hot keys persist across the
/// epoch bump — while guaranteeing a value computed on one epoch's data is
/// never served for another.
pub struct EpochLru<K, V> {
    inner: ShardedLru<K, (u64, V)>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> EpochLru<K, V> {
    /// Creates an epoch-tagged cache with `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: ShardedLru::new(capacity),
            stats: CacheStats::default(),
        }
    }

    /// Returns the cached value when its epoch matches `epoch`, otherwise
    /// computes, caches at `epoch`, and returns it. `compute` must be a
    /// pure function of the key and the data identified by `epoch`; it may
    /// consult [`Self::stale`] to upgrade a previous epoch's value.
    pub fn get_or_insert_with(&self, key: K, epoch: u64, compute: impl FnOnce() -> V) -> V {
        if let Some((e, v)) = self.inner.peek(&key) {
            if e == epoch {
                self.stats.hit();
                return v;
            }
        }
        self.stats.miss();
        let v = compute();
        self.inner.put(key, (epoch, v.clone()));
        v
    }

    /// The entry stored under `key` regardless of epoch, with the epoch it
    /// was computed at — the hook for incremental upgrades (e.g. extending
    /// a categorical discretization by the appended rows only).
    pub fn stale(&self, key: &K) -> Option<(u64, V)> {
        self.inner.peek(key)
    }

    /// Probes for `key` at exactly `epoch`, counting a hit or miss. The
    /// probe half of the split probe/insert discipline callers use when
    /// the value is produced *later* by a batch computation (the sweep
    /// cache probes every planned sweep up front, runs the misses through
    /// the lane scheduler, then [`Self::put`]s the results) — unlike
    /// [`Self::get_or_insert_with`], nothing is computed under the probe.
    pub fn get(&self, key: &K, epoch: u64) -> Option<V> {
        match self.inner.peek(key) {
            Some((e, v)) if e == epoch => {
                self.stats.hit();
                Some(v)
            }
            _ => {
                self.stats.miss();
                None
            }
        }
    }

    /// Inserts `key → value` at `epoch`, overwriting any entry (stale or
    /// current) under the same key. The insert half of the split
    /// probe/insert discipline; does not touch the hit/miss counters.
    pub fn put(&self, key: K, epoch: u64, value: V) {
        self.inner.put(key, (epoch, value));
    }

    /// Hit/miss counters (hits count only epoch-exact lookups).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Total capacity evictions in the backing store — distinct from the
    /// in-place overwrite of a stale epoch's entry, which is not an
    /// eviction (the key stays resident).
    pub fn evictions(&self) -> u64 {
        self.inner.stats().evictions()
    }

    /// Drops every entry (any epoch), keeping counters and capacity. Safe
    /// at any time: everything cached is a pure function of the key and
    /// its epoch's data, so the next lookup recomputes bit-identically.
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Approximate resident bytes across shards: per-entry overhead plus
    /// `value_bytes` of every cached value, any epoch. Cheap introspection
    /// for memory-budget accounting — an estimate (map capacity and
    /// allocator slack are not counted), not an allocator audit.
    pub fn approx_bytes(&self, mut value_bytes: impl FnMut(&V) -> usize) -> usize {
        self.inner.approx_bytes(|(_, v)| value_bytes(v))
    }

    /// Total live entries across shards (any epoch).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<K, V> std::fmt::Debug for EpochLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochLru")
            .field("hits", &self.stats.hits())
            .field("misses", &self.stats.misses())
            .finish()
    }
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("hits", &self.stats.hits())
            .field("misses", &self.stats.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basic_roundtrip() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        c.get(&1); // 2 is now LRU
        c.insert(3, "three");
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_overwrite_refreshes() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh 1; 2 becomes LRU
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn lru_single_slot() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * i);
            assert_eq!(c.get(&i), Some(&(i * i)));
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn sharded_lru_computes_once_then_hits() {
        let c: ShardedLru<(usize, usize), f64> = ShardedLru::new(64);
        let v1 = c.get_or_insert_with((1, 2), || 3.5);
        let v2 = c.get_or_insert_with((1, 2), || panic!("must hit cache"));
        assert_eq!(v1, v2);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn epoch_lru_hits_only_on_matching_epoch() {
        let c: EpochLru<u32, f64> = EpochLru::new(16);
        let v0 = c.get_or_insert_with(1, 0, || 1.5);
        assert_eq!(v0, 1.5);
        // Same epoch: hit, closure must not run.
        let v1 = c.get_or_insert_with(1, 0, || panic!("must hit"));
        assert_eq!(v1, 1.5);
        // New epoch: stale entry visible, lookup misses and overwrites.
        assert_eq!(c.stale(&1), Some((0, 1.5)));
        let v2 = c.get_or_insert_with(1, 1, || 2.5);
        assert_eq!(v2, 2.5);
        assert_eq!(c.stale(&1), Some((1, 2.5)));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 2);
        assert_eq!(c.len(), 1, "epoch bump must overwrite, not duplicate");
    }

    #[test]
    fn epoch_lru_split_probe_insert() {
        let c: EpochLru<u32, f64> = EpochLru::new(16);
        assert_eq!(c.get(&7, 0), None, "cold probe misses");
        c.put(7, 0, 4.25);
        assert_eq!(c.get(&7, 0), Some(4.25), "probe hits at the put epoch");
        assert_eq!(c.get(&7, 1), None, "stale epoch never hits");
        c.put(7, 1, 8.5);
        assert_eq!(c.get(&7, 1), Some(8.5));
        assert_eq!(c.len(), 1, "epoch bump overwrites in place");
        assert_eq!(c.stats().hits(), 2);
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn eviction_counter_tracks_capacity_pressure() {
        // SHARDS=8 shards of one slot each: the 9th distinct key must
        // land on an occupied shard and evict.
        let c: ShardedLru<u32, u32> = ShardedLru::new(8);
        for k in 0..64 {
            c.put(k, k);
        }
        assert!(c.stats().evictions() > 0, "one-slot shards must evict");
        c.put(1000, 1);
        c.put(1000, 2);
        let before = c.stats().evictions();
        c.put(1000, 3); // overwrite in place: not an eviction
        assert_eq!(c.stats().evictions(), before);

        let e: EpochLru<u32, u32> = EpochLru::new(8);
        for k in 0..64 {
            e.put(k, 0, k);
        }
        assert!(e.evictions() > 0);
        assert_eq!(
            e.stats().evictions(),
            0,
            "probe stats never count evictions"
        );
    }

    #[test]
    fn clear_empties_every_layer_and_reuse_works() {
        let mut lru = LruCache::new(4);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(3, 30);
        assert_eq!(lru.get(&3), Some(&30));

        let epoch: EpochLru<u32, u64> = EpochLru::new(16);
        let _ = epoch.get_or_insert_with(1, 0, || 7);
        let _ = epoch.get_or_insert_with(2, 0, || 8);
        assert_eq!(epoch.len(), 2);
        epoch.clear();
        assert!(epoch.is_empty());
        // Counters survive; recomputation after a clear is a miss.
        let v = epoch.get_or_insert_with(1, 0, || 7);
        assert_eq!(v, 7);
        assert_eq!(epoch.stats().misses(), 3);
    }

    #[test]
    fn approx_bytes_tracks_entries() {
        let epoch: EpochLru<u32, Vec<u8>> = EpochLru::new(16);
        assert_eq!(epoch.approx_bytes(Vec::len), 0);
        let _ = epoch.get_or_insert_with(1, 0, || vec![0u8; 100]);
        let one = epoch.approx_bytes(Vec::len);
        assert!(one >= 100, "value bytes must be counted: {one}");
        let _ = epoch.get_or_insert_with(2, 0, || vec![0u8; 100]);
        let two = epoch.approx_bytes(Vec::len);
        assert!(two > one, "second entry must grow the estimate");
        epoch.clear();
        assert_eq!(epoch.approx_bytes(Vec::len), 0);
    }

    #[test]
    fn sharded_lru_concurrent_access() {
        let c: std::sync::Arc<ShardedLru<usize, usize>> = std::sync::Arc::new(ShardedLru::new(128));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        let v = c.get_or_insert_with(i % 32, || (i % 32) * 7);
                        assert_eq!(v, (i % 32) * 7);
                        let _ = t;
                    }
                });
            }
        });
        assert!(c.len() <= 32);
    }
}
