//! Discretization of continuous columns into integer codes, needed by the
//! discrete independence tests and by entropic causal discovery.

/// A fitted discretizer for one column.
#[derive(Debug, Clone)]
pub enum Discretizer {
    /// The column already had few distinct values; each distinct value maps
    /// to its own code (sorted order).
    Categorical { values: Vec<f64> },
    /// Equal-frequency bins described by their internal cut points.
    Quantile { cuts: Vec<f64> },
}

impl Discretizer {
    /// Fits a discretizer: if the column has at most `max_levels` distinct
    /// values it is treated as categorical, otherwise equal-frequency
    /// binning into `bins` buckets is used.
    pub fn fit(xs: &[f64], bins: usize, max_levels: usize) -> Self {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in discretize"));
        Self::fit_sorted(&sorted, bins, max_levels)
    }

    /// [`Discretizer::fit`] over an already ascending-sorted column. The
    /// fit depends only on the value multiset, so this produces exactly
    /// the discretizer `fit` would — callers holding sorted runs (the
    /// segmented `DataView`) skip the O(n log n) re-sort.
    pub fn fit_sorted(sorted: &[f64], bins: usize, max_levels: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        debug_assert!(sorted.is_sorted_by(|a, b| a <= b), "input not sorted");
        let mut distinct: Vec<f64> = sorted.to_vec();
        distinct.dedup();
        if distinct.len() <= max_levels {
            return Discretizer::Categorical { values: distinct };
        }
        let n = sorted.len();
        let mut cuts = Vec::with_capacity(bins - 1);
        for b in 1..bins {
            let pos = b * n / bins;
            let cut = sorted[pos.min(n - 1)];
            // Skip duplicate cut points arising from heavy ties.
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        Discretizer::Quantile { cuts }
    }

    /// [`Discretizer::fit`] over per-segment ascending sorted **runs**
    /// without ever materializing the merged column. The categorical
    /// check gallops across the runs collecting distinct values and bails
    /// out as soon as more than `max_levels` are seen; each quantile cut
    /// is extracted as a multi-run order statistic
    /// ([`kth_of_runs`]) — O(bins · runs · log² run) selection instead of
    /// the O(n log runs) merge-then-index rescan. The fit depends only on
    /// the value multiset, so the result is identical to
    /// [`Discretizer::fit_sorted`] on the merged column (asserted by
    /// `fit_runs_matches_rescan`).
    pub fn fit_runs(runs: &[&[f64]], bins: usize, max_levels: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        debug_assert!(
            runs.iter().all(|r| r.is_sorted_by(|a, b| a <= b)),
            "run not sorted"
        );
        let n: usize = runs.iter().map(|r| r.len()).sum();
        if let Some(values) = distinct_of_runs(runs, max_levels) {
            return Discretizer::Categorical { values };
        }
        let mut cuts = Vec::with_capacity(bins - 1);
        for b in 1..bins {
            let pos = b * n / bins;
            let cut = kth_of_runs(runs, pos.min(n - 1));
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        Discretizer::Quantile { cuts }
    }

    /// Number of output codes.
    pub fn arity(&self) -> usize {
        match self {
            Discretizer::Categorical { values } => values.len().max(1),
            Discretizer::Quantile { cuts } => cuts.len() + 1,
        }
    }

    /// Maps one value to its code.
    pub fn code(&self, x: f64) -> usize {
        match self {
            Discretizer::Categorical { values } => values
                .iter()
                .position(|&v| (v - x).abs() < 1e-12 || v >= x)
                .unwrap_or(values.len().saturating_sub(1)),
            Discretizer::Quantile { cuts } => cuts.iter().take_while(|&&c| x > c).count(),
        }
    }

    /// Maps a whole column.
    pub fn transform(&self, xs: &[f64]) -> Vec<usize> {
        xs.iter().map(|&x| self.code(x)).collect()
    }
}

/// The sorted distinct values of the union of ascending runs, or `None`
/// once more than `max_levels` distinct values are seen. Galloping: after
/// emitting a value, every run's cursor jumps past its copies with a
/// binary search, so the cost is O(max_levels · runs · log run) — never a
/// full merge.
fn distinct_of_runs(runs: &[&[f64]], max_levels: usize) -> Option<Vec<f64>> {
    let mut cursors = vec![0usize; runs.len()];
    let mut distinct = Vec::new();
    loop {
        let mut cur: Option<f64> = None;
        for (r, &c) in runs.iter().zip(&cursors) {
            if c < r.len() && cur.is_none_or(|m| r[c] < m) {
                cur = Some(r[c]);
            }
        }
        let Some(cur) = cur else {
            return Some(distinct);
        };
        if distinct.len() >= max_levels {
            return None;
        }
        distinct.push(cur);
        for (r, c) in runs.iter().zip(&mut cursors) {
            *c += r[*c..].partition_point(|&x| x <= cur);
        }
    }
}

/// The `k`-th (0-based) order statistic of the union of ascending sorted
/// runs — the value `merged_sorted[k]` would hold — found by pivoted rank
/// counting instead of merging. Each round picks the middle element of the
/// largest surviving candidate range as the pivot, counts the union's
/// `< pivot` / `≤ pivot` ranks with per-run binary searches, and either
/// answers (the rank interval straddles `k`) or discards one side of the
/// pivot run's range. The pivot range at least halves per round, so the
/// whole selection is O(runs · log² max_run); every copy of the answer
/// value survives narrowing, so a pivot eventually lands on it.
///
/// # Panics
///
/// Panics if `k` is out of range of the union's length.
fn kth_of_runs(runs: &[&[f64]], k: usize) -> f64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(k < total, "order statistic {k} out of range {total}");
    // Surviving candidate range per run (the answer always lies inside).
    let mut lo = vec![0usize; runs.len()];
    let mut hi: Vec<usize> = runs.iter().map(|r| r.len()).collect();
    loop {
        let (ri, span) = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| h - l)
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .expect("at least one run");
        debug_assert!(span > 0, "candidate set exhausted before rank {k}");
        let pivot = runs[ri][(lo[ri] + hi[ri]) / 2];
        let mut lt = 0usize;
        let mut le = 0usize;
        for r in runs {
            lt += r.partition_point(|&x| x < pivot);
            le += r.partition_point(|&x| x <= pivot);
        }
        if k < lt {
            // Answer < pivot: drop candidates ≥ pivot.
            for ((r, l), h) in runs.iter().zip(&lo).zip(&mut hi) {
                *h = (*h).min(r.partition_point(|&x| x < pivot)).max(*l);
            }
        } else if k < le {
            return pivot;
        } else {
            // Answer > pivot: drop candidates ≤ pivot.
            for ((r, l), &h) in runs.iter().zip(&mut lo).zip(&hi) {
                *l = (*l).max(r.partition_point(|&x| x <= pivot)).min(h);
            }
        }
    }
}

/// Convenience: fit-and-transform each column with the same settings,
/// returning `(codes, arities)`.
pub fn discretize_columns(
    columns: &[Vec<f64>],
    bins: usize,
    max_levels: usize,
) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut codes = Vec::with_capacity(columns.len());
    let mut arities = Vec::with_capacity(columns.len());
    for col in columns {
        let d = Discretizer::fit(col, bins, max_levels);
        arities.push(d.arity());
        codes.push(d.transform(col));
    }
    (codes, arities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_passthrough() {
        let xs = [1.0, 3.0, 1.0, 3.0, 2.0];
        let d = Discretizer::fit(&xs, 4, 8);
        assert_eq!(d.arity(), 3);
        assert_eq!(d.transform(&xs), vec![0, 2, 0, 2, 1]);
    }

    #[test]
    fn quantile_bins_roughly_balanced() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::fit(&xs, 4, 8);
        assert_eq!(d.arity(), 4);
        let codes = d.transform(&xs);
        let mut counts = [0usize; 4];
        for c in codes {
            counts[c] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bin: {c}");
        }
    }

    #[test]
    fn heavy_ties_collapse_cuts() {
        // 90% of mass at a single value: fewer effective bins, no panic.
        let mut xs = vec![5.0; 90];
        xs.extend((0..10).map(|i| i as f64));
        let d = Discretizer::fit(&xs, 5, 4);
        assert!(d.arity() >= 2);
        let codes = d.transform(&xs);
        assert!(codes.iter().all(|&c| c < d.arity()));
    }

    /// Splits a column into sorted runs the way the segmented view does
    /// (fixed-size chunks, each sorted), without depending on `dataview`.
    fn runs_of(xs: &[f64], chunk: usize) -> Vec<Vec<f64>> {
        xs.chunks(chunk)
            .map(|c| {
                let mut r = c.to_vec();
                r.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
                r
            })
            .collect()
    }

    #[test]
    fn fit_runs_matches_rescan() {
        // Shapes covering both discretizer variants, heavy ties, tiny and
        // chunk-straddling columns.
        let mut s = 77u64;
        let columns: Vec<Vec<f64>> = vec![
            (0..257).map(|i| (i % 3) as f64).collect(),
            (0..100).map(|i| (i as f64).sin() * 10.0).collect(),
            {
                let mut xs = vec![5.0; 90];
                xs.extend((0..10).map(|i| i as f64));
                xs
            },
            (0..200)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0
                })
                .collect(),
            vec![1.0, 2.0],
        ];
        for xs in &columns {
            for chunk in [7usize, 64, 1000] {
                for (bins, max_levels) in [(4usize, 8usize), (5, 4), (2, 2), (8, 16)] {
                    let runs = runs_of(xs, chunk);
                    let run_refs: Vec<&[f64]> = runs.iter().map(Vec::as_slice).collect();
                    let from_runs = Discretizer::fit_runs(&run_refs, bins, max_levels);
                    let rescan = Discretizer::fit(xs, bins, max_levels);
                    match (&from_runs, &rescan) {
                        (
                            Discretizer::Categorical { values: a },
                            Discretizer::Categorical { values: b },
                        ) => {
                            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                            assert_eq!(ab, bb, "categorical values diverged");
                        }
                        (Discretizer::Quantile { cuts: a }, Discretizer::Quantile { cuts: b }) => {
                            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                            assert_eq!(ab, bb, "cuts diverged (chunk {chunk}, bins {bins})");
                        }
                        other => panic!("variant diverged: {other:?}"),
                    }
                    assert_eq!(from_runs.transform(xs), rescan.transform(xs));
                }
            }
        }
    }

    #[test]
    fn kth_of_runs_selects_merged_order_statistics() {
        let xs: Vec<f64> = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0, 5.0]
            .into_iter()
            .cycle()
            .take(97)
            .collect();
        let runs = runs_of(&xs, 13);
        let run_refs: Vec<&[f64]> = runs.iter().map(Vec::as_slice).collect();
        let mut merged = xs.clone();
        merged.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, &expected) in merged.iter().enumerate() {
            assert_eq!(
                kth_of_runs(&run_refs, k).to_bits(),
                expected.to_bits(),
                "order statistic {k}"
            );
        }
    }

    #[test]
    fn codes_are_monotone_in_value() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let d = Discretizer::fit(&xs, 5, 4);
        let mut pairs: Vec<(f64, usize)> = xs.iter().map(|&x| (x, d.code(x))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
