//! Discretization of continuous columns into integer codes, needed by the
//! discrete independence tests and by entropic causal discovery.

/// A fitted discretizer for one column.
#[derive(Debug, Clone)]
pub enum Discretizer {
    /// The column already had few distinct values; each distinct value maps
    /// to its own code (sorted order).
    Categorical { values: Vec<f64> },
    /// Equal-frequency bins described by their internal cut points.
    Quantile { cuts: Vec<f64> },
}

impl Discretizer {
    /// Fits a discretizer: if the column has at most `max_levels` distinct
    /// values it is treated as categorical, otherwise equal-frequency
    /// binning into `bins` buckets is used.
    pub fn fit(xs: &[f64], bins: usize, max_levels: usize) -> Self {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in discretize"));
        Self::fit_sorted(&sorted, bins, max_levels)
    }

    /// [`Discretizer::fit`] over an already ascending-sorted column. The
    /// fit depends only on the value multiset, so this produces exactly
    /// the discretizer `fit` would — callers holding sorted runs (the
    /// segmented `DataView`) skip the O(n log n) re-sort.
    pub fn fit_sorted(sorted: &[f64], bins: usize, max_levels: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        debug_assert!(sorted.is_sorted_by(|a, b| a <= b), "input not sorted");
        let mut distinct: Vec<f64> = sorted.to_vec();
        distinct.dedup();
        if distinct.len() <= max_levels {
            return Discretizer::Categorical { values: distinct };
        }
        let n = sorted.len();
        let mut cuts = Vec::with_capacity(bins - 1);
        for b in 1..bins {
            let pos = b * n / bins;
            let cut = sorted[pos.min(n - 1)];
            // Skip duplicate cut points arising from heavy ties.
            if cuts.last().is_none_or(|&last| cut > last) {
                cuts.push(cut);
            }
        }
        Discretizer::Quantile { cuts }
    }

    /// Number of output codes.
    pub fn arity(&self) -> usize {
        match self {
            Discretizer::Categorical { values } => values.len().max(1),
            Discretizer::Quantile { cuts } => cuts.len() + 1,
        }
    }

    /// Maps one value to its code.
    pub fn code(&self, x: f64) -> usize {
        match self {
            Discretizer::Categorical { values } => values
                .iter()
                .position(|&v| (v - x).abs() < 1e-12 || v >= x)
                .unwrap_or(values.len().saturating_sub(1)),
            Discretizer::Quantile { cuts } => cuts.iter().take_while(|&&c| x > c).count(),
        }
    }

    /// Maps a whole column.
    pub fn transform(&self, xs: &[f64]) -> Vec<usize> {
        xs.iter().map(|&x| self.code(x)).collect()
    }
}

/// Convenience: fit-and-transform each column with the same settings,
/// returning `(codes, arities)`.
pub fn discretize_columns(
    columns: &[Vec<f64>],
    bins: usize,
    max_levels: usize,
) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut codes = Vec::with_capacity(columns.len());
    let mut arities = Vec::with_capacity(columns.len());
    for col in columns {
        let d = Discretizer::fit(col, bins, max_levels);
        arities.push(d.arity());
        codes.push(d.transform(col));
    }
    (codes, arities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_passthrough() {
        let xs = [1.0, 3.0, 1.0, 3.0, 2.0];
        let d = Discretizer::fit(&xs, 4, 8);
        assert_eq!(d.arity(), 3);
        assert_eq!(d.transform(&xs), vec![0, 2, 0, 2, 1]);
    }

    #[test]
    fn quantile_bins_roughly_balanced() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::fit(&xs, 4, 8);
        assert_eq!(d.arity(), 4);
        let codes = d.transform(&xs);
        let mut counts = [0usize; 4];
        for c in codes {
            counts[c] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bin: {c}");
        }
    }

    #[test]
    fn heavy_ties_collapse_cuts() {
        // 90% of mass at a single value: fewer effective bins, no panic.
        let mut xs = vec![5.0; 90];
        xs.extend((0..10).map(|i| i as f64));
        let d = Discretizer::fit(&xs, 5, 4);
        assert!(d.arity() >= 2);
        let codes = d.transform(&xs);
        assert!(codes.iter().all(|&c| c < d.arity()));
    }

    #[test]
    fn codes_are_monotone_in_value() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let d = Discretizer::fit(&xs, 5, 4);
        let mut pairs: Vec<(f64, usize)> = xs.iter().map(|&x| (x, d.code(x))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
