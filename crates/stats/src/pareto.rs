//! Pareto fronts and the hypervolume indicator, used by the multi-objective
//! evaluation (§7, Fig 15) following Zitzler et al.'s hypervolume-error
//! methodology. All objectives are **minimized**.

/// Returns true iff `a` Pareto-dominates `b` (no worse everywhere, strictly
/// better somewhere), minimizing each coordinate.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Extracts the Pareto-optimal subset (indices into `points`).
pub fn pareto_front_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// Extracts the Pareto-optimal points themselves.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    pareto_front_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Staircase sweep over `(x, y)` pairs sorted ascending in `x`: the area of
/// the union of rectangles `[x, r0] × [y, r1]`. Dominated pairs contribute
/// nothing, so callers need not pre-extract a Pareto front.
fn hv2d_sweep(pts: &mut [(f64, f64)], r: &[f64; 2]) -> f64 {
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in hypervolume"));
    let mut hv = 0.0;
    let mut best_y = r[1];
    for &(x, y) in pts.iter() {
        if y < best_y {
            hv += (r[0] - x) * (best_y - y);
            best_y = y;
        }
    }
    hv
}

/// 2-D hypervolume dominated by `front` with respect to reference point
/// `r` (both objectives minimized; points beyond the reference contribute
/// nothing). Sweep over the first objective.
pub fn hypervolume_2d(front: &[Vec<f64>], r: &[f64; 2]) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .filter(|p| p[0] < r[0] && p[1] < r[1])
        .map(|p| (p[0], p[1]))
        .collect();
    hv2d_sweep(&mut pts, r)
}

/// 3-D hypervolume via slicing over the third objective.
pub fn hypervolume_3d(front: &[Vec<f64>], r: &[f64; 3]) -> f64 {
    let mut pts: Vec<&Vec<f64>> = front
        .iter()
        .filter(|p| p[0] < r[0] && p[1] < r[1] && p[2] < r[2])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by the z coordinate; integrate 2-D slabs between consecutive
    // z levels using all points at or below that level. The sweep absorbs
    // dominated projections, so each slab borrows scalar pairs instead of
    // cloning and front-filtering the point set.
    pts.sort_by(|a, b| a[2].partial_cmp(&b[2]).expect("NaN in hypervolume"));
    let mut hv = 0.0;
    for (k, p) in pts.iter().enumerate() {
        let z_lo = p[2];
        let z_hi = if k + 1 < pts.len() {
            pts[k + 1][2]
        } else {
            r[2]
        };
        if z_hi <= z_lo {
            continue;
        }
        let mut slice: Vec<(f64, f64)> = pts[..=k].iter().map(|q| (q[0], q[1])).collect();
        hv += hv2d_sweep(&mut slice, &[r[0], r[1]]) * (z_hi - z_lo);
    }
    hv
}

/// Hypervolume error of an approximation front against a reference front:
/// `(HV(reference) − HV(approx)) / HV(reference)`, clamped at 0
/// (Zitzler et al. 2007, as used in the paper's Fig 15c).
pub fn hypervolume_error(approx: &[Vec<f64>], reference: &[Vec<f64>], ref_point: &[f64; 2]) -> f64 {
    let hv_ref = hypervolume_2d(reference, ref_point);
    if hv_ref <= 0.0 {
        return 0.0;
    }
    let hv_apx = hypervolume_2d(approx, ref_point);
    ((hv_ref - hv_apx) / hv_ref).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
    }

    #[test]
    fn front_extraction() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by (2,2)
            vec![2.0, 2.0], // duplicate — only one copy kept
        ];
        let front = pareto_front_indices(&pts);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn hypervolume_single_point() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_staircase() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        // Union of rectangles wrt (4,4): 3 + 2 + 1 + ... compute directly:
        // sweep: (1,3): (4-1)*(4-3)=3; (2,2): (4-2)*(3-2)=2; (3,1): (4-3)*(2-1)=1.
        let hv = hypervolume_2d(&front, &[4.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_monotone_in_points() {
        let f1 = vec![vec![2.0, 2.0]];
        let f2 = vec![vec![2.0, 2.0], vec![1.0, 3.0]];
        let r = [4.0, 4.0];
        assert!(hypervolume_2d(&f2, &r) >= hypervolume_2d(&f1, &r));
    }

    #[test]
    fn hypervolume_error_zero_for_same_front() {
        let f = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert_eq!(hypervolume_error(&f, &f, &[5.0, 5.0]), 0.0);
        let worse = vec![vec![3.0, 3.0]];
        assert!(hypervolume_error(&worse, &f, &[5.0, 5.0]) > 0.0);
    }

    #[test]
    fn hypervolume_3d_box() {
        let hv = hypervolume_3d(&[vec![1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
        // Two staggered points.
        let hv2 = hypervolume_3d(
            &[vec![1.0, 1.0, 1.0], vec![0.0, 0.0, 1.5]],
            &[2.0, 2.0, 2.0],
        );
        assert!(hv2 > hv);
    }

    #[test]
    fn points_beyond_reference_ignored() {
        let hv = hypervolume_2d(&[vec![5.0, 5.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
    }
}
