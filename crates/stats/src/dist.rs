//! Probability distributions (CDFs, survival functions, quantiles) needed to
//! turn test statistics into p-values.

#![allow(clippy::excessive_precision)] // coefficient tables are verbatim from the literature
use crate::special::{beta_inc, erfc, gamma_p, gamma_q};

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function 1 − Φ(x), computed without
/// cancellation for large `x`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Two-sided p-value of a standard-normal statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    (2.0 * normal_sf(z.abs())).min(1.0)
}

/// Standard normal quantile Φ⁻¹(p) (Acklam's rational approximation,
/// refined with one Halley step; |relative error| < 1e-12).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile domain");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Chi-squared cumulative distribution with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(df / 2.0, x / 2.0)
}

/// Chi-squared survival function (upper-tail p-value).
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Survival function of the F distribution with `(d1, d2)` degrees of
/// freedom — used for regression term significance.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    beta_inc(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn normal_cdf_known_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-12);
        assert_close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        assert_close(normal_cdf(-1.644_853_626_951_472), 0.05, 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            assert_close(normal_cdf(normal_quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn chi2_known_values() {
        // P(χ²₁ ≤ 3.841) ≈ 0.95.
        assert_close(chi2_cdf(3.841_458_820_694_124, 1.0), 0.95, 1e-9);
        // P(χ²₅ ≤ 11.0705) ≈ 0.95.
        assert_close(chi2_cdf(11.070_497_693_516_351, 5.0), 0.95, 1e-9);
        assert_close(chi2_sf(11.070_497_693_516_351, 5.0), 0.05, 1e-9);
    }

    #[test]
    fn t_p_value_matches_normal_for_large_df() {
        let p_t = t_two_sided_p(1.96, 1e7);
        let p_n = normal_two_sided_p(1.96);
        assert_close(p_t, p_n, 1e-5);
    }

    #[test]
    fn f_sf_is_monotone() {
        let a = f_sf(1.0, 3.0, 10.0);
        let b = f_sf(2.0, 3.0, 10.0);
        let c = f_sf(4.0, 3.0, 10.0);
        assert!(a > b && b > c);
    }

    #[test]
    fn normal_pdf_peak() {
        assert_close(normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
    }
}
