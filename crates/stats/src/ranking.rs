//! Rank transforms and set-similarity measures used by the evaluation
//! metrics (§6 of the paper).

use std::collections::BTreeSet;

/// Tie-averaged ranks (1-based), as used by Spearman correlation.
pub fn ranks_with_ties(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Plain Jaccard similarity of two sets of indices.
pub fn jaccard(a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Weighted Jaccard similarity, the paper's accuracy metric (§6):
/// `Σ w(A∩B) / Σ w(A∪B)` where `w` maps each element to its weight (the
/// ground-truth average causal effect of the option on the objective).
/// Elements missing from `weight` contribute a small floor so that
/// recommending an option with zero ground-truth effect still dilutes the
/// union.
pub fn weighted_jaccard(
    a: &BTreeSet<usize>,
    b: &BTreeSet<usize>,
    weight: &dyn Fn(usize) -> f64,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    const FLOOR: f64 = 1e-9;
    let inter: f64 = a.intersection(b).map(|&e| weight(e).max(FLOOR)).sum();
    let union: f64 = a.union(b).map(|&e| weight(e).max(FLOOR)).sum();
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Precision of predicted set `pred` against truth `truth`:
/// |pred ∩ truth| / |pred| (in percent-friendly 0–1).
pub fn precision(pred: &BTreeSet<usize>, truth: &BTreeSet<usize>) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    pred.intersection(truth).count() as f64 / pred.len() as f64
}

/// Recall of predicted set `pred` against truth `truth`:
/// |pred ∩ truth| / |truth|.
pub fn recall(pred: &BTreeSet<usize>, truth: &BTreeSet<usize>) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    pred.intersection(truth).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[usize]) -> BTreeSet<usize> {
        xs.iter().copied().collect()
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks_with_ties(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn jaccard_basic() {
        assert!((jaccard(&set(&[1, 2, 3]), &set(&[2, 3, 4])) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&[1]), &set(&[2])), 0.0);
    }

    #[test]
    fn weighted_jaccard_weights_dominate() {
        // Heavy overlap element dominates a light disjoint one.
        let w = |e: usize| if e == 1 { 10.0 } else { 0.1 };
        let sim = weighted_jaccard(&set(&[1, 2]), &set(&[1, 3]), &w);
        // inter = 10, union = 10 + 0.1 + 0.1.
        assert!((sim - 10.0 / 10.2).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_basic() {
        let p = set(&[1, 2, 3, 4]);
        let t = set(&[3, 4, 5]);
        assert!((precision(&p, &t) - 0.5).abs() < 1e-12);
        assert!((recall(&p, &t) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision(&set(&[]), &t), 0.0);
        assert_eq!(recall(&p, &set(&[])), 1.0);
    }
}
