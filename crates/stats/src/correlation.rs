//! Correlation measures: Pearson, Spearman, and partial correlation.
//!
//! Pearson correlations are defined over the canonical chunked moments of
//! [`crate::descriptive`] (fixed [`MOMENT_CHUNK`]-row chunks, Chan-merged in
//! row order), so the segmented `DataView`'s incrementally merged
//! correlation matrix is bit-identical to [`correlation_matrix`] on the
//! contiguous columns.

use crate::descriptive::{
    chunk_comoment, merge_col_moments, merge_comoment, variance_of, ColMoments, MOMENT_CHUNK,
};
use crate::matrix::Matrix;
use crate::ranking::ranks_with_ties;
use crate::segment::{chunk_cross_comoments, n_pairs, pair_index};
use crate::StatsError;

/// Pearson correlation from merged moment summaries — the single final
/// formula shared by [`pearson`] and the segmented `DataView`'s cached
/// correlation matrix (identical guards, identical rounding).
pub fn pearson_from_moments(mx: ColMoments, my: ColMoments, c2: f64) -> f64 {
    debug_assert_eq!(mx.n, my.n);
    let n = mx.n;
    if n < 2 {
        return 0.0;
    }
    let sx = variance_of(mx).sqrt();
    let sy = variance_of(my).sqrt();
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    let cov = c2 / (n - 1) as f64;
    (cov / (sx * sy)).clamp(-1.0, 1.0)
}

/// Pearson product-moment correlation; 0 if either side is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mut mx = ColMoments::EMPTY;
    let mut my = ColMoments::EMPTY;
    let mut c2 = 0.0;
    for (cx, cy) in x.chunks(MOMENT_CHUNK).zip(y.chunks(MOMENT_CHUNK)) {
        let bx = ColMoments::of_chunk(cx);
        let by = ColMoments::of_chunk(cy);
        let bc2 = chunk_comoment(cx, cy, bx.mean, by.mean);
        c2 = merge_comoment(c2, mx, my, bc2, bx, by);
        mx = merge_col_moments(mx, bx);
        my = merge_col_moments(my, by);
    }
    pearson_from_moments(mx, my, c2)
}

/// Spearman rank correlation (Pearson on tie-averaged ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    let rx = ranks_with_ties(x);
    let ry = ranks_with_ties(y);
    pearson(&rx, &ry)
}

/// Correlation matrix of a dataset given as columns.
///
/// Walks the data chunk-by-chunk rather than pair-by-pair: each chunk's
/// per-column moments are computed **once** (the pairwise loop used to
/// recompute them p times per column), its packed cross-comoment triangle
/// is filled by the lane-blocked kernel
/// ([`crate::segment::chunk_cross_comoments`]), and both merge into the
/// running accumulators with the same chunk-order Chan updates
/// [`pearson`] performs per pair. Every pair's fold is therefore
/// bit-identical to `pearson(&columns[i], &columns[j])`, and to the
/// segmented `DataView`'s cached matrix, which merges the identical
/// per-segment summaries.
pub fn correlation_matrix(columns: &[Vec<f64>]) -> Matrix {
    let p = columns.len();
    let n = columns.first().map_or(0, Vec::len);
    let mut acc_cols = vec![ColMoments::EMPTY; p];
    let mut acc_cross = vec![0.0; n_pairs(p)];
    let mut chunk_cols = vec![ColMoments::EMPTY; p];
    let mut chunk_cross = vec![0.0; n_pairs(p)];
    let mut means = vec![0.0; p];
    let mut start = 0;
    while start < n {
        let end = (start + MOMENT_CHUNK).min(n);
        let slices: Vec<&[f64]> = columns.iter().map(|c| &c[start..end]).collect();
        for ((m, mu), s) in chunk_cols.iter_mut().zip(&mut means).zip(&slices) {
            *m = ColMoments::of_chunk(s);
            *mu = m.mean;
        }
        chunk_cross_comoments(&slices, &means, &mut chunk_cross);
        // Cross moments merge against the pre-merge column moments.
        for i in 0..p {
            for j in (i + 1)..p {
                let k = pair_index(i, j, p);
                acc_cross[k] = merge_comoment(
                    acc_cross[k],
                    acc_cols[i],
                    acc_cols[j],
                    chunk_cross[k],
                    chunk_cols[i],
                    chunk_cols[j],
                );
            }
        }
        for (a, &b) in acc_cols.iter_mut().zip(&chunk_cols) {
            *a = merge_col_moments(*a, b);
        }
        start = end;
    }
    let mut m = Matrix::identity(p);
    for i in 0..p {
        for j in i + 1..p {
            let r = pearson_from_moments(acc_cols[i], acc_cols[j], acc_cross[pair_index(i, j, p)]);
            m[(i, j)] = r;
            m[(j, i)] = r;
        }
    }
    m
}

/// First-order partial correlation `ρ(x,y·z)` from three marginal
/// correlations; `None` when a conditioning margin is (numerically)
/// degenerate — treated as uninformative by the caller.
fn partial_first_order(rxy: f64, rxz: f64, ryz: f64) -> Option<f64> {
    let dx = 1.0 - rxz * rxz;
    let dy = 1.0 - ryz * ryz;
    if dx <= 1e-12 || dy <= 1e-12 {
        return None;
    }
    Some(((rxy - rxz * ryz) / (dx * dy).sqrt()).clamp(-1.0, 1.0))
}

/// Partial correlation of variables `x` and `y` given the conditioning set
/// `z`.
///
/// Well-conditioned sets of size 1 and 2 — the overwhelming bulk of the
/// bounded-depth skeleton sweep — use the closed-form recursion
/// `ρ(x,y·zw) = (ρ(x,y·z) − ρ(x,w·z)·ρ(y,w·z)) / √((1−ρ²(x,w·z))(1−ρ²(y,w·z)))`,
/// which needs no matrix allocation or inversion. Larger sets, and any
/// size-1/2 set with a (near-)degenerate margin — the heavily collinear
/// regime of the perf-counter stack, where the recursion's denominators
/// vanish — invert the precision matrix of the `{x, y} ∪ z` principal
/// submatrix, `ρ(x,y·z) = −P₀₁ / √(P₀₀ P₁₁)`, with the ridge-regularized
/// fallback yielding a conservative estimate rather than aborting the
/// surrounding search.
pub fn partial_correlation(
    corr: &Matrix,
    x: usize,
    y: usize,
    z: &[usize],
) -> Result<f64, StatsError> {
    match z {
        [] => return Ok(corr[(x, y)]),
        [a] => {
            if let Some(r) = partial_first_order(corr[(x, y)], corr[(x, *a)], corr[(y, *a)]) {
                return Ok(r);
            }
        }
        [a, b] => {
            if let (Some(rxy_a), Some(rxb_a), Some(ryb_a)) = (
                partial_first_order(corr[(x, y)], corr[(x, *a)], corr[(y, *a)]),
                partial_first_order(corr[(x, *b)], corr[(x, *a)], corr[(*b, *a)]),
                partial_first_order(corr[(y, *b)], corr[(y, *a)], corr[(*b, *a)]),
            ) {
                if let Some(r) = partial_first_order(rxy_a, rxb_a, ryb_a) {
                    return Ok(r);
                }
            }
        }
        _ => {}
    }
    let mut idx = vec![x, y];
    idx.extend_from_slice(z);
    let sub = corr.principal_submatrix(&idx);
    let (p00, p11, p01) = sub.precision_corner_ridge()?;
    let denom = (p00 * p11).sqrt();
    if denom < 1e-300 {
        return Ok(0.0);
    }
    Ok((-p01 / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_correlation_removes_confounder() {
        // Z ~ N(0,1); X = Z + small noise; Y = Z + small noise.
        // X and Y are strongly correlated marginally but nearly independent
        // given Z. Build the correlation matrix analytically-ish from data.
        let n = 2000;
        let mut z = Vec::with_capacity(n);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        // Deterministic pseudo-noise from a simple LCG so the test is
        // reproducible without rand as a dependency.
        let mut state: u64 = 42;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            let zi = (i as f64 / n as f64 - 0.5) * 4.0;
            z.push(zi);
            x.push(zi + 0.1 * next());
            y.push(zi + 0.1 * next());
        }
        let corr = correlation_matrix(&[x, y, z]);
        let marginal = corr[(0, 1)];
        let partial = partial_correlation(&corr, 0, 1, &[2]).unwrap();
        assert!(marginal > 0.9, "marginal was {marginal}");
        assert!(partial.abs() < 0.2, "partial was {partial}");
    }

    #[test]
    fn correlation_matrix_is_symmetric_unit_diagonal() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 5.0],
            vec![2.0, 1.0, 4.0, 4.0],
            vec![0.0, 1.0, 0.0, 1.0],
        ];
        let m = correlation_matrix(&cols);
        for i in 0..3 {
            assert!((m[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
            }
        }
    }
}
