//! Correlation measures: Pearson, Spearman, and partial correlation.

use crate::descriptive::{mean, std_dev};
use crate::matrix::Matrix;
use crate::ranking::ranks_with_ties;
use crate::StatsError;

/// Pearson product-moment correlation; 0 if either side is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let sx = std_dev(x);
    let sy = std_dev(y);
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    let cov: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - mx) * (b - my))
        .sum::<f64>()
        / (x.len() - 1) as f64;
    (cov / (sx * sy)).clamp(-1.0, 1.0)
}

/// Spearman rank correlation (Pearson on tie-averaged ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    let rx = ranks_with_ties(x);
    let ry = ranks_with_ties(y);
    pearson(&rx, &ry)
}

/// Correlation matrix of a dataset given as columns.
pub fn correlation_matrix(columns: &[Vec<f64>]) -> Matrix {
    let p = columns.len();
    let mut m = Matrix::identity(p);
    for i in 0..p {
        for j in i + 1..p {
            let r = pearson(&columns[i], &columns[j]);
            m[(i, j)] = r;
            m[(j, i)] = r;
        }
    }
    m
}

/// Partial correlation of variables `x` and `y` given the conditioning set
/// `z`, computed from a full correlation matrix via the precision matrix of
/// the `{x, y} ∪ z` principal submatrix:
/// `ρ(x,y·z) = −P₀₁ / √(P₀₀ P₁₁)`.
///
/// Falls back to a ridge-regularized inverse when the submatrix is
/// numerically singular (collinear conditioning variables), which yields a
/// conservative estimate rather than aborting the surrounding search.
pub fn partial_correlation(
    corr: &Matrix,
    x: usize,
    y: usize,
    z: &[usize],
) -> Result<f64, StatsError> {
    if z.is_empty() {
        return Ok(corr[(x, y)]);
    }
    let mut idx = vec![x, y];
    idx.extend_from_slice(z);
    let sub = corr.principal_submatrix(&idx);
    let prec = sub.inverse_ridge()?;
    let denom = (prec[(0, 0)] * prec[(1, 1)]).sqrt();
    if denom < 1e-300 {
        return Ok(0.0);
    }
    Ok((-prec[(0, 1)] / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_correlation_removes_confounder() {
        // Z ~ N(0,1); X = Z + small noise; Y = Z + small noise.
        // X and Y are strongly correlated marginally but nearly independent
        // given Z. Build the correlation matrix analytically-ish from data.
        let n = 2000;
        let mut z = Vec::with_capacity(n);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        // Deterministic pseudo-noise from a simple LCG so the test is
        // reproducible without rand as a dependency.
        let mut state: u64 = 42;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            let zi = (i as f64 / n as f64 - 0.5) * 4.0;
            z.push(zi);
            x.push(zi + 0.1 * next());
            y.push(zi + 0.1 * next());
        }
        let corr = correlation_matrix(&[x, y, z]);
        let marginal = corr[(0, 1)];
        let partial = partial_correlation(&corr, 0, 1, &[2]).unwrap();
        assert!(marginal > 0.9, "marginal was {marginal}");
        assert!(partial.abs() < 0.2, "partial was {partial}");
    }

    #[test]
    fn correlation_matrix_is_symmetric_unit_diagonal() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 5.0],
            vec![2.0, 1.0, 4.0, 4.0],
            vec![0.0, 1.0, 0.0, 1.0],
        ];
        let m = correlation_matrix(&cols);
        for i in 0..3 {
            assert!((m[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
            }
        }
    }
}
