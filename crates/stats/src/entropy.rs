//! Plug-in entropy and mutual-information estimators over discrete
//! (integer-coded) data.
//!
//! All entropies are in **bits** (log base 2), matching the entropic causal
//! inference literature the paper builds on (Kocaoglu et al., AAAI'17).
//!
//! # Dense contingency kernels
//!
//! [`mutual_information`] and [`conditional_mutual_information`] — the
//! G-test hot path of Stage II discovery — accumulate their contingency
//! tables as flat structure-of-arrays count vectors indexed by the
//! precomputed integer codes (`counts[x·|Y| + y] += 1`), not as per-row
//! tree/hash probes. A dense table iterated in **ascending code order**
//! visits exactly the key sequence a `BTreeMap` fold visits (absent keys
//! are zero-count cells, skipped on both paths), so every entropy term and
//! every stratum fold is performed in the identical order with identical
//! operands — the dense kernels are bit-identical to the sparse reference
//! folds ([`mutual_information_sparse`],
//! [`conditional_mutual_information_sparse`]), which remain the fallback
//! for degenerate code spaces (huge sparse code values) and the pin for
//! the equivalence proptests.

use std::collections::{BTreeMap, HashMap};

/// Exclusive upper bound of a code column (`max + 1`); 0 when empty.
fn code_bound(xs: &[usize]) -> usize {
    xs.iter().max().map_or(0, |&m| m + 1)
}

/// Whether a dense table of `cells` count cells is worth allocating for
/// `n` rows: bounded both absolutely (memory) and relative to the row
/// count (a table much larger than the sample would spend longer zeroing
/// and scanning cells than the sparse fold spends probing).
fn dense_feasible(cells: Option<usize>, n: usize) -> bool {
    const DENSE_CELL_BUDGET: usize = 1 << 22;
    match cells {
        Some(c) => c <= DENSE_CELL_BUDGET && c <= 16 * n.max(256),
        None => false,
    }
}

/// Entropy of a dense count vector in ascending code order: the exact
/// term sequence of [`entropy`]'s BTreeMap fold (zero cells are skipped,
/// as absent keys are).
fn entropy_from_counts(counts: &[u32], n: f64) -> f64 {
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy of a probability vector (entries may include zeros;
/// they contribute nothing).
pub fn entropy_of_dist(p: &[f64]) -> f64 {
    p.iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| -pi * pi.log2())
        .sum()
}

/// Plug-in entropy of an integer-coded sample.
pub fn entropy(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let n = xs.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Joint entropy H(X, Y) of two integer-coded samples.
pub fn joint_entropy(xs: &[usize], ys: &[usize]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (&x, &y) in xs.iter().zip(ys) {
        *counts.entry((x, y)).or_insert(0) += 1;
    }
    let n = xs.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Conditional entropy H(X | Y) = H(X, Y) − H(Y).
pub fn conditional_entropy(xs: &[usize], ys: &[usize]) -> f64 {
    (joint_entropy(xs, ys) - entropy(ys)).max(0.0)
}

/// Mutual information I(X; Y) = H(X) + H(Y) − H(X, Y); clamped at 0 to
/// absorb floating-point negatives.
///
/// Uses the dense contingency kernel (see the module docs) when the code
/// space is small enough, the sparse fold otherwise — both produce
/// identical bits.
pub fn mutual_information(xs: &[usize], ys: &[usize]) -> f64 {
    if xs.is_empty() {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        return 0.0;
    }
    mutual_information_bounded(xs, ys, code_bound(xs), code_bound(ys))
}

/// [`mutual_information`] with caller-supplied code bounds (`x < nx` and
/// `y < ny` for every row), skipping the per-call `max`-scans over the
/// code columns. Callers holding cached discretization arities (the
/// G-test CI backends) pass them straight through. Any valid upper bound
/// produces identical bits: oversized bounds only add zero-count cells,
/// which both the dense ascending-code folds and the sparse BTreeMap
/// folds skip — at worst the dense/sparse dispatch flips, and those two
/// paths are bit-identical by construction (module docs).
pub fn mutual_information_bounded(xs: &[usize], ys: &[usize], nx: usize, ny: usize) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x < nx), "x code out of bound");
    debug_assert!(ys.iter().all(|&y| y < ny), "y code out of bound");
    if !dense_feasible(nx.checked_mul(ny), xs.len()) {
        return mutual_information_sparse(xs, ys);
    }
    let mut joint = vec![0u32; nx * ny];
    for (&x, &y) in xs.iter().zip(ys) {
        joint[x * ny + y] += 1;
    }
    // Marginals from integer row/column sums (counts are exact, so the
    // summation order is immaterial here — only the float folds below
    // must stay ordered).
    let mut cx = vec![0u32; nx];
    let mut cy = vec![0u32; ny];
    for x in 0..nx {
        let row = &joint[x * ny..(x + 1) * ny];
        for (cyk, &c) in cy.iter_mut().zip(row) {
            cx[x] += c;
            *cyk += c;
        }
    }
    let n = xs.len() as f64;
    let hx = entropy_from_counts(&cx, n);
    let hy = entropy_from_counts(&cy, n);
    // Ascending joint index = lexicographic (x, y) = the BTreeMap tuple
    // key order of `joint_entropy`.
    let hxy = entropy_from_counts(&joint, n);
    (hx + hy - hxy).max(0.0)
}

/// The sparse (BTreeMap-fold) reference of [`mutual_information`]: the
/// original definition, kept as the fallback for degenerate code spaces
/// and as the pin the dense kernel's equivalence proptests compare
/// against.
pub fn mutual_information_sparse(xs: &[usize], ys: &[usize]) -> f64 {
    (entropy(xs) + entropy(ys) - joint_entropy(xs, ys)).max(0.0)
}

/// Conditional mutual information I(X; Y | Z) for an integer-coded
/// conditioning column: `Σ_z p(z) · I(X; Y | Z = z)`.
///
/// Uses one dense `|Z| × |X| × |Y|` count array filled in a single pass
/// over the precomputed code lanes when the code space is small enough
/// (see the module docs), the per-stratum sparse fold otherwise — both
/// produce identical bits: strata are visited in ascending z order, and
/// each stratum's marginal/joint entropy terms fold in ascending code
/// order, exactly as the BTreeMap path does.
pub fn conditional_mutual_information(xs: &[usize], ys: &[usize], zs: &[usize]) -> f64 {
    if xs.is_empty() {
        assert!(
            xs.len() == ys.len() && ys.len() == zs.len(),
            "length mismatch"
        );
        return 0.0;
    }
    conditional_mutual_information_bounded(
        xs,
        ys,
        zs,
        code_bound(xs),
        code_bound(ys),
        code_bound(zs),
    )
}

/// [`conditional_mutual_information`] with caller-supplied code bounds
/// (`x < nx`, `y < ny`, `z < nz` for every row), skipping the per-call
/// `max`-scans. Same bit-identity contract as
/// [`mutual_information_bounded`]: any valid upper bound yields the same
/// bits, since zero-count cells and empty strata are skipped on every
/// path.
pub fn conditional_mutual_information_bounded(
    xs: &[usize],
    ys: &[usize],
    zs: &[usize],
    nx: usize,
    ny: usize,
    nz: usize,
) -> f64 {
    assert!(
        xs.len() == ys.len() && ys.len() == zs.len(),
        "length mismatch"
    );
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x < nx), "x code out of bound");
    debug_assert!(ys.iter().all(|&y| y < ny), "y code out of bound");
    debug_assert!(zs.iter().all(|&z| z < nz), "z code out of bound");
    let cells = nx.checked_mul(ny).and_then(|c| c.checked_mul(nz));
    if !dense_feasible(cells, xs.len()) {
        return conditional_mutual_information_sparse(xs, ys, zs);
    }
    let stride = nx * ny;
    let mut counts = vec![0u32; nz * stride];
    for i in 0..xs.len() {
        counts[zs[i] * stride + xs[i] * ny + ys[i]] += 1;
    }
    let n = xs.len() as f64;
    let mut cx = vec![0u32; nx];
    let mut cy = vec![0u32; ny];
    let mut total = 0.0;
    for z in 0..nz {
        let stratum = &counts[z * stride..(z + 1) * stride];
        cx.fill(0);
        cy.fill(0);
        let mut rows: u64 = 0;
        for x in 0..nx {
            let row = &stratum[x * ny..(x + 1) * ny];
            for (cyk, &c) in cy.iter_mut().zip(row) {
                cx[x] += c;
                *cyk += c;
                rows += c as u64;
            }
        }
        if rows == 0 {
            // An empty stratum has no key in the sparse fold either.
            continue;
        }
        let nzf = rows as f64;
        let hx = entropy_from_counts(&cx, nzf);
        let hy = entropy_from_counts(&cy, nzf);
        let hxy = entropy_from_counts(stratum, nzf);
        total += (nzf / n) * (hx + hy - hxy).max(0.0);
    }
    total
}

/// The sparse (stratified BTreeMap) reference of
/// [`conditional_mutual_information`]: the original definition, kept as
/// the fallback for degenerate code spaces and as the equivalence-proptest
/// pin.
pub fn conditional_mutual_information_sparse(xs: &[usize], ys: &[usize], zs: &[usize]) -> f64 {
    assert!(
        xs.len() == ys.len() && ys.len() == zs.len(),
        "length mismatch"
    );
    if xs.is_empty() {
        return 0.0;
    }
    let mut strata: BTreeMap<usize, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for i in 0..xs.len() {
        let entry = strata.entry(zs[i]).or_default();
        entry.0.push(xs[i]);
        entry.1.push(ys[i]);
    }
    let n = xs.len() as f64;
    strata
        .values()
        .map(|(sx, sy)| (sx.len() as f64 / n) * mutual_information_sparse(sx, sy))
        .sum()
}

/// Combines several integer-coded columns into a single stratum code, for
/// use as a joint conditioning variable. Codes are assigned in first-seen
/// order, so the result is deterministic for a given row order.
pub fn joint_code(columns: &[&[usize]], n: usize) -> Vec<usize> {
    joint_code_counted(columns, n).0
}

/// [`joint_code`] returning the distinct stratum count alongside the
/// codes. First-seen codes are contiguous from 0, so the count is also
/// the exclusive code bound — callers can feed it straight to
/// [`conditional_mutual_information_bounded`] without rescanning.
pub fn joint_code_counted(columns: &[&[usize]], n: usize) -> (Vec<usize>, usize) {
    let mut codes: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let key: Vec<usize> = columns.iter().map(|c| c[i]).collect();
        let next = codes.len();
        out.push(*codes.entry(key).or_insert(next));
    }
    let distinct = codes.len();
    (out, distinct)
}

/// Empirical conditional distributions p(Y | X = x) as a map from x-code to
/// a probability vector over y-codes `0..y_arity`.
pub fn conditionals(xs: &[usize], ys: &[usize], y_arity: usize) -> BTreeMap<usize, Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let mut counts: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for (&x, &y) in xs.iter().zip(ys) {
        let row = counts.entry(x).or_insert_with(|| vec![0.0; y_arity]);
        row[y.min(y_arity - 1)] += 1.0;
    }
    for row in counts.values_mut() {
        let total: f64 = row.iter().sum();
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_and_degenerate() {
        assert!((entropy(&[0, 1, 0, 1]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(&[7, 7, 7]), 0.0);
        let h4 = entropy(&[0, 1, 2, 3]);
        assert!((h4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mi_of_identical_is_entropy() {
        let xs = [0, 1, 2, 0, 1, 2];
        let mi = mutual_information(&xs, &xs);
        assert!((mi - entropy(&xs)).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_is_zero() {
        // Fully crossed design: X and Y independent.
        let xs = [0, 0, 1, 1];
        let ys = [0, 1, 0, 1];
        assert!(mutual_information(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn cmi_detects_conditional_independence() {
        // X and Y both copies of Z: dependent marginally, independent
        // given Z.
        let zs = [0, 0, 1, 1, 0, 1, 0, 1];
        let xs = zs;
        let ys = zs;
        assert!(mutual_information(&xs, &ys) > 0.9);
        assert!(conditional_mutual_information(&xs, &ys, &zs).abs() < 1e-12);
    }

    #[test]
    fn bounded_variants_match_scanned_bounds_bitwise() {
        let xs = [0usize, 2, 1, 2, 0, 1, 2, 0];
        let ys = [1usize, 0, 1, 2, 2, 0, 1, 2];
        let zs = [0usize, 1, 0, 1, 1, 0, 0, 1];
        let mi = mutual_information(&xs, &ys);
        // Exact and oversized bounds both reproduce the scanned result
        // bit for bit (extra cells are zero-count and skipped).
        assert_eq!(
            mi.to_bits(),
            mutual_information_bounded(&xs, &ys, 3, 3).to_bits()
        );
        assert_eq!(
            mi.to_bits(),
            mutual_information_bounded(&xs, &ys, 7, 5).to_bits()
        );
        let cmi = conditional_mutual_information(&xs, &ys, &zs);
        assert_eq!(
            cmi.to_bits(),
            conditional_mutual_information_bounded(&xs, &ys, &zs, 3, 3, 2).to_bits()
        );
        assert_eq!(
            cmi.to_bits(),
            conditional_mutual_information_bounded(&xs, &ys, &zs, 6, 4, 3).to_bits()
        );
    }

    #[test]
    fn conditional_entropy_chain_rule() {
        let xs = [0, 1, 0, 1, 1, 0];
        let ys = [0, 0, 1, 1, 0, 1];
        let h = conditional_entropy(&xs, &ys);
        assert!((h - (joint_entropy(&xs, &ys) - entropy(&ys))).abs() < 1e-12);
    }

    #[test]
    fn joint_code_distinguishes_combinations() {
        let a = [0usize, 0, 1, 1];
        let b = [0usize, 1, 0, 1];
        let code = joint_code(&[&a, &b], 4);
        // Four distinct combinations → four distinct codes.
        let unique: std::collections::BTreeSet<_> = code.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn conditionals_are_normalized() {
        let xs = [0, 0, 0, 1, 1];
        let ys = [0, 0, 1, 1, 1];
        let c = conditionals(&xs, &ys, 2);
        for row in c.values() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert!((c[&0][0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[&1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_dist_matches_sample_entropy() {
        let h = entropy_of_dist(&[0.5, 0.25, 0.25]);
        assert!((h - 1.5).abs() < 1e-12);
    }
}
