//! Small dense-matrix linear algebra used across the workspace.
//!
//! The matrices involved in causal discovery and effect estimation are small
//! (at most a few hundred rows/columns: correlation submatrices, design
//! matrices of polynomial regressions), so a straightforward row-major dense
//! implementation with LU and Cholesky factorizations is both sufficient and
//! dependency-free.

use crate::StatsError;

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single column, copied out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch in matvec");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Extracts the square submatrix over the given (row == column) indices.
    pub fn principal_submatrix(&self, idx: &[usize]) -> Matrix {
        let k = idx.len();
        let mut out = Matrix::zeros(k, k);
        for (i, &ri) in idx.iter().enumerate() {
            for (j, &cj) in idx.iter().enumerate() {
                out[(i, j)] = self[(ri, cj)];
            }
        }
        out
    }

    /// Cholesky factorization `A = L·Lᵀ` for a symmetric positive-definite
    /// matrix; returns the lower-triangular factor.
    pub fn cholesky(&self) -> Result<Matrix, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::NotSquare);
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` via LU decomposition with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        let lu = Lu::decompose(self)?;
        Ok(lu.solve(b))
    }

    /// Matrix inverse via LU decomposition with partial pivoting.
    pub fn inverse(&self) -> Result<Matrix, StatsError> {
        let lu = Lu::decompose(self)?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let x = lu.solve(&e);
            for r in 0..n {
                inv[(r, c)] = x[r];
            }
            e[c] = 0.0;
        }
        Ok(inv)
    }

    /// The three precision entries `(A⁻¹₀₀, A⁻¹₁₁, A⁻¹₀₁)` a partial
    /// correlation reads, via the same LU-with-partial-pivoting
    /// factorization as [`Matrix::inverse`] but solving only unit columns
    /// 0 and 1. Each inverse column is an independent triangular solve of
    /// the shared factorization, so the returned entries are **bit
    /// identical** to the full inverse's — at 2/n of the solve work and
    /// without materializing the n×n result. Fails exactly when
    /// [`Matrix::inverse`] fails (a singular factorization).
    pub fn precision_corner(&self) -> Result<(f64, f64, f64), StatsError> {
        let lu = Lu::decompose(self)?;
        let n = self.rows;
        debug_assert!(n >= 2);
        let mut e = vec![0.0; n];
        e[0] = 1.0;
        let x0 = lu.solve(&e);
        e[0] = 0.0;
        e[1] = 1.0;
        let x1 = lu.solve(&e);
        Ok((x0[0], x1[1], x1[0]))
    }

    /// [`Matrix::precision_corner`] with the same ridge fallback as
    /// [`Matrix::inverse_ridge`]: identical attempt sequence, so the
    /// returned entries carry the bits the full ridge inverse would.
    pub fn precision_corner_ridge(&self) -> Result<(f64, f64, f64), StatsError> {
        if let Ok(p) = self.precision_corner() {
            return Ok(p);
        }
        let n = self.rows;
        let mut lambda = 1e-8;
        for _ in 0..12 {
            let mut a = self.clone();
            for i in 0..n {
                a[(i, i)] += lambda;
            }
            if let Ok(p) = a.precision_corner() {
                return Ok(p);
            }
            lambda *= 10.0;
        }
        Err(StatsError::Singular)
    }

    /// Inverse with a ridge fallback: if `A` is singular, retries on
    /// `A + λI` with escalating `λ`. Correlation submatrices encountered
    /// during constraint-based search are occasionally numerically singular;
    /// the ridge keeps the search going with a conservative estimate.
    pub fn inverse_ridge(&self) -> Result<Matrix, StatsError> {
        if let Ok(inv) = self.inverse() {
            return Ok(inv);
        }
        let n = self.rows;
        let mut lambda = 1e-8;
        for _ in 0..12 {
            let mut a = self.clone();
            for i in 0..n {
                a[(i, i)] += lambda;
            }
            if let Ok(inv) = a.inverse() {
                return Ok(inv);
            }
            lambda *= 10.0;
        }
        Err(StatsError::Singular)
    }

    /// Frobenius norm of `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn frobenius_distance(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// LU decomposition with partial pivoting (Doolittle, in-place storage).
struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
}

impl Lu {
    fn decompose(a: &Matrix) -> Result<Self, StatsError> {
        if a.rows != a.cols {
            return Err(StatsError::NotSquare);
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at or below row k.
            let mut pivot = k;
            let mut max = lu[(k, k)].abs();
            for r in k + 1..n {
                if lu[(r, k)].abs() > max {
                    max = lu[(r, k)].abs();
                    pivot = r;
                }
            }
            if max < 1e-300 {
                return Err(StatsError::Singular);
            }
            if pivot != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot, c)];
                    lu[(pivot, c)] = tmp;
                }
                perm.swap(k, pivot);
            }
            for r in k + 1..n {
                let f = lu[(r, k)] / lu[(k, k)];
                lu[(r, k)] = f;
                for c in k + 1..n {
                    lu[(r, c)] -= f * lu[(k, c)];
                }
            }
        }
        Ok(Self { lu, perm })
    }

    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        // Apply permutation, then forward- and back-substitute.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            for c in 0..r {
                y[r] -= self.lu[(r, c)] * y[c];
            }
        }
        for r in (0..n).rev() {
            for c in r + 1..n {
                y[r] -= self.lu[(r, c)] * y[c];
            }
            y[r] /= self.lu[(r, r)];
        }
        y
    }
}

/// Ordinary least squares: solves `min ‖Xβ − y‖²` via the normal equations
/// with a tiny ridge for numerical robustness. Returns the coefficient
/// vector β (length = number of columns of `X`).
pub fn ols(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, StatsError> {
    if x.rows() != y.len() {
        return Err(StatsError::DimensionMismatch);
    }
    let xt = x.transpose();
    let mut xtx = xt.matmul(x);
    let n = xtx.rows();
    for i in 0..n {
        xtx[(i, i)] += 1e-10;
    }
    let xty = xt.matvec(y);
    xtx.solve(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(prod[(i, j)], expect, 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ]);
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose());
        assert!(a.frobenius_distance(&back) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(a.cholesky(), Err(StatsError::NotPositiveDefinite)));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.inverse().is_err());
        // ... but the ridge fallback still produces something usable.
        assert!(a.inverse_ridge().is_ok());
    }

    #[test]
    fn ols_recovers_exact_linear_model() {
        // y = 2 + 3 x1 - x2 with no noise.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 2.0, 1.0],
            vec![1.0, 1.0, 3.0],
        ]);
        let y: Vec<f64> = (0..5).map(|r| 2.0 + 3.0 * x[(r, 1)] - x[(r, 2)]).collect();
        let beta = ols(&x, &y).unwrap();
        assert_close(beta[0], 2.0, 1e-6);
        assert_close(beta[1], 3.0, 1e-6);
        assert_close(beta[2], -1.0, 1e-6);
    }

    #[test]
    fn principal_submatrix_selects() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let s = a.principal_submatrix(&[0, 2]);
        assert_eq!(s, Matrix::from_rows(&[vec![1.0, 3.0], vec![7.0, 9.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }
}
