//! Special functions needed for p-value computation.
//!
//! Everything is implemented from standard series/continued-fraction
//! expansions (Abramowitz & Stegun; Numerical Recipes) so the workspace has
//! no external numerics dependency. Accuracy is ~1e-10 relative over the
//! ranges exercised by the independence tests, which is far below the
//! decision thresholds (α ≈ 0.01–0.05) used by causal discovery.

#![allow(clippy::excessive_precision)] // coefficient tables are verbatim from the literature
/// The error function `erf(x)`, accurate to ~1e-12.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x)`.
///
/// Uses the Chebyshev-fitted rational approximation from Numerical Recipes
/// (`erfcc`), refined with one extra term for double precision.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients for erfc (NR 3rd ed., §6.2.2).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.4196979235649026e-1,
        1.9476473204185836e-2,
        -9.561514786808631e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (`betai`).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "beta_inc domain");
    if x == 0.0 || x == 1.0 {
        return x;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-14);
        assert_close(erf(1.0), 0.842_700_792_949_715, 1e-9);
        assert_close(erf(-1.0), -0.842_700_792_949_715, 1e-9);
        assert_close(erf(2.0), 0.995_322_265_018_953, 1e-9);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.5, -0.3, 0.0, 0.7, 1.9, 3.5] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24.0_f64.ln(), 1e-10);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.2, 1.0, 3.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.5, 0.9] {
            assert_close(beta_inc(1.0, 1.0, x), x, 1e-10);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        assert_close(
            beta_inc(2.0, 5.0, 0.3),
            1.0 - beta_inc(5.0, 2.0, 0.7),
            1e-10,
        );
    }
}
