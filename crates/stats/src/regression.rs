//! Polynomial regression with stepwise term selection.
//!
//! This powers two things: (i) the *performance-influence models* the paper
//! uses as the incumbent industry approach (§2, Figs 4/5/21/22 — non-linear
//! regression with forward and backward elimination, stepwise training); and
//! (ii) the functional nodes of fitted causal performance models (§3 —
//! "we characterize the functional nodes with polynomial models").

use crate::descriptive::{mape, mean, r_squared};
use crate::matrix::Matrix;
use crate::StatsError;

/// A polynomial term: a multiset of variable indices.
///
/// `[]` is the intercept, `[3]` is `x₃`, `[3, 3]` is `x₃²`, `[1, 4]` is the
/// interaction `x₁·x₄`. Indices are kept sorted so equal terms compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term(pub Vec<usize>);

impl Term {
    /// The intercept term.
    pub fn intercept() -> Self {
        Term(Vec::new())
    }

    /// A single-variable linear term.
    pub fn linear(i: usize) -> Self {
        Term(vec![i])
    }

    /// An interaction (or power) term over the given indices.
    pub fn interaction(mut idx: Vec<usize>) -> Self {
        idx.sort_unstable();
        Term(idx)
    }

    /// Degree of the term (0 for the intercept).
    pub fn degree(&self) -> usize {
        self.0.len()
    }

    /// Distinct variables appearing in the term.
    pub fn variables(&self) -> Vec<usize> {
        let mut v = self.0.clone();
        v.dedup();
        v
    }

    /// Evaluates the term on one row of predictor values.
    pub fn eval(&self, row: &dyn Fn(usize) -> f64) -> f64 {
        self.0.iter().map(|&i| row(i)).product()
    }

    /// Human-readable rendering with variable names, e.g.
    /// `"CPU Frequency ⊗ Bitrate"` (matching the paper's Fig 5 notation).
    pub fn render(&self, names: &dyn Fn(usize) -> String) -> String {
        if self.0.is_empty() {
            return "1".to_string();
        }
        self.0
            .iter()
            .map(|&i| names(i))
            .collect::<Vec<_>>()
            .join(" ⊗ ")
    }
}

/// A fitted linear-in-parameters polynomial model `y = Σ βᵢ·termᵢ`.
#[derive(Debug, Clone)]
pub struct PolyModel {
    /// Selected terms, first is always the intercept.
    pub terms: Vec<Term>,
    /// Coefficients aligned with `terms`.
    pub coefficients: Vec<f64>,
    /// Training residual variance (biased MLE denominator, for BIC).
    pub sigma2: f64,
    /// Training R².
    pub r2: f64,
}

impl PolyModel {
    /// Predicts one sample given a column-value accessor.
    pub fn predict_row(&self, row: &dyn Fn(usize) -> f64) -> f64 {
        self.terms
            .iter()
            .zip(&self.coefficients)
            .map(|(t, &b)| b * t.eval(row))
            .sum()
    }

    /// Predicts all rows of column-major data. Accumulates term by term
    /// with direct column indexing — the same addition order as
    /// [`Self::predict_row`] per row (both fold terms in order from 0.0),
    /// so results are bit-identical, just without the per-value virtual
    /// dispatch. Degree ≤ 2 terms (everything the SCM's functional nodes
    /// use) take unrolled inner loops.
    pub fn predict(&self, columns: &[Vec<f64>]) -> Vec<f64> {
        let n = columns.first().map_or(0, Vec::len);
        let mut out = vec![0.0; n];
        for (term, &b) in self.terms.iter().zip(&self.coefficients) {
            match term.0.as_slice() {
                [] => out.iter_mut().for_each(|o| *o += b),
                [i] => {
                    let c = &columns[*i];
                    out.iter_mut().zip(c).for_each(|(o, &v)| *o += b * v);
                }
                [i, j] => {
                    let (ci, cj) = (&columns[*i], &columns[*j]);
                    for ((o, &vi), &vj) in out.iter_mut().zip(ci).zip(cj) {
                        *o += b * (vi * vj);
                    }
                }
                idx => {
                    for (r, o) in out.iter_mut().enumerate() {
                        *o += b * idx.iter().map(|&i| columns[i][r]).product::<f64>();
                    }
                }
            }
        }
        out
    }

    /// Coefficient of a specific term, if present.
    pub fn coefficient(&self, term: &Term) -> Option<f64> {
        self.terms
            .iter()
            .position(|t| t == term)
            .map(|i| self.coefficients[i])
    }

    /// Mean absolute percentage error on a dataset.
    pub fn mape_on(&self, columns: &[Vec<f64>], y: &[f64]) -> f64 {
        mape(y, &self.predict(columns))
    }

    /// Non-intercept terms (the "predictors" in the paper's Fig 4 sense).
    pub fn predictors(&self) -> Vec<&Term> {
        self.terms.iter().filter(|t| t.degree() > 0).collect()
    }
}

/// The normal equations `XᵀX` / `Xᵀy` of a term set, accumulated over a
/// run of rows — the mergeable sufficient statistic of an OLS fit.
///
/// Like the moment layer in [`crate::descriptive`], Grams are defined
/// *canonically* over fixed [`MOMENT_CHUNK`]-row chunks summed in row
/// order: [`fit_terms`] folds per-chunk Grams exactly as an incremental
/// consumer folds cached per-segment Grams, so a warm-started refit over
/// shared segments is bit-identical to a cold fit.
#[derive(Debug, Clone)]
pub struct TermGram {
    /// Rows folded in.
    pub n: usize,
    /// `XᵀX`, `t × t`.
    pub xtx: Matrix,
    /// `Xᵀy`, length `t`.
    pub xty: Vec<f64>,
}

use crate::descriptive::MOMENT_CHUNK;

impl TermGram {
    /// The all-zero Gram (identity of [`TermGram::add`]).
    pub fn zeros(t: usize) -> Self {
        Self {
            n: 0,
            xtx: Matrix::zeros(t, t),
            xty: vec![0.0; t],
        }
    }

    /// Gram of one chunk of rows. `cols[i]` is column `i` restricted to
    /// the chunk (chunk-local row indexing); `y` is the chunk's response.
    ///
    /// Evaluates the chunk's design block term-major, then fills each
    /// normal-equation entry as one ordered dot product over the chunk's
    /// rows — the same per-entry row-order sum a row-major accumulation
    /// produces, so the result is independent of this loop structure.
    pub fn of_chunk(terms: &[Term], cols: &[&[f64]], y: &[f64]) -> Self {
        let t = terms.len();
        let n = y.len();
        let mut g = Self::zeros(t);
        g.n = n;
        let mut block = vec![0.0; t * n];
        for (c, term) in terms.iter().enumerate() {
            let row = &mut block[c * n..(c + 1) * n];
            match term.0.as_slice() {
                [] => row.fill(1.0),
                [i] => row.copy_from_slice(&cols[*i][..n]),
                [i, j] => {
                    let (ci, cj) = (&cols[*i][..n], &cols[*j][..n]);
                    for ((o, &vi), &vj) in row.iter_mut().zip(ci).zip(cj) {
                        *o = vi * vj;
                    }
                }
                idx => {
                    for (r, o) in row.iter_mut().enumerate() {
                        *o = idx.iter().map(|&i| cols[i][r]).product();
                    }
                }
            }
        }
        for a in 0..t {
            let ra = &block[a * n..(a + 1) * n];
            for b in a..t {
                let rb = &block[b * n..(b + 1) * n];
                g.xtx[(a, b)] = ra.iter().zip(rb).map(|(&u, &v)| u * v).sum();
            }
            g.xty[a] = ra.iter().zip(y).map(|(&u, &v)| u * v).sum();
        }
        g
    }

    /// Element-wise merge (row-run concatenation); callers must fold
    /// chunks in row order.
    pub fn add(&mut self, other: &TermGram) {
        debug_assert_eq!(self.xty.len(), other.xty.len(), "gram size mismatch");
        self.n += other.n;
        let t = self.xty.len();
        for a in 0..t {
            for b in a..t {
                self.xtx[(a, b)] += other.xtx[(a, b)];
            }
            self.xty[a] += other.xty[a];
        }
    }

    /// Solves the (ridge-stabilized, mirrored) normal equations for the
    /// coefficient vector.
    pub fn solve(&self) -> Result<Vec<f64>, StatsError> {
        let t = self.xty.len();
        let mut xtx = self.xtx.clone();
        for a in 0..t {
            for b in (a + 1)..t {
                xtx[(b, a)] = xtx[(a, b)];
            }
            xtx[(a, a)] += 1e-10;
        }
        xtx.solve(&self.xty)
    }
}

/// The canonical chunked Gram of a full column-major dataset.
pub fn gram_of_columns(columns: &[Vec<f64>], y: &[f64], terms: &[Term]) -> TermGram {
    let n = y.len();
    let mut gram = TermGram::zeros(terms.len());
    let mut start = 0;
    while start < n {
        let end = (start + MOMENT_CHUNK).min(n);
        let cols: Vec<&[f64]> = columns.iter().map(|c| &c[start..end]).collect();
        let chunk = TermGram::of_chunk(terms, &cols, &y[start..end]);
        gram.add(&chunk);
        start = end;
    }
    gram
}

/// Finishes a fit from accumulated normal equations: solve, then score the
/// model on the full data (predictions are recomputed from the
/// coefficients, so callers fitting from merged Grams and callers fitting
/// cold share one code path).
pub fn fit_gram(
    gram: &TermGram,
    columns: &[Vec<f64>],
    y: &[f64],
    terms: &[Term],
) -> Result<PolyModel, StatsError> {
    let beta = gram.solve()?;
    let mut model = PolyModel {
        terms: terms.to_vec(),
        coefficients: beta,
        sigma2: 0.0,
        r2: 0.0,
    };
    let pred = model.predict(columns);
    let n = y.len() as f64;
    let sse: f64 = y.iter().zip(&pred).map(|(a, p)| (a - p) * (a - p)).sum();
    model.sigma2 = (sse / n).max(1e-300);
    model.r2 = r_squared(y, &pred);
    Ok(model)
}

/// Fits OLS coefficients for a fixed term set (canonical chunked normal
/// equations; see [`TermGram`]).
pub fn fit_terms(columns: &[Vec<f64>], y: &[f64], terms: &[Term]) -> Result<PolyModel, StatsError> {
    fit_gram(&gram_of_columns(columns, y, terms), columns, y, terms)
}

/// Bayesian information criterion of a fitted model (lower is better).
pub fn bic(model: &PolyModel, n: usize) -> f64 {
    let k = model.terms.len() as f64;
    let n = n as f64;
    n * model.sigma2.ln() + k * n.ln()
}

/// Options for stepwise selection.
#[derive(Debug, Clone)]
pub struct StepwiseOptions {
    /// Maximum interaction degree of candidate terms (2 ⇒ pairwise, 3 ⇒
    /// also three-way interactions, as in the paper's Fig 5).
    pub max_degree: usize,
    /// Hard cap on selected non-intercept terms.
    pub max_terms: usize,
    /// Minimum BIC improvement required to add a term.
    pub min_improvement: f64,
    /// Whether to run backward elimination after forward selection.
    pub backward: bool,
}

impl Default for StepwiseOptions {
    fn default() -> Self {
        Self {
            max_degree: 3,
            max_terms: 40,
            min_improvement: 1e-6,
            backward: true,
        }
    }
}

/// Stepwise (forward + backward) selection of polynomial terms, the
/// construction used for performance-influence models in the systems
/// literature (Siegmund et al., FSE'15) and reproduced by the paper in §2.
///
/// Candidate pool: all linear terms and squares; pairwise interactions among
/// variables already found relevant; three-way interactions among relevant
/// pairs when `max_degree ≥ 3`. Growing the pool hierarchically keeps the
/// search polynomial in the number of options.
pub fn stepwise_fit(
    columns: &[Vec<f64>],
    y: &[f64],
    opts: &StepwiseOptions,
) -> Result<PolyModel, StatsError> {
    let p = columns.len();
    let n = y.len();
    let mut selected = vec![Term::intercept()];
    let mut model = fit_terms(columns, y, &selected)?;
    let mut best_bic = bic(&model, n);

    // Candidate generation: all linear terms and squares, plus pairwise
    // interactions pre-screened by |corr(xᵢ·xⱼ, y)| so that interactions
    // without main effects (weak heredity violations) are still reachable
    // while the pool stays tractable for large option counts.
    let mut pool: Vec<Term> = (0..p).map(Term::linear).collect();
    pool.extend((0..p).map(|i| Term::interaction(vec![i, i])));
    let mut pair_scores: Vec<(f64, Term)> = Vec::new();
    for i in 0..p {
        for j in i + 1..p {
            let prod: Vec<f64> = (0..n).map(|r| columns[i][r] * columns[j][r]).collect();
            let score = crate::correlation::pearson(&prod, y).abs();
            pair_scores.push((score, Term::interaction(vec![i, j])));
        }
    }
    pair_scores.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN pair score"));
    let keep = (3 * opts.max_terms).max(60);
    pool.extend(pair_scores.into_iter().take(keep).map(|(_, t)| t));

    let mut added_vars: Vec<usize> = Vec::new();
    loop {
        if selected.len() > opts.max_terms {
            break;
        }
        // Forward step: try every pool candidate not yet selected.
        let mut best: Option<(f64, Term)> = None;
        for cand in &pool {
            if selected.contains(cand) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(cand.clone());
            if let Ok(m) = fit_terms(columns, y, &trial) {
                let b = bic(&m, n);
                if b < best_bic - opts.min_improvement
                    && best.as_ref().is_none_or(|(bb, _)| b < *bb)
                {
                    best = Some((b, cand.clone()));
                }
            }
        }
        let Some((b, term)) = best else { break };
        best_bic = b;
        for v in term.variables() {
            if !added_vars.contains(&v) {
                added_vars.push(v);
                // New variable joined the model: extend the pool with its
                // pairwise interactions against other relevant variables.
                for &u in &added_vars {
                    if u != v {
                        let t = Term::interaction(vec![u, v]);
                        if !pool.contains(&t) {
                            pool.push(t);
                        }
                    }
                }
            }
        }
        if opts.max_degree >= 3 {
            // Extend with three-way interactions among the term's variables
            // and previously selected variables.
            for &u in &added_vars {
                let mut idx = term.0.clone();
                if idx.len() == 2 && !idx.contains(&u) {
                    idx.push(u);
                    let t = Term::interaction(idx);
                    if !pool.contains(&t) {
                        pool.push(t);
                    }
                }
            }
        }
        selected.push(term);
        model = fit_terms(columns, y, &selected)?;
    }

    // Backward elimination: drop terms whose removal improves BIC.
    if opts.backward {
        loop {
            let mut best: Option<(f64, usize)> = None;
            for i in 1..selected.len() {
                let mut trial = selected.clone();
                trial.remove(i);
                if let Ok(m) = fit_terms(columns, y, &trial) {
                    let b = bic(&m, n);
                    if b < best_bic && best.as_ref().is_none_or(|(bb, _)| b < *bb) {
                        best = Some((b, i));
                    }
                }
            }
            let Some((b, i)) = best else { break };
            best_bic = b;
            selected.remove(i);
        }
        model = fit_terms(columns, y, &selected)?;
    }
    Ok(model)
}

/// Convenience re-export of the residuals of a fit.
pub fn residuals(model: &PolyModel, columns: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    model
        .predict(columns)
        .into_iter()
        .zip(y)
        .map(|(p, &a)| a - p)
        .collect()
}

/// Centers `y` and returns `(centered, mean)`; occasionally useful before
/// fitting intercept-free models.
pub fn center(y: &[f64]) -> (Vec<f64>, f64) {
    let m = mean(y);
    (y.iter().map(|v| v - m).collect(), m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn term_ordering_and_render() {
        let t = Term::interaction(vec![4, 1]);
        assert_eq!(t, Term(vec![1, 4]));
        assert_eq!(t.render(&|i| format!("x{i}")), "x1 ⊗ x4");
        assert_eq!(Term::intercept().render(&|_| unreachable!()), "1");
    }

    #[test]
    fn fit_exact_polynomial() {
        // y = 1 + 2 x0 + 3 x0 x1.
        let mut s = 3u64;
        let n = 200;
        let x0: Vec<f64> = (0..n).map(|_| lcg(&mut s) * 2.0).collect();
        let x1: Vec<f64> = (0..n).map(|_| lcg(&mut s) * 2.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + 2.0 * x0[i] + 3.0 * x0[i] * x1[i])
            .collect();
        let terms = vec![
            Term::intercept(),
            Term::linear(0),
            Term::interaction(vec![0, 1]),
        ];
        let m = fit_terms(&[x0, x1], &y, &terms).unwrap();
        assert!((m.coefficients[0] - 1.0).abs() < 1e-6);
        assert!((m.coefficients[1] - 2.0).abs() < 1e-6);
        assert!((m.coefficients[2] - 3.0).abs() < 1e-6);
        assert!(m.r2 > 0.999_999);
    }

    #[test]
    fn stepwise_recovers_true_terms() {
        // y = 5 + 4 x1 - 2 x0 x2 + noise; x3 is irrelevant.
        let mut s = 11u64;
        let n = 400;
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..n).map(|_| lcg(&mut s) * 2.0).collect())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 5.0 + 4.0 * cols[1][i] - 2.0 * cols[0][i] * cols[2][i] + 0.05 * lcg(&mut s))
            .collect();
        let m = stepwise_fit(&cols, &y, &StepwiseOptions::default()).unwrap();
        let preds: Vec<&Term> = m.predictors();
        assert!(
            preds.contains(&&Term::linear(1)),
            "missing linear term: {preds:?}"
        );
        assert!(
            preds.contains(&&Term::interaction(vec![0, 2])),
            "missing interaction: {preds:?}"
        );
        // The irrelevant variable should not appear.
        assert!(
            !preds.iter().any(|t| t.variables().contains(&3)),
            "spurious x3 term: {preds:?}"
        );
        assert!(m.r2 > 0.99);
    }

    #[test]
    fn bic_penalizes_complexity() {
        let mut s = 17u64;
        let n = 100;
        let x: Vec<f64> = (0..n).map(|_| lcg(&mut s)).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 0.01 * lcg(&mut s)).collect();
        let small = fit_terms(
            std::slice::from_ref(&x),
            &y,
            &[Term::intercept(), Term::linear(0)],
        )
        .unwrap();
        let big = fit_terms(
            &[x],
            &y,
            &[
                Term::intercept(),
                Term::linear(0),
                Term::interaction(vec![0, 0]),
                Term::interaction(vec![0, 0, 0]),
            ],
        )
        .unwrap();
        assert!(bic(&small, n) < bic(&big, n));
    }

    #[test]
    fn predict_matches_training_fit() {
        let cols = vec![vec![0.0, 1.0, 2.0, 3.0]];
        let y = vec![1.0, 3.0, 5.0, 7.0];
        let m = fit_terms(&cols, &y, &[Term::intercept(), Term::linear(0)]).unwrap();
        let pred = m.predict(&cols);
        for (p, a) in pred.iter().zip(&y) {
            assert!((p - a).abs() < 1e-8);
        }
        assert!(m.mape_on(&cols, &y) < 1e-6);
    }
}
