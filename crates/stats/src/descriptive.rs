//! Descriptive statistics over `f64` slices and column-major datasets.
//!
//! # Canonical chunked moments
//!
//! Means, variances, and (co)moments are defined *canonically* as a Chan-
//! style merge over fixed-size chunks of [`MOMENT_CHUNK`] rows, folded in
//! row order: each chunk contributes a two-pass `(n, mean, M2[, C2])`
//! summary, and summaries combine with the numerically stable parallel
//! update (Chan, Golub & LeVeque 1983). Because the chunk boundaries are a
//! pure function of the row count — never of how the data was assembled —
//! a statistic computed incrementally from per-chunk summaries (the
//! segmented `DataView`) is **bit-identical** to direct computation over
//! the contiguous column. For inputs of at most one chunk the result is
//! bit-identical to the classic two-pass formulas these functions used
//! previously.
//!
//! # The blocked-kernel contract
//!
//! The hot-path kernels here are *blocked*: [`chunk_comoment_lanes`]
//! advances up to [`COMOMENT_LANES`] independent pair accumulators per row
//! so the compiler can keep several FMA chains in flight (and vectorize
//! them). Blocking is only ever applied **across independent reductions**
//! — never within one. Any future kernel must keep two invariants or the
//! house bit-exactness guarantee (cached == cold, incremental == direct,
//! the golden quickstart transcript) breaks:
//!
//! 1. **f64 only, no reassociation.** Each single statistic's fold
//!    (`Σ` over a chunk's rows, the chunk-order Chan merge) performs the
//!    exact operation sequence of the scalar definition. Lanes may only
//!    add *independent* accumulators side by side.
//! 2. **Fixed fold order.** Rows fold in row order within a chunk; chunks
//!    fold in chunk order. Lane width is free to change (it does not
//!    affect any bit), but fold order is not.

/// Rows per moment chunk. This is also the segment size of the chunked
/// `DataView` columns — the two must agree for cached statistics to be
/// bit-identical to direct recomputation. Sized so that rebuilding the
/// partial tail segment on append (and recomputing its per-segment
/// moment/Gram summaries) stays cheap relative to a relearn, while the
/// per-segment merge overhead stays negligible.
pub const MOMENT_CHUNK: usize = 64;

/// First and second central moments of one column: count, mean, and
/// `M2 = Σ (x − mean)²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColMoments {
    /// Number of observations folded in.
    pub n: usize,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the running mean.
    pub m2: f64,
}

impl ColMoments {
    /// The empty summary (identity of [`merge_col_moments`]).
    pub const EMPTY: ColMoments = ColMoments {
        n: 0,
        mean: 0.0,
        m2: 0.0,
    };

    /// Two-pass summary of one chunk (at most [`MOMENT_CHUNK`] rows).
    pub fn of_chunk(xs: &[f64]) -> ColMoments {
        if xs.is_empty() {
            return ColMoments::EMPTY;
        }
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let m2 = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
        ColMoments {
            n: xs.len(),
            mean: m,
            m2,
        }
    }
}

/// Chan merge of two column summaries. Exact identity when either side is
/// empty, so folds may start from [`ColMoments::EMPTY`].
pub fn merge_col_moments(a: ColMoments, b: ColMoments) -> ColMoments {
    if a.n == 0 {
        return b;
    }
    if b.n == 0 {
        return a;
    }
    let (na, nb) = (a.n as f64, b.n as f64);
    let n = na + nb;
    let delta = b.mean - a.mean;
    ColMoments {
        n: a.n + b.n,
        mean: a.mean + delta * nb / n,
        m2: a.m2 + b.m2 + delta * delta * na * nb / n,
    }
}

/// Chan merge of a cross-column comoment `C2 = Σ (x − mean_x)(y − mean_y)`.
/// `ax`/`ay` and `bx`/`by` are the per-column summaries of the two sides
/// *before* merging.
pub fn merge_comoment(
    ac2: f64,
    ax: ColMoments,
    ay: ColMoments,
    bc2: f64,
    bx: ColMoments,
    by: ColMoments,
) -> f64 {
    debug_assert_eq!(ax.n, ay.n);
    debug_assert_eq!(bx.n, by.n);
    if ax.n == 0 {
        return bc2;
    }
    if bx.n == 0 {
        return ac2;
    }
    let (na, nb) = (ax.n as f64, bx.n as f64);
    let n = na + nb;
    let dx = bx.mean - ax.mean;
    let dy = by.mean - ay.mean;
    ac2 + bc2 + dx * dy * na * nb / n
}

/// Comoment of one chunk given the chunk's own column means.
pub fn chunk_comoment(xs: &[f64], ys: &[f64], mx: f64, my: f64) -> f64 {
    xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum()
}

/// Lane width of the blocked cross-moment kernel: how many independent
/// pair accumulators [`chunk_comoment_lanes`] advances per row. Eight f64
/// lanes fill one AVX-512 register (two AVX2 registers) and leave the
/// scalar fallback loop short. Changing the width never changes any bit —
/// lanes are independent reductions — only the blocking shape.
pub const COMOMENT_LANES: usize = 8;

/// Blocked comoment kernel: the comoments of one anchor column `xs`
/// against every partner column in `ys`, walking the chunk's rows once
/// with [`COMOMENT_LANES`] accumulators in flight.
///
/// Each lane performs exactly the operation sequence of
/// [`chunk_comoment`]`(xs, ys[k], mx, my[k])` — row-order adds from 0.0 —
/// so every output is bit-identical to the scalar kernel; the blocking
/// only interleaves *independent* accumulators so they autovectorize.
pub fn chunk_comoment_lanes(xs: &[f64], mx: f64, ys: &[&[f64]], my: &[f64], out: &mut [f64]) {
    debug_assert_eq!(ys.len(), my.len());
    debug_assert_eq!(ys.len(), out.len());
    /// One fixed-width block: `L` independent row-order accumulators.
    fn block<const L: usize>(xs: &[f64], mx: f64, ys: &[&[f64]], my: &[f64], out: &mut [f64]) {
        let n = xs.len();
        let mut acc = [0.0f64; L];
        for y in &ys[..L] {
            debug_assert_eq!(y.len(), n);
        }
        for (r, &x) in xs.iter().enumerate() {
            let d = x - mx;
            for k in 0..L {
                acc[k] += d * (ys[k][r] - my[k]);
            }
        }
        out[..L].copy_from_slice(&acc);
    }
    let mut at = 0;
    while ys.len() - at >= COMOMENT_LANES {
        block::<COMOMENT_LANES>(xs, mx, &ys[at..], &my[at..], &mut out[at..]);
        at += COMOMENT_LANES;
    }
    match ys.len() - at {
        0 => {}
        1 => block::<1>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
        2 => block::<2>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
        3 => block::<3>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
        4 => block::<4>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
        5 => block::<5>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
        6 => block::<6>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
        _ => block::<7>(xs, mx, &ys[at..], &my[at..], &mut out[at..]),
    }
}

/// Canonical moments of a full column: fold [`MOMENT_CHUNK`]-sized chunk
/// summaries in row order.
pub fn column_moments(xs: &[f64]) -> ColMoments {
    xs.chunks(MOMENT_CHUNK)
        .map(ColMoments::of_chunk)
        .fold(ColMoments::EMPTY, merge_col_moments)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    column_moments(xs).mean
}

/// Unbiased sample variance (n−1 denominator); 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    variance_of(column_moments(xs))
}

/// Sample variance from a moment summary (shared by the cached and the
/// direct computation paths so their bits agree).
pub fn variance_of(m: ColMoments) -> f64 {
    if m.n < 2 {
        return 0.0;
    }
    m.m2 / (m.n - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of the two central order statistics for even n).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type-7, the numpy default).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Minimum; `None` if empty or any NaN.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .try_fold(f64::INFINITY, |acc, x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.min(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Maximum; `None` if empty or any NaN.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .try_fold(f64::NEG_INFINITY, |acc, x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.max(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Z-score standardization: `(x − mean) / std`. Columns with (near-)zero
/// variance map to all-zeros rather than dividing by ~0.
pub fn standardize(xs: &[f64]) -> Vec<f64> {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// Mean absolute percentage error, skipping reference values within
/// `1e-9` of zero (matching the common implementation used in the
/// performance-modeling literature the paper builds on).
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() > 1e-9 {
            total += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Coefficient of determination R².
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    let m = mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - m) * (a - m)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    if ss_tot < 1e-12 {
        return if ss_res < 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance of this classic example is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((quantile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 40.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let z = standardize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_column() {
        assert_eq!(standardize(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let m = mape(&[0.0, 10.0], &[5.0, 9.0]);
        assert!((m - 10.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_fit() {
        let xs = [1.0, 2.0, 3.0];
        assert!((r_squared(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_handle_empty() {
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[2.0, 1.0, 3.0]), Some(1.0));
        assert_eq!(max(&[2.0, 1.0, 3.0]), Some(3.0));
    }
}
