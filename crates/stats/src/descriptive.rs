//! Descriptive statistics over `f64` slices and column-major datasets.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of the two central order statistics for even n).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type-7, the numpy default).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Minimum; `None` if empty or any NaN.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .try_fold(f64::INFINITY, |acc, x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.min(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Maximum; `None` if empty or any NaN.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .try_fold(f64::NEG_INFINITY, |acc, x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.max(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Z-score standardization: `(x − mean) / std`. Columns with (near-)zero
/// variance map to all-zeros rather than dividing by ~0.
pub fn standardize(xs: &[f64]) -> Vec<f64> {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// Mean absolute percentage error, skipping reference values within
/// `1e-9` of zero (matching the common implementation used in the
/// performance-modeling literature the paper builds on).
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() > 1e-9 {
            total += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Coefficient of determination R².
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    let m = mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - m) * (a - m)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    if ss_tot < 1e-12 {
        return if ss_res < 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance of this classic example is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((quantile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 40.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let z = standardize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_column() {
        assert_eq!(standardize(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let m = mape(&[0.0, 10.0], &[5.0, 9.0]);
        assert!((m - 10.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_fit() {
        let xs = [1.0, 2.0, 3.0];
        assert!((r_squared(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_handle_empty() {
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[2.0, 1.0, 3.0]), Some(1.0));
        assert_eq!(max(&[2.0, 1.0, 3.0]), Some(3.0));
    }
}
