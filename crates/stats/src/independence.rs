//! Conditional-independence tests driving constraint-based causal discovery
//! (§4 Stage II of the paper: "mutual info for discrete variables and Fisher
//! z-test for continuous").

use crate::correlation::{correlation_matrix, partial_correlation};
use crate::dist::{chi2_sf, normal_two_sided_p};
use crate::entropy::{conditional_mutual_information, joint_code, mutual_information};
use crate::matrix::Matrix;

/// Outcome of a conditional-independence test.
#[derive(Debug, Clone, Copy)]
pub struct CiOutcome {
    /// The raw test statistic (Fisher-z or G).
    pub statistic: f64,
    /// The p-value; large values ⇒ fail to reject independence.
    pub p_value: f64,
}

impl CiOutcome {
    /// Whether the test fails to reject independence at level `alpha`.
    pub fn independent(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// A conditional-independence oracle over a fixed dataset: is column `x`
/// independent of column `y` given the columns in `z`?
pub trait CiTest {
    /// Runs the test; `z` lists conditioning column indices.
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome;
    /// Number of variables (columns).
    fn n_vars(&self) -> usize;
}

/// Fisher-z test on partial correlations, the standard CI test for
/// (approximately) Gaussian continuous data.
///
/// The statistic is `√(n − |z| − 3) · atanh(ρ̂)`, compared against a
/// standard normal.
pub struct FisherZ {
    corr: Matrix,
    n: usize,
}

impl FisherZ {
    /// Builds the test from column-major data (the correlation matrix is
    /// precomputed once — the discovery loop runs thousands of tests).
    pub fn new(columns: &[Vec<f64>]) -> Self {
        let n = columns.first().map_or(0, Vec::len);
        Self { corr: correlation_matrix(columns), n }
    }

    /// Builds the test directly from a correlation matrix and sample size.
    pub fn from_correlation(corr: Matrix, n: usize) -> Self {
        Self { corr, n }
    }
}

impl CiTest for FisherZ {
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome {
        let r = match partial_correlation(&self.corr, x, y, z) {
            Ok(r) => r,
            // Singular conditioning sets: treat as uninformative
            // (independent) rather than aborting the search.
            Err(_) => return CiOutcome { statistic: 0.0, p_value: 1.0 },
        };
        let df = self.n as f64 - z.len() as f64 - 3.0;
        if df <= 0.0 {
            return CiOutcome { statistic: 0.0, p_value: 1.0 };
        }
        // atanh with clamping to avoid ±∞ on |r| = 1.
        let r = r.clamp(-0.999_999, 0.999_999);
        let zstat = df.sqrt() * 0.5 * ((1.0 + r) / (1.0 - r)).ln();
        CiOutcome { statistic: zstat, p_value: normal_two_sided_p(zstat) }
    }

    fn n_vars(&self) -> usize {
        self.corr.rows()
    }
}

/// G-test (likelihood-ratio form of the χ² test) on integer-coded data;
/// `G = 2n · ln2 · I(X; Y | Z)` with degrees of freedom
/// `(|X|−1)(|Y|−1)·Π|Zᵢ|`.
pub struct GTest {
    codes: Vec<Vec<usize>>,
    arities: Vec<usize>,
    n: usize,
}

impl GTest {
    /// Builds the test from pre-discretized columns and their arities.
    pub fn new(codes: Vec<Vec<usize>>, arities: Vec<usize>) -> Self {
        let n = codes.first().map_or(0, Vec::len);
        Self { codes, arities, n }
    }
}

impl CiTest for GTest {
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome {
        let n = self.n as f64;
        let (mi, df) = if z.is_empty() {
            let mi = mutual_information(&self.codes[x], &self.codes[y]);
            let df = (self.arities[x].max(2) - 1) * (self.arities[y].max(2) - 1);
            (mi, df as f64)
        } else {
            let zcols: Vec<&[usize]> =
                z.iter().map(|&i| self.codes[i].as_slice()).collect();
            let zcode = joint_code(&zcols, self.n);
            let mi = conditional_mutual_information(
                &self.codes[x],
                &self.codes[y],
                &zcode,
            );
            let strata: f64 =
                z.iter().map(|&i| self.arities[i].max(1) as f64).product();
            let df = (self.arities[x].max(2) - 1) as f64
                * (self.arities[y].max(2) - 1) as f64
                * strata;
            (mi, df)
        };
        // MI is in bits; G uses natural log.
        let g = 2.0 * n * mi * std::f64::consts::LN_2;
        CiOutcome { statistic: g, p_value: chi2_sf(g, df.max(1.0)) }
    }

    fn n_vars(&self) -> usize {
        self.codes.len()
    }
}

/// Mixed-data test used across the system stack (binary kernel switches,
/// categorical policies, continuous frequencies and event counts): runs the
/// Fisher-z test on the continuous representation. Discrete options with few
/// levels are ordinal across the whole configuration space we model (see
/// appendix Tables 5–9), for which the Gaussian approximation on ranks is
/// the standard pragmatic choice; a `GTest` can be substituted for purely
/// discrete datasets.
pub struct MixedTest {
    fisher: FisherZ,
}

impl MixedTest {
    /// Builds the mixed test from raw column-major data.
    pub fn new(columns: &[Vec<f64>]) -> Self {
        Self { fisher: FisherZ::new(columns) }
    }
}

impl CiTest for MixedTest {
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome {
        self.fisher.test(x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.fisher.n_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform noise in (−0.5, 0.5).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn chain_data(n: usize) -> Vec<Vec<f64>> {
        // X → Y → Z chain: X ⊥ Z | Y but X ⊮ Z.
        let mut s = 7u64;
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..n {
            let xi = lcg(&mut s) * 4.0;
            let yi = 2.0 * xi + lcg(&mut s);
            let zi = -1.5 * yi + lcg(&mut s);
            x.push(xi);
            y.push(yi);
            z.push(zi);
        }
        vec![x, y, z]
    }

    #[test]
    fn fisher_z_detects_chain_structure() {
        let cols = chain_data(800);
        let t = FisherZ::new(&cols);
        // Marginal dependence along the chain.
        assert!(!t.test(0, 2, &[]).independent(0.05));
        // Conditional independence given the middle node.
        assert!(t.test(0, 2, &[1]).independent(0.05));
    }

    #[test]
    fn fisher_z_small_sample_degrades_gracefully() {
        let cols = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![1.0, 0.0]];
        let t = FisherZ::new(&cols);
        // df ≤ 0 → inconclusive, reported as independent with p = 1.
        let out = t.test(0, 1, &[2]);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn g_test_detects_dependence_and_conditional_independence() {
        // Y = X (strong dependence); W independent coin.
        let n = 400;
        let mut s = 99u64;
        let x: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let y = x.clone();
        let w: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let t = GTest::new(vec![x, y, w], vec![2, 2, 2]);
        assert!(!t.test(0, 1, &[]).independent(0.01));
        assert!(t.test(0, 2, &[]).independent(0.01));
        // X ⊥ W even conditioned on Y.
        assert!(t.test(0, 2, &[1]).independent(0.01));
    }

    #[test]
    fn g_test_confounder_screening() {
        // Z fair coin; X = Z noisy copy; Y = Z noisy copy.
        let n = 2000;
        let mut s = 5u64;
        let z: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let flip = |v: usize, s: &mut u64| {
            if lcg(s).abs() < 0.05 {
                1 - v
            } else {
                v
            }
        };
        let x: Vec<usize> = z.iter().map(|&v| flip(v, &mut s)).collect();
        let y: Vec<usize> = z.iter().map(|&v| flip(v, &mut s)).collect();
        let t = GTest::new(vec![x, y, z], vec![2, 2, 2]);
        assert!(!t.test(0, 1, &[]).independent(0.01));
        assert!(t.test(0, 1, &[2]).independent(0.01));
    }
}
