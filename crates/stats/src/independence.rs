//! Conditional-independence tests driving constraint-based causal discovery
//! (§4 Stage II of the paper: "mutual info for discrete variables and Fisher
//! z-test for continuous").
//!
//! Each test has two backends: an *owned* one (precomputed correlation
//! matrix / code columns, the original behavior) and a [`DataView`]-backed
//! one that reads the view's cached sufficient statistics and memoizes
//! outcomes in the view's CI cache. Both backends canonicalize their
//! arguments (ordered `(x, y)`, sorted `z` — every supported test is
//! symmetric in both) and then run the identical arithmetic, so cached
//! results are bit-identical to direct computation for *any* argument
//! order, not just the first one queried (asserted by
//! `tests/dataview_equivalence.rs`).

use crate::correlation::{correlation_matrix, partial_correlation};
use crate::dataview::{CiKey, DataView};
use crate::dist::{chi2_sf, normal_two_sided_p};
use crate::entropy::{
    conditional_mutual_information_bounded, joint_code_counted, mutual_information_bounded,
};
use crate::matrix::Matrix;
use crate::smallset::SmallIdSet;

/// CI-cache tag for Fisher-Z outcomes.
const KIND_FISHER: u32 = 0;
/// CI-cache tag for G-test outcomes: the discretization parameters get
/// 12 bits each (far above any sane value), so differently-parameterized
/// tests over one view can never share cache entries.
fn kind_gtest(bins: usize, max_levels: usize) -> u32 {
    assert!(
        bins < (1 << 12) && max_levels < (1 << 12),
        "kind tag overflow"
    );
    1 | ((bins as u32) << 8) | ((max_levels as u32) << 20)
}

/// Canonical argument order shared by both backends: ordered pair plus a
/// sorted conditioning set. Both supported tests are symmetric in `x`/`y`
/// and in the order of `z`, so this changes nothing mathematically while
/// making the float rounding — and therefore the cached bits — a function
/// of the *set* queried rather than of the caller's argument order. The
/// skeleton sweep always passes already-sorted sets, so the common path
/// borrows instead of allocating.
fn canonical<'a>(
    x: usize,
    y: usize,
    z: &'a [usize],
) -> (usize, usize, std::borrow::Cow<'a, [usize]>) {
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    if z.is_sorted() {
        (lo, hi, std::borrow::Cow::Borrowed(z))
    } else {
        let mut zs = z.to_vec();
        zs.sort_unstable();
        (lo, hi, std::borrow::Cow::Owned(zs))
    }
}

/// Cache key for already-canonical arguments (avoids the re-sort that
/// [`crate::dataview::ci_key`] performs for arbitrary callers). The
/// conditioning set lands in an inline [`SmallIdSet`], so keys for sets of
/// at most 8 variables are allocation-free.
fn key_of(kind: u32, x: usize, y: usize, z: &[usize]) -> CiKey {
    debug_assert!(x <= y && z.is_sorted());
    (kind, x as u32, y as u32, SmallIdSet::from_indices(z))
}

/// Outcome of a conditional-independence test.
#[derive(Debug, Clone, Copy)]
pub struct CiOutcome {
    /// The raw test statistic (Fisher-z or G).
    pub statistic: f64,
    /// The p-value; large values ⇒ fail to reject independence.
    pub p_value: f64,
}

impl CiOutcome {
    /// Whether the test fails to reject independence at level `alpha`.
    pub fn independent(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// A conditional-independence oracle over a fixed dataset: is column `x`
/// independent of column `y` given the columns in `z`?
///
/// `Sync` is a supertrait so oracles can be shared across the parallel
/// skeleton sweep's worker threads.
pub trait CiTest: Sync {
    /// Runs the test; `z` lists conditioning column indices.
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome;
    /// Number of variables (columns).
    fn n_vars(&self) -> usize;
}

/// The Fisher-z arithmetic shared by both backends.
fn fisher_outcome(corr: &Matrix, n: usize, x: usize, y: usize, z: &[usize]) -> (f64, f64) {
    let r = match partial_correlation(corr, x, y, z) {
        Ok(r) => r,
        // Singular conditioning sets: treat as uninformative
        // (independent) rather than aborting the search.
        Err(_) => return (0.0, 1.0),
    };
    let df = n as f64 - z.len() as f64 - 3.0;
    if df <= 0.0 {
        return (0.0, 1.0);
    }
    // atanh with clamping to avoid ±∞ on |r| = 1.
    let r = r.clamp(-0.999_999, 0.999_999);
    let zstat = df.sqrt() * 0.5 * ((1.0 + r) / (1.0 - r)).ln();
    (zstat, normal_two_sided_p(zstat))
}

enum FisherBackend {
    Owned { corr: Matrix, n: usize },
    View(DataView),
}

/// Fisher-z test on partial correlations, the standard CI test for
/// (approximately) Gaussian continuous data.
///
/// The statistic is `√(n − |z| − 3) · atanh(ρ̂)`, compared against a
/// standard normal.
pub struct FisherZ {
    backend: FisherBackend,
}

impl FisherZ {
    /// Builds the test from column-major data (the correlation matrix is
    /// precomputed once — the discovery loop runs thousands of tests).
    pub fn new(columns: &[Vec<f64>]) -> Self {
        let n = columns.first().map_or(0, Vec::len);
        Self {
            backend: FisherBackend::Owned {
                corr: correlation_matrix(columns),
                n,
            },
        }
    }

    /// Builds the test directly from a correlation matrix and sample size.
    pub fn from_correlation(corr: Matrix, n: usize) -> Self {
        Self {
            backend: FisherBackend::Owned { corr, n },
        }
    }

    /// Builds the test over a shared [`DataView`]: the correlation matrix
    /// comes from the view's cache and every outcome is memoized there.
    pub fn from_view(view: &DataView) -> Self {
        Self {
            backend: FisherBackend::View(view.clone()),
        }
    }
}

impl CiTest for FisherZ {
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome {
        let (x, y, z) = canonical(x, y, z);
        let (statistic, p_value) = match &self.backend {
            FisherBackend::Owned { corr, n } => fisher_outcome(corr, *n, x, y, &z),
            FisherBackend::View(view) => view.ci_outcome(key_of(KIND_FISHER, x, y, &z), || {
                fisher_outcome(view.correlation(), view.n_rows(), x, y, &z)
            }),
        };
        CiOutcome { statistic, p_value }
    }

    fn n_vars(&self) -> usize {
        match &self.backend {
            FisherBackend::Owned { corr, .. } => corr.rows(),
            FisherBackend::View(view) => view.n_cols(),
        }
    }
}

/// The G-test arithmetic on code slices shared by both backends. The
/// arities double as code bounds for the dense contingency kernels
/// (every code is `< arity` by the discretizer's contract), so the MI
/// estimators skip their per-call `max`-scans over the code columns; a
/// conditioning set passes `(codes, distinct stratum count, df strata)`.
fn g_outcome(
    x_codes: &[usize],
    y_codes: &[usize],
    x_arity: usize,
    y_arity: usize,
    zcode: Option<(&[usize], usize, f64)>,
    n: usize,
) -> (f64, f64) {
    let nf = n as f64;
    let (mi, df) = match zcode {
        None => {
            let mi = mutual_information_bounded(x_codes, y_codes, x_arity, y_arity);
            let df = (x_arity.max(2) - 1) * (y_arity.max(2) - 1);
            (mi, df as f64)
        }
        Some((zc, z_arity, strata)) => {
            let mi = conditional_mutual_information_bounded(
                x_codes, y_codes, zc, x_arity, y_arity, z_arity,
            );
            let df = (x_arity.max(2) - 1) as f64 * (y_arity.max(2) - 1) as f64 * strata;
            (mi, df)
        }
    };
    // MI is in bits; G uses natural log.
    let g = 2.0 * nf * mi * std::f64::consts::LN_2;
    (g, chi2_sf(g, df.max(1.0)))
}

enum GBackend {
    Owned {
        codes: Vec<Vec<usize>>,
        arities: Vec<usize>,
        n: usize,
    },
    View {
        view: DataView,
        bins: usize,
        max_levels: usize,
    },
}

/// G-test (likelihood-ratio form of the χ² test) on integer-coded data;
/// `G = 2n · ln2 · I(X; Y | Z)` with degrees of freedom
/// `(|X|−1)(|Y|−1)·Π|Zᵢ|`.
pub struct GTest {
    backend: GBackend,
}

impl GTest {
    /// Builds the test from pre-discretized columns and their arities.
    /// Every code must satisfy `codes[c][i] < arities[c]` — the arities
    /// are used as dense-kernel code bounds, not just degrees of freedom.
    pub fn new(codes: Vec<Vec<usize>>, arities: Vec<usize>) -> Self {
        let n = codes.first().map_or(0, Vec::len);
        Self {
            backend: GBackend::Owned { codes, arities, n },
        }
    }

    /// Builds the test over a shared [`DataView`]: per-column
    /// discretizations and joint conditioning codes come from the view's
    /// caches (`bins`/`max_levels` as in
    /// [`crate::discretize::Discretizer::fit`]), and outcomes are memoized.
    pub fn from_view(view: &DataView, bins: usize, max_levels: usize) -> Self {
        Self {
            backend: GBackend::View {
                view: view.clone(),
                bins,
                max_levels,
            },
        }
    }
}

impl CiTest for GTest {
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome {
        let (x, y, z) = canonical(x, y, z);
        let z: &[usize] = &z;
        let (statistic, p_value) = match &self.backend {
            GBackend::Owned { codes, arities, n } => {
                if z.is_empty() {
                    g_outcome(&codes[x], &codes[y], arities[x], arities[y], None, *n)
                } else {
                    let zcols: Vec<&[usize]> = z.iter().map(|&i| codes[i].as_slice()).collect();
                    let (zcode, z_arity) = joint_code_counted(&zcols, *n);
                    let strata: f64 = z.iter().map(|&i| arities[i].max(1) as f64).product();
                    g_outcome(
                        &codes[x],
                        &codes[y],
                        arities[x],
                        arities[y],
                        Some((&zcode, z_arity, strata)),
                        *n,
                    )
                }
            }
            GBackend::View {
                view,
                bins,
                max_levels,
            } => {
                let kind = kind_gtest(*bins, *max_levels);
                view.ci_outcome(key_of(kind, x, y, z), || {
                    // Arguments are already canonical here, so the cached
                    // bits match direct computation for any query order.
                    let cx = view.codes(x, *bins, *max_levels);
                    let cy = view.codes(y, *bins, *max_levels);
                    if z.is_empty() {
                        g_outcome(
                            &cx.codes,
                            &cy.codes,
                            cx.arity,
                            cy.arity,
                            None,
                            view.n_rows(),
                        )
                    } else {
                        let jz = view.joint_codes(z, *bins, *max_levels);
                        g_outcome(
                            &cx.codes,
                            &cy.codes,
                            cx.arity,
                            cy.arity,
                            Some((&jz.codes, jz.distinct(), jz.strata)),
                            view.n_rows(),
                        )
                    }
                })
            }
        };
        CiOutcome { statistic, p_value }
    }

    fn n_vars(&self) -> usize {
        match &self.backend {
            GBackend::Owned { codes, .. } => codes.len(),
            GBackend::View { view, .. } => view.n_cols(),
        }
    }
}

/// Mixed-data test used across the system stack (binary kernel switches,
/// categorical policies, continuous frequencies and event counts): runs the
/// Fisher-z test on the continuous representation. Discrete options with few
/// levels are ordinal across the whole configuration space we model (see
/// appendix Tables 5–9), for which the Gaussian approximation on ranks is
/// the standard pragmatic choice; a `GTest` can be substituted for purely
/// discrete datasets.
pub struct MixedTest {
    fisher: FisherZ,
}

impl MixedTest {
    /// Builds the mixed test from raw column-major data.
    pub fn new(columns: &[Vec<f64>]) -> Self {
        Self {
            fisher: FisherZ::new(columns),
        }
    }

    /// Builds the mixed test over a shared [`DataView`] (cached correlation
    /// matrix + memoized outcomes).
    pub fn from_view(view: &DataView) -> Self {
        Self {
            fisher: FisherZ::from_view(view),
        }
    }
}

impl CiTest for MixedTest {
    fn test(&self, x: usize, y: usize, z: &[usize]) -> CiOutcome {
        self.fisher.test(x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.fisher.n_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform noise in (−0.5, 0.5).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn chain_data(n: usize) -> Vec<Vec<f64>> {
        // X → Y → Z chain: X ⊥ Z | Y but X ⊮ Z.
        let mut s = 7u64;
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..n {
            let xi = lcg(&mut s) * 4.0;
            let yi = 2.0 * xi + lcg(&mut s);
            let zi = -1.5 * yi + lcg(&mut s);
            x.push(xi);
            y.push(yi);
            z.push(zi);
        }
        vec![x, y, z]
    }

    #[test]
    fn fisher_z_detects_chain_structure() {
        let cols = chain_data(800);
        let t = FisherZ::new(&cols);
        // Marginal dependence along the chain.
        assert!(!t.test(0, 2, &[]).independent(0.05));
        // Conditional independence given the middle node.
        assert!(t.test(0, 2, &[1]).independent(0.05));
    }

    #[test]
    fn fisher_z_small_sample_degrades_gracefully() {
        let cols = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![1.0, 0.0]];
        let t = FisherZ::new(&cols);
        // df ≤ 0 → inconclusive, reported as independent with p = 1.
        let out = t.test(0, 1, &[2]);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn fisher_z_view_backend_is_bit_identical() {
        let cols = chain_data(400);
        let view = DataView::from_columns(&cols);
        let direct = FisherZ::new(&cols);
        let cached = FisherZ::from_view(&view);
        for (x, y, z) in [
            (0, 1, vec![]),
            (0, 2, vec![]),
            (0, 2, vec![1]),
            (1, 2, vec![0]),
        ] {
            let a = direct.test(x, y, &z);
            let b = cached.test(x, y, &z);
            let c = cached.test(x, y, &z); // cache hit
            assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
            assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
            assert_eq!(b.statistic.to_bits(), c.statistic.to_bits());
        }
        assert!(
            view.ci_cache_hits() >= 4,
            "repeat queries must hit the cache"
        );
    }

    #[test]
    fn g_test_detects_dependence_and_conditional_independence() {
        // Y = X (strong dependence); W independent coin.
        let n = 400;
        let mut s = 99u64;
        let x: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let y = x.clone();
        let w: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let t = GTest::new(vec![x, y, w], vec![2, 2, 2]);
        assert!(!t.test(0, 1, &[]).independent(0.01));
        assert!(t.test(0, 2, &[]).independent(0.01));
        // X ⊥ W even conditioned on Y.
        assert!(t.test(0, 2, &[1]).independent(0.01));
    }

    #[test]
    fn g_test_confounder_screening() {
        // Z fair coin; X = Z noisy copy; Y = Z noisy copy.
        let n = 2000;
        let mut s = 5u64;
        let z: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let flip = |v: usize, s: &mut u64| {
            if lcg(s).abs() < 0.05 {
                1 - v
            } else {
                v
            }
        };
        let x: Vec<usize> = z.iter().map(|&v| flip(v, &mut s)).collect();
        let y: Vec<usize> = z.iter().map(|&v| flip(v, &mut s)).collect();
        let t = GTest::new(vec![x, y, z], vec![2, 2, 2]);
        assert!(!t.test(0, 1, &[]).independent(0.01));
        assert!(t.test(0, 1, &[2]).independent(0.01));
    }

    #[test]
    fn g_test_view_backend_matches_owned() {
        // Integer-valued columns so the view's categorical discretization
        // reproduces the hand-coded codes exactly.
        let n = 600;
        let mut s = 13u64;
        let z: Vec<usize> = (0..n).map(|_| (lcg(&mut s) > 0.0) as usize).collect();
        let x: Vec<usize> = z
            .iter()
            .map(|&v| if lcg(&mut s).abs() < 0.1 { 1 - v } else { v })
            .collect();
        let y: Vec<usize> = z
            .iter()
            .map(|&v| if lcg(&mut s).abs() < 0.1 { 1 - v } else { v })
            .collect();
        let owned = GTest::new(vec![x.clone(), y.clone(), z.clone()], vec![2, 2, 2]);
        let cols: Vec<Vec<f64>> = [&x, &y, &z]
            .iter()
            .map(|c| c.iter().map(|&v| v as f64).collect())
            .collect();
        let view = DataView::from_columns(&cols);
        let cached = GTest::from_view(&view, 5, 8);
        for (a, b, zc) in [(0, 1, vec![]), (0, 1, vec![2]), (0, 2, vec![1])] {
            let o = owned.test(a, b, &zc);
            let v = cached.test(a, b, &zc);
            assert_eq!(o.statistic.to_bits(), v.statistic.to_bits());
            assert_eq!(o.p_value.to_bits(), v.p_value.to_bits());
        }
    }
}
