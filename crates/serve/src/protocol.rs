//! The wire protocol: JSON request bodies ↔ [`PerformanceQuery`], and
//! [`QueryAnswer`] → JSON reply bodies.
//!
//! Requests name nodes by their column names (the snapshot's name table
//! resolves them to `NodeId`s); replies carry the epoch of the snapshot
//! that answered, so a client can observe model-generation transitions.
//!
//! Request shapes (all `POST /query`):
//!
//! ```json
//! {"type":"causal_effect","option":"Buffer Size","objective":"Latency"}
//! {"type":"probability","interventions":[["CRF",30]],"objective":"Latency","threshold":30}
//! {"type":"expectation","interventions":[["CRF",30]],"objective":"Latency"}
//! {"type":"root_causes","goal":[["Latency",30]]}
//! {"type":"repairs","goal":[["Latency",30]],"fault_row":7}
//! ```
//!
//! Reply shape: `{"epoch":N,"answer":{...}}` with `answer.type` one of
//! `effect`, `probability`, `expectation`, `root_causes`, `repairs`,
//! `unidentifiable`. Serialization is deterministic (ordered fields,
//! shortest-roundtrip floats) — the CI smoke golden diffs replies
//! byte-for-byte.

use unicorn_graph::NodeId;
use unicorn_inference::{PerformanceQuery, QosGoal, QueryAnswer};

use crate::json::{parse, Json};

/// Parses a request body against a snapshot's node-name table.
pub fn parse_request(body: &str, names: &[String]) -> Result<PerformanceQuery, String> {
    let doc = parse(body)?;
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("request needs a string \"type\" field")?;
    match kind {
        "causal_effect" => Ok(PerformanceQuery::CausalEffect {
            option: node_field(&doc, "option", names)?,
            objective: node_field(&doc, "objective", names)?,
        }),
        "probability" => Ok(PerformanceQuery::ProbabilityOfQos {
            interventions: pairs_field(&doc, "interventions", names)?,
            objective: node_field(&doc, "objective", names)?,
            threshold: num_field(&doc, "threshold")?,
        }),
        "expectation" => Ok(PerformanceQuery::ExpectedObjective {
            interventions: pairs_field(&doc, "interventions", names)?,
            objective: node_field(&doc, "objective", names)?,
        }),
        "root_causes" => Ok(PerformanceQuery::RootCauses {
            goal: goal_field(&doc, names)?,
        }),
        "repairs" => {
            let fault_row = num_field(&doc, "fault_row")?;
            if fault_row < 0.0 || fault_row.fract() != 0.0 {
                return Err("\"fault_row\" must be a non-negative integer".into());
            }
            Ok(PerformanceQuery::Repairs {
                goal: goal_field(&doc, names)?,
                fault_row: fault_row as usize,
            })
        }
        other => Err(format!("unknown query type {other:?}")),
    }
}

/// Renders a reply body: the answering snapshot's epoch plus the answer.
pub fn render_reply(epoch: u64, answer: &QueryAnswer, names: &[String]) -> String {
    let answer = match answer {
        QueryAnswer::Effect(x) => scalar("effect", *x),
        QueryAnswer::Probability(x) => scalar("probability", *x),
        QueryAnswer::Expectation(x) => scalar("expectation", *x),
        QueryAnswer::RootCauses(ranked) => Json::Obj(vec![
            ("type".into(), Json::Str("root_causes".into())),
            (
                "ranked".into(),
                Json::Arr(
                    ranked
                        .iter()
                        .map(|&(node, score)| {
                            Json::Arr(vec![Json::Str(names[node].clone()), Json::Num(score)])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryAnswer::Repairs(repairs) => Json::Obj(vec![
            ("type".into(), Json::Str("repairs".into())),
            (
                "repairs".into(),
                Json::Arr(
                    repairs
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                (
                                    "assignments".into(),
                                    Json::Arr(
                                        r.assignments
                                            .iter()
                                            .map(|&(node, v)| {
                                                Json::Arr(vec![
                                                    Json::Str(names[node].clone()),
                                                    Json::Num(v),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                ("ice".into(), Json::Num(r.ice)),
                                ("improvement".into(), Json::Num(r.improvement)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryAnswer::Unidentifiable { cause, effect } => Json::Obj(vec![
            ("type".into(), Json::Str("unidentifiable".into())),
            ("cause".into(), Json::Str(names[*cause].clone())),
            ("effect".into(), Json::Str(names[*effect].clone())),
        ]),
    };
    Json::Obj(vec![
        ("epoch".into(), Json::Num(epoch as f64)),
        ("answer".into(), answer),
    ])
    .to_string()
}

/// Renders an error reply body.
pub fn render_error(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))]).to_string()
}

fn scalar(kind: &str, value: f64) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::Str(kind.into())),
        ("value".into(), Json::Num(value)),
    ])
}

fn resolve(name: &str, names: &[String]) -> Result<NodeId, String> {
    names
        .iter()
        .position(|n| n == name)
        .ok_or_else(|| format!("unknown node {name:?}"))
}

fn node_field(doc: &Json, field: &str, names: &[String]) -> Result<NodeId, String> {
    let name = doc
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("request needs a string {field:?} field"))?;
    resolve(name, names)
}

fn num_field(doc: &Json, field: &str) -> Result<f64, String> {
    doc.get(field)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("request needs a numeric {field:?} field"))
}

/// Parses a `[["name", value], ...]` pair list.
fn pairs_field(doc: &Json, field: &str, names: &[String]) -> Result<Vec<(NodeId, f64)>, String> {
    let items = doc
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("request needs an array {field:?} field"))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("each {field} entry must be a [\"name\", value] pair"))?;
            let node = pair[0]
                .as_str()
                .ok_or_else(|| format!("{field} entry name must be a string"))
                .and_then(|n| resolve(n, names))?;
            let value = pair[1]
                .as_num()
                .ok_or_else(|| format!("{field} entry value must be a number"))?;
            Ok((node, value))
        })
        .collect()
}

fn goal_field(doc: &Json, names: &[String]) -> Result<QosGoal, String> {
    Ok(QosGoal {
        thresholds: pairs_field(doc, "goal", names)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["CRF".into(), "Buffer Size".into(), "Latency".into()]
    }

    #[test]
    fn parses_every_query_type() {
        let names = names();
        let q = parse_request(
            r#"{"type":"causal_effect","option":"Buffer Size","objective":"Latency"}"#,
            &names,
        )
        .unwrap();
        assert!(matches!(
            q,
            PerformanceQuery::CausalEffect {
                option: 1,
                objective: 2
            }
        ));

        let q = parse_request(
            r#"{"type":"probability","interventions":[["CRF",23],["Buffer Size",6000]],"objective":"Latency","threshold":30}"#,
            &names,
        )
        .unwrap();
        match q {
            PerformanceQuery::ProbabilityOfQos {
                interventions,
                objective,
                threshold,
            } => {
                assert_eq!(interventions, vec![(0, 23.0), (1, 6000.0)]);
                assert_eq!(objective, 2);
                assert_eq!(threshold, 30.0);
            }
            other => panic!("wrong parse: {other:?}"),
        }

        let q = parse_request(
            r#"{"type":"repairs","goal":[["Latency",28.5]],"fault_row":7}"#,
            &names,
        )
        .unwrap();
        match q {
            PerformanceQuery::Repairs { goal, fault_row } => {
                assert_eq!(goal.thresholds, vec![(2, 28.5)]);
                assert_eq!(fault_row, 7);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_nodes_and_types() {
        let names = names();
        assert!(parse_request(
            r#"{"type":"causal_effect","option":"Nope","objective":"Latency"}"#,
            &names
        )
        .unwrap_err()
        .contains("unknown node"));
        assert!(parse_request(r#"{"type":"mystery"}"#, &names).is_err());
        assert!(parse_request(r#"{"type":"repairs","goal":[],"fault_row":1.5}"#, &names).is_err());
    }

    #[test]
    fn reply_rendering_is_deterministic() {
        let names = names();
        let reply = render_reply(
            3,
            &QueryAnswer::RootCauses(vec![(1, 0.5), (0, -0.25)]),
            &names,
        );
        assert_eq!(
            reply,
            r#"{"epoch":3,"answer":{"type":"root_causes","ranked":[["Buffer Size",0.5],["CRF",-0.25]]}}"#
        );
        let reply = render_reply(0, &QueryAnswer::Effect(1.0), &names);
        assert_eq!(reply, r#"{"epoch":0,"answer":{"type":"effect","value":1}}"#);
    }
}
