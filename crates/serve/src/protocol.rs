//! The wire protocol: JSON request bodies ↔ [`PerformanceQuery`], and
//! [`QueryAnswer`] → JSON reply bodies.
//!
//! Requests name nodes by their column names (the snapshot's name table
//! resolves them to `NodeId`s); replies carry the epoch of the snapshot
//! that answered, so a client can observe model-generation transitions.
//!
//! Request shapes (all `POST /query`):
//!
//! ```json
//! {"type":"causal_effect","option":"Buffer Size","objective":"Latency"}
//! {"type":"probability","interventions":[["CRF",30]],"objective":"Latency","threshold":30}
//! {"type":"expectation","interventions":[["CRF",30]],"objective":"Latency"}
//! {"type":"root_causes","goal":[["Latency",30]]}
//! {"type":"repairs","goal":[["Latency",30]],"fault_row":7}
//! ```
//!
//! Reply shape: `{"epoch":N,"answer":{...}}` with `answer.type` one of
//! `effect`, `probability`, `expectation`, `root_causes`, `repairs`,
//! `unidentifiable`. Serialization is deterministic (ordered fields,
//! shortest-roundtrip floats) — the CI smoke golden diffs replies
//! byte-for-byte.
//!
//! ## The versioned `/v1/` surface
//!
//! The daemon's grown-by-accretion routes are consolidated behind one
//! typed request/response pair: [`parse_v1`] maps `(method, path, body)`
//! to a [`WireRequest`], the server dispatches it, and the outcome — a
//! [`WireResponse`] or a [`WireError`] — renders deterministically:
//!
//! * `POST /v1/tenants/:id/query`  — a query body as above
//! * `POST /v1/tenants/:id/ingest` — `{"rows":[[...],...]}` measurement
//!   rows in node order; ack `{"accepted":N,"dropped":M}` (drops are the
//!   bounded ingest buffer's explicit backpressure)
//! * `GET  /v1/tenants/:id/stats`  — the tenant observability snapshot
//! * `GET  /v1/stats`              — the same for the default tenant
//!
//! Every `/v1/` error has the single body shape
//! `{"error":{"code":"...","message":"..."}}` (fixed key order, codes in
//! [`ErrorCode`]) — replacing the ad-hoc `{"error":"..."}` bodies, which
//! the legacy routes keep byte-for-byte.

use unicorn_core::DEFAULT_TENANT;
use unicorn_graph::NodeId;
use unicorn_inference::{PerformanceQuery, QosGoal, QueryAnswer};

use crate::json::{parse, Json};

/// Parses a request body against a snapshot's node-name table.
pub fn parse_request(body: &str, names: &[String]) -> Result<PerformanceQuery, String> {
    let doc = parse(body)?;
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("request needs a string \"type\" field")?;
    match kind {
        "causal_effect" => Ok(PerformanceQuery::CausalEffect {
            option: node_field(&doc, "option", names)?,
            objective: node_field(&doc, "objective", names)?,
        }),
        "probability" => Ok(PerformanceQuery::ProbabilityOfQos {
            interventions: pairs_field(&doc, "interventions", names)?,
            objective: node_field(&doc, "objective", names)?,
            threshold: num_field(&doc, "threshold")?,
        }),
        "expectation" => Ok(PerformanceQuery::ExpectedObjective {
            interventions: pairs_field(&doc, "interventions", names)?,
            objective: node_field(&doc, "objective", names)?,
        }),
        "root_causes" => Ok(PerformanceQuery::RootCauses {
            goal: goal_field(&doc, names)?,
        }),
        "repairs" => {
            let fault_row = num_field(&doc, "fault_row")?;
            if fault_row < 0.0 || fault_row.fract() != 0.0 {
                return Err("\"fault_row\" must be a non-negative integer".into());
            }
            Ok(PerformanceQuery::Repairs {
                goal: goal_field(&doc, names)?,
                fault_row: fault_row as usize,
            })
        }
        other => Err(format!("unknown query type {other:?}")),
    }
}

/// Renders a reply body: the answering snapshot's epoch plus the answer.
pub fn render_reply(epoch: u64, answer: &QueryAnswer, names: &[String]) -> String {
    let answer = match answer {
        QueryAnswer::Effect(x) => scalar("effect", *x),
        QueryAnswer::Probability(x) => scalar("probability", *x),
        QueryAnswer::Expectation(x) => scalar("expectation", *x),
        QueryAnswer::RootCauses(ranked) => Json::Obj(vec![
            ("type".into(), Json::Str("root_causes".into())),
            (
                "ranked".into(),
                Json::Arr(
                    ranked
                        .iter()
                        .map(|&(node, score)| {
                            Json::Arr(vec![Json::Str(names[node].clone()), Json::Num(score)])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryAnswer::Repairs(repairs) => Json::Obj(vec![
            ("type".into(), Json::Str("repairs".into())),
            (
                "repairs".into(),
                Json::Arr(
                    repairs
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                (
                                    "assignments".into(),
                                    Json::Arr(
                                        r.assignments
                                            .iter()
                                            .map(|&(node, v)| {
                                                Json::Arr(vec![
                                                    Json::Str(names[node].clone()),
                                                    Json::Num(v),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                ("ice".into(), Json::Num(r.ice)),
                                ("improvement".into(), Json::Num(r.improvement)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryAnswer::Unidentifiable { cause, effect } => Json::Obj(vec![
            ("type".into(), Json::Str("unidentifiable".into())),
            ("cause".into(), Json::Str(names[*cause].clone())),
            ("effect".into(), Json::Str(names[*effect].clone())),
        ]),
    };
    Json::Obj(vec![
        ("epoch".into(), Json::Num(epoch as f64)),
        ("answer".into(), answer),
    ])
    .to_string()
}

/// Renders a legacy error reply body (`{"error":"..."}`). The `/v1/`
/// surface uses [`render_v1_error`] instead.
pub fn render_error(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))]).to_string()
}

/// Machine-readable error codes of the `/v1/` surface. The code decides
/// the HTTP status; the human-readable message rides alongside it in the
/// error body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request body or a field in it failed to parse/resolve (400).
    BadRequest,
    /// No route matches the method + path (404).
    UnknownEndpoint,
    /// The path names a tenant the router does not serve (404 on `/v1/`;
    /// the legacy routes answered 503 and still do).
    UnknownTenant,
    /// The tenant's bounded ingest buffer shed the entire submission
    /// (503) — retry after the worker drains a flush.
    Backpressure,
    /// The admission queue closed mid-request (503).
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling inside `{"error":{"code":...}}`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownEndpoint => "unknown_endpoint",
            ErrorCode::UnknownTenant => "unknown_tenant",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// HTTP status the `/v1/` surface maps the code to.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::UnknownEndpoint | ErrorCode::UnknownTenant => 404,
            ErrorCode::Backpressure | ErrorCode::ShuttingDown => 503,
        }
    }

    /// HTTP status of the pre-`/v1` routes for the same failure — kept
    /// distinct because the legacy surface answered 503 (not 404) for an
    /// unknown tenant and must stay byte- and status-identical.
    pub fn legacy_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::UnknownEndpoint => 404,
            ErrorCode::UnknownTenant | ErrorCode::Backpressure | ErrorCode::ShuttingDown => 503,
        }
    }
}

/// A typed wire-level failure: code + message, rendered as the single
/// deterministic `/v1/` error shape (or the legacy `{"error":"..."}`
/// body on the alias routes).
#[derive(Debug, Clone)]
pub struct WireError {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// An error with an explicit code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// A parse/validation failure (exact legacy message preserved).
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    /// The fixed unknown-endpoint error.
    pub fn unknown_endpoint() -> Self {
        Self::new(ErrorCode::UnknownEndpoint, "no such endpoint")
    }

    /// The fixed unknown-tenant error.
    pub fn unknown_tenant() -> Self {
        Self::new(ErrorCode::UnknownTenant, "no such tenant")
    }

    /// The fixed shutdown error.
    pub fn shutting_down() -> Self {
        Self::new(ErrorCode::ShuttingDown, "server shutting down")
    }
}

/// One routed `/v1/` request — the typed half of the wire pair. Bodies
/// stay raw here because parsing a query or an ingest batch needs the
/// tenant's snapshot (name table / row width); the server's dispatcher
/// resolves the tenant and finishes the parse.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// `POST /v1/tenants/:id/query`.
    Query {
        /// Target tenant.
        tenant: String,
        /// Raw JSON query body (see [`parse_request`]).
        body: String,
    },
    /// `POST /v1/tenants/:id/ingest`.
    Ingest {
        /// Target tenant.
        tenant: String,
        /// Raw JSON ingest body (see [`parse_ingest`]).
        body: String,
    },
    /// `GET /v1/tenants/:id/stats` (and `GET /v1/stats` for the default
    /// tenant).
    TenantStats {
        /// Target tenant.
        tenant: String,
    },
}

/// One successful `/v1/` response — the other typed half. Rendered by
/// [`render_v1_ok`]; success bodies are shared with the legacy alias
/// routes byte-for-byte.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// A query answer with the epoch that answered and the name table it
    /// renders against.
    Answer {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// The engine's answer.
        answer: QueryAnswer,
        /// Node names of the answering tenant (render table).
        names: Vec<String>,
    },
    /// An ingest acknowledgement (accepted / backpressure-dropped rows).
    Ingested {
        /// Rows admitted into the tenant's buffer.
        accepted: u64,
        /// Rows shed because the buffer was full.
        dropped: u64,
    },
    /// A pre-rendered deterministic stats document.
    Stats(Json),
}

/// Routes one `/v1/`-prefixed request to a [`WireRequest`]. Pure — no
/// router or queue access — so the route table is unit-testable off the
/// socket.
pub fn parse_v1(method: &str, path: &str, body: &str) -> Result<WireRequest, WireError> {
    if method == "GET" && path == "/v1/stats" {
        return Ok(WireRequest::TenantStats {
            tenant: DEFAULT_TENANT.into(),
        });
    }
    if let Some(rest) = path.strip_prefix("/v1/tenants/") {
        if let Some((tenant, action)) = rest.rsplit_once('/') {
            if !tenant.is_empty() && !tenant.contains('/') {
                match (method, action) {
                    ("POST", "query") => {
                        return Ok(WireRequest::Query {
                            tenant: tenant.into(),
                            body: body.into(),
                        })
                    }
                    ("POST", "ingest") => {
                        return Ok(WireRequest::Ingest {
                            tenant: tenant.into(),
                            body: body.into(),
                        })
                    }
                    ("GET", "stats") => {
                        return Ok(WireRequest::TenantStats {
                            tenant: tenant.into(),
                        })
                    }
                    _ => {}
                }
            }
        }
    }
    Err(WireError::unknown_endpoint())
}

/// Parses an ingest body `{"rows":[[...],...]}` into measurement rows,
/// validating that every row has exactly `width` finite values (node
/// order: options, events, objectives).
pub fn parse_ingest(body: &str, width: usize) -> Result<Vec<Vec<f64>>, String> {
    let doc = parse(body)?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("ingest body needs an array \"rows\" field")?;
    rows.iter()
        .map(|row| {
            let vals = row
                .as_arr()
                .ok_or("each ingest row must be an array of numbers")?;
            if vals.len() != width {
                return Err(format!(
                    "ingest row has {} values, snapshot has {width} columns",
                    vals.len()
                ));
            }
            vals.iter()
                .map(|v| {
                    v.as_num()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| "ingest row values must be finite numbers".to_string())
                })
                .collect()
        })
        .collect()
}

/// Renders a successful `/v1/` response body. Query and stats bodies are
/// the exact legacy bodies — the `/v1/` surface re-shapes errors, never
/// answers.
pub fn render_v1_ok(resp: &WireResponse) -> String {
    match resp {
        WireResponse::Answer {
            epoch,
            answer,
            names,
        } => render_reply(*epoch, answer, names),
        WireResponse::Ingested { accepted, dropped } => Json::Obj(vec![
            ("accepted".into(), Json::Num(*accepted as f64)),
            ("dropped".into(), Json::Num(*dropped as f64)),
        ])
        .to_string(),
        WireResponse::Stats(doc) => doc.to_string(),
    }
}

/// Renders the single deterministic `/v1/` error body:
/// `{"error":{"code":"...","message":"..."}}`, fixed key order.
pub fn render_v1_error(err: &WireError) -> String {
    Json::Obj(vec![(
        "error".into(),
        Json::Obj(vec![
            ("code".into(), Json::Str(err.code.as_str().into())),
            ("message".into(), Json::Str(err.message.clone())),
        ]),
    )])
    .to_string()
}

fn scalar(kind: &str, value: f64) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::Str(kind.into())),
        ("value".into(), Json::Num(value)),
    ])
}

fn resolve(name: &str, names: &[String]) -> Result<NodeId, String> {
    names
        .iter()
        .position(|n| n == name)
        .ok_or_else(|| format!("unknown node {name:?}"))
}

fn node_field(doc: &Json, field: &str, names: &[String]) -> Result<NodeId, String> {
    let name = doc
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("request needs a string {field:?} field"))?;
    resolve(name, names)
}

fn num_field(doc: &Json, field: &str) -> Result<f64, String> {
    doc.get(field)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("request needs a numeric {field:?} field"))
}

/// Parses a `[["name", value], ...]` pair list.
fn pairs_field(doc: &Json, field: &str, names: &[String]) -> Result<Vec<(NodeId, f64)>, String> {
    let items = doc
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("request needs an array {field:?} field"))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("each {field} entry must be a [\"name\", value] pair"))?;
            let node = pair[0]
                .as_str()
                .ok_or_else(|| format!("{field} entry name must be a string"))
                .and_then(|n| resolve(n, names))?;
            let value = pair[1]
                .as_num()
                .ok_or_else(|| format!("{field} entry value must be a number"))?;
            Ok((node, value))
        })
        .collect()
}

fn goal_field(doc: &Json, names: &[String]) -> Result<QosGoal, String> {
    Ok(QosGoal {
        thresholds: pairs_field(doc, "goal", names)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["CRF".into(), "Buffer Size".into(), "Latency".into()]
    }

    #[test]
    fn parses_every_query_type() {
        let names = names();
        let q = parse_request(
            r#"{"type":"causal_effect","option":"Buffer Size","objective":"Latency"}"#,
            &names,
        )
        .unwrap();
        assert!(matches!(
            q,
            PerformanceQuery::CausalEffect {
                option: 1,
                objective: 2
            }
        ));

        let q = parse_request(
            r#"{"type":"probability","interventions":[["CRF",23],["Buffer Size",6000]],"objective":"Latency","threshold":30}"#,
            &names,
        )
        .unwrap();
        match q {
            PerformanceQuery::ProbabilityOfQos {
                interventions,
                objective,
                threshold,
            } => {
                assert_eq!(interventions, vec![(0, 23.0), (1, 6000.0)]);
                assert_eq!(objective, 2);
                assert_eq!(threshold, 30.0);
            }
            other => panic!("wrong parse: {other:?}"),
        }

        let q = parse_request(
            r#"{"type":"repairs","goal":[["Latency",28.5]],"fault_row":7}"#,
            &names,
        )
        .unwrap();
        match q {
            PerformanceQuery::Repairs { goal, fault_row } => {
                assert_eq!(goal.thresholds, vec![(2, 28.5)]);
                assert_eq!(fault_row, 7);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_nodes_and_types() {
        let names = names();
        assert!(parse_request(
            r#"{"type":"causal_effect","option":"Nope","objective":"Latency"}"#,
            &names
        )
        .unwrap_err()
        .contains("unknown node"));
        assert!(parse_request(r#"{"type":"mystery"}"#, &names).is_err());
        assert!(parse_request(r#"{"type":"repairs","goal":[],"fault_row":1.5}"#, &names).is_err());
    }

    #[test]
    fn reply_rendering_is_deterministic() {
        let names = names();
        let reply = render_reply(
            3,
            &QueryAnswer::RootCauses(vec![(1, 0.5), (0, -0.25)]),
            &names,
        );
        assert_eq!(
            reply,
            r#"{"epoch":3,"answer":{"type":"root_causes","ranked":[["Buffer Size",0.5],["CRF",-0.25]]}}"#
        );
        let reply = render_reply(0, &QueryAnswer::Effect(1.0), &names);
        assert_eq!(reply, r#"{"epoch":0,"answer":{"type":"effect","value":1}}"#);
    }

    #[test]
    fn v1_route_table() {
        let r = parse_v1("POST", "/v1/tenants/t7/query", "{}").unwrap();
        assert!(matches!(r, WireRequest::Query { ref tenant, .. } if tenant == "t7"));
        let r = parse_v1("POST", "/v1/tenants/t7/ingest", "{}").unwrap();
        assert!(matches!(r, WireRequest::Ingest { ref tenant, .. } if tenant == "t7"));
        let r = parse_v1("GET", "/v1/tenants/t7/stats", "").unwrap();
        assert!(matches!(r, WireRequest::TenantStats { ref tenant } if tenant == "t7"));
        let r = parse_v1("GET", "/v1/stats", "").unwrap();
        assert!(
            matches!(r, WireRequest::TenantStats { ref tenant } if tenant == DEFAULT_TENANT),
            "/v1/stats aliases the default tenant"
        );
        // Wrong method, embedded slash, empty tenant, unknown action.
        for (m, p) in [
            ("GET", "/v1/tenants/t7/query"),
            ("POST", "/v1/tenants/a/b/query"),
            ("POST", "/v1/tenants//query"),
            ("POST", "/v1/tenants/t7/frobnicate"),
            ("GET", "/v1"),
        ] {
            let err = parse_v1(m, p, "").unwrap_err();
            assert_eq!(err.code, ErrorCode::UnknownEndpoint, "{m} {p}");
        }
    }

    #[test]
    fn ingest_body_is_width_and_finiteness_checked() {
        let rows = parse_ingest(r#"{"rows":[[1,2,3],[4,5,6]]}"#, 3).unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert!(parse_ingest(r#"{"rows":[[1,2]]}"#, 3)
            .unwrap_err()
            .contains("columns"));
        assert!(parse_ingest(r#"{"rows":[[1,"x",3]]}"#, 3)
            .unwrap_err()
            .contains("finite"));
        assert!(parse_ingest(r#"{"nope":true}"#, 3).is_err());
        assert_eq!(
            parse_ingest(r#"{"rows":[]}"#, 3).unwrap(),
            Vec::<Vec<f64>>::new()
        );
    }

    #[test]
    fn v1_bodies_are_deterministic() {
        assert_eq!(
            render_v1_ok(&WireResponse::Ingested {
                accepted: 5,
                dropped: 2
            }),
            r#"{"accepted":5,"dropped":2}"#
        );
        assert_eq!(
            render_v1_error(&WireError::unknown_tenant()),
            r#"{"error":{"code":"unknown_tenant","message":"no such tenant"}}"#
        );
        assert_eq!(ErrorCode::UnknownTenant.http_status(), 404);
        assert_eq!(ErrorCode::UnknownTenant.legacy_status(), 503);
        assert_eq!(ErrorCode::Backpressure.http_status(), 503);
        assert_eq!(WireError::shutting_down().message, "server shutting down");
    }
}
