//! `ServeConfig` — the daemon's env-knob sprawl, parsed once at boot.
//!
//! Environment variables remain the configuration source (they compose
//! with the CI matrix and need no flag plumbing), but the daemon reads
//! them exactly once, here, into one typed struct — new knobs stop
//! threading raw `std::env::var` calls through the stack, and a typo in
//! a value is a boot-time error naming the variable instead of a
//! silently applied default.
//!
//! **Precedence** (lowest to highest): built-in default < environment
//! variable < explicit CLI flag (`unicornd --addr`/`--window-us`
//! overwrite the parsed config after [`ServeConfig::from_env`]).
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `UNICORN_ADDR` | `127.0.0.1:7077` | bind address |
//! | `UNICORN_ADMISSION_WINDOW_US` | `2000` | admission coalescing window (µs) |
//! | `UNICORN_THREADS` | cores, capped at 16 | worker-pool width (resolved by `unicorn_exec`) |
//! | `UNICORN_SWEEP_CACHE` | on | `off`/`0`/`false` disables the sweep cache (resolved by `unicorn_inference`) |
//! | `UNICORN_INGEST_BUFFER` | `1024` | bounded ingest buffer capacity (rows) |
//! | `UNICORN_INGEST_FLUSH_MS` | `50` | ingest flush-coalescing interval (ms) |
//! | `UNICORN_DRIFT_DETECTOR` | `page_hinkley` | `page_hinkley` or `cusum` |
//! | `UNICORN_DRIFT_DELTA` | `0.1` | per-sample drift allowance (RMS units) |
//! | `UNICORN_DRIFT_LAMBDA` | `8` | trigger threshold (RMS units) |
//! | `UNICORN_DRIFT_MIN_ROWS` | `12` | cold-start gate before a detector may trigger |
//! | `UNICORN_RELEARN_MAX_STALENESS` | `256` | rows before the staleness-fallback relearn |
//!
//! `UNICORN_THREADS` and `UNICORN_SWEEP_CACHE` are *resolved* by their
//! owning crates (the executor and the sweep cache read them at
//! construction); this config validates and mirrors them so `unicornd`
//! can log one coherent boot line and fail fast on garbage.

use std::time::Duration;

use unicorn_ingest::{DetectorKind, DriftOptions};

use crate::server::ServeOptions;

/// Streaming-ingestion knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Bounded ingest buffer capacity in rows; overflow is dropped with
    /// explicit backpressure.
    pub buffer_rows: usize,
    /// How long a flush holds the door open after the first buffered row
    /// (burst coalescing), mirroring the admission window.
    pub flush_interval: Duration,
}

/// Everything `unicornd` is configured by, parsed once at boot.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`UNICORN_ADDR`).
    pub addr: String,
    /// Admission coalescing window (`UNICORN_ADMISSION_WINDOW_US`).
    pub window: Duration,
    /// Worker-pool width, as `unicorn_exec` resolves it.
    pub threads: usize,
    /// Whether the interventional sweep cache is enabled, as
    /// `unicorn_inference` resolves it.
    pub sweep_cache: bool,
    /// Streaming-ingestion knobs.
    pub ingest: IngestConfig,
    /// Drift-detection thresholds for the background relearn loop.
    pub drift: DriftOptions,
}

impl ServeConfig {
    /// Parses the full configuration from the environment. Any present
    /// but malformed variable is an `Err` naming it.
    pub fn from_env() -> Result<Self, String> {
        // Validate the pool width here (Err, not the executor's panic),
        // then let the owning crate resolve the effective value.
        if let Ok(v) = std::env::var("UNICORN_THREADS") {
            let n: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("UNICORN_THREADS: cannot parse {v:?} as a thread count"))?;
            if n == 0 {
                return Err("UNICORN_THREADS: must be positive".into());
            }
        }
        let defaults = DriftOptions::default();
        let detector = match std::env::var("UNICORN_DRIFT_DETECTOR") {
            Err(_) => defaults.detector,
            Ok(v) => match v.trim() {
                "page_hinkley" => DetectorKind::PageHinkley,
                "cusum" => DetectorKind::Cusum,
                other => {
                    return Err(format!(
                        "UNICORN_DRIFT_DETECTOR: unknown detector {other:?} \
                         (expected \"page_hinkley\" or \"cusum\")"
                    ))
                }
            },
        };
        let config = Self {
            addr: std::env::var("UNICORN_ADDR").unwrap_or_else(|_| "127.0.0.1:7077".into()),
            window: Duration::from_micros(parsed("UNICORN_ADMISSION_WINDOW_US", 2000u64)?),
            threads: unicorn_exec::default_threads(),
            sweep_cache: unicorn_inference::sweep_cache_enabled(),
            ingest: IngestConfig {
                buffer_rows: parsed("UNICORN_INGEST_BUFFER", 1024usize)?,
                flush_interval: Duration::from_millis(parsed("UNICORN_INGEST_FLUSH_MS", 50u64)?),
            },
            drift: DriftOptions {
                detector,
                delta: parsed("UNICORN_DRIFT_DELTA", defaults.delta)?,
                lambda: parsed("UNICORN_DRIFT_LAMBDA", defaults.lambda)?,
                min_rows: parsed("UNICORN_DRIFT_MIN_ROWS", defaults.min_rows)?,
                max_staleness_rows: parsed(
                    "UNICORN_RELEARN_MAX_STALENESS",
                    defaults.max_staleness_rows,
                )?,
            },
        };
        if config.ingest.buffer_rows == 0 {
            return Err("UNICORN_INGEST_BUFFER: must be positive".into());
        }
        if !(config.drift.delta.is_finite() && config.drift.delta >= 0.0) {
            return Err("UNICORN_DRIFT_DELTA: must be a non-negative number".into());
        }
        if !(config.drift.lambda.is_finite() && config.drift.lambda > 0.0) {
            return Err("UNICORN_DRIFT_LAMBDA: must be a positive number".into());
        }
        Ok(config)
    }

    /// The server-side slice of the config.
    pub fn serve_options(&self) -> ServeOptions {
        ServeOptions {
            addr: self.addr.clone(),
            window: self.window,
        }
    }
}

/// Parses `name` from the environment, or hands back `default` when the
/// variable is unset.
fn parsed<T: std::str::FromStr>(name: &str, default: T) -> Result<T, String> {
    match std::env::var(name) {
        Err(_) => Ok(default),
        Ok(v) => v
            .trim()
            .parse()
            .map_err(|_| format!("{name}: cannot parse {v:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers all env interaction: tests in this binary run in
    // parallel, and these variables are read nowhere else at test time.
    #[test]
    fn defaults_and_overrides_and_errors() {
        let config = ServeConfig::from_env().expect("default env parses");
        assert_eq!(config.addr, "127.0.0.1:7077");
        assert_eq!(config.window, Duration::from_micros(2000));
        assert!(config.threads >= 1);
        assert_eq!(config.ingest.buffer_rows, 1024);
        assert_eq!(config.ingest.flush_interval, Duration::from_millis(50));
        assert_eq!(config.drift.detector, DetectorKind::PageHinkley);
        assert_eq!(config.drift.max_staleness_rows, 256);
        let opts = config.serve_options();
        assert_eq!(opts.addr, config.addr);
        assert_eq!(opts.window, config.window);

        std::env::set_var("UNICORN_DRIFT_DETECTOR", "cusum");
        std::env::set_var("UNICORN_DRIFT_LAMBDA", "4.5");
        std::env::set_var("UNICORN_INGEST_BUFFER", "64");
        let config = ServeConfig::from_env().expect("overridden env parses");
        assert_eq!(config.drift.detector, DetectorKind::Cusum);
        assert_eq!(config.drift.lambda, 4.5);
        assert_eq!(config.ingest.buffer_rows, 64);

        std::env::set_var("UNICORN_DRIFT_LAMBDA", "much");
        let err = ServeConfig::from_env().expect_err("garbage must not boot");
        assert!(err.contains("UNICORN_DRIFT_LAMBDA"), "{err}");
        std::env::set_var("UNICORN_DRIFT_LAMBDA", "-1");
        assert!(ServeConfig::from_env().is_err(), "negative lambda rejected");

        std::env::remove_var("UNICORN_DRIFT_DETECTOR");
        std::env::remove_var("UNICORN_DRIFT_LAMBDA");
        std::env::remove_var("UNICORN_INGEST_BUFFER");
    }
}
