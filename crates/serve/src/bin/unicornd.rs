//! `unicornd` — the resident Unicorn serving daemon.
//!
//! Boots a simulated subject system, learns the causal performance model
//! once, publishes it as epoch 1's snapshot, and serves causal queries
//! over HTTP/JSON until killed. With `--smoke` it instead binds an
//! OS-assigned loopback port, issues one ACE query and one root-cause
//! query against itself over **one persistent TCP connection**
//! (exercising keep-alive), prints the two reply bodies to stdout, and
//! exits — CI byte-diffs that output against
//! `tests/golden/serve_smoke.txt`.
//!
//! ```sh
//! unicornd [--addr 127.0.0.1:7077] [--window-us 2000]
//!          [--samples 60] [--seed 42] [--smoke]
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use unicorn_core::{SnapshotCell, UnicornOptions, UnicornState};
use unicorn_serve::{http_request_many, ServeOptions, Server};
use unicorn_systems::{Environment, Hardware, Simulator, SubjectSystem};

struct Args {
    addr: String,
    window: Duration,
    samples: usize,
    seed: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7077".into(),
        window: Duration::from_micros(2000),
        samples: 60,
        seed: 42,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--window-us" => {
                args.window = Duration::from_micros(
                    value("--window-us")?
                        .parse()
                        .map_err(|_| "--window-us must be an integer".to_string())?,
                )
            }
            "--samples" => {
                args.samples = value("--samples")?
                    .parse()
                    .map_err(|_| "--samples must be an integer".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("unicornd: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Boot: learn the model once, publish it as the serving snapshot.
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        args.seed,
    );
    let opts = UnicornOptions {
        initial_samples: args.samples,
        ..UnicornOptions::default()
    };
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let snapshots = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));

    let serve_opts = ServeOptions {
        addr: if args.smoke {
            "127.0.0.1:0".into()
        } else {
            args.addr.clone()
        },
        window: args.window,
    };
    let server = match Server::start(snapshots, &serve_opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("unicornd: bind {}: {e}", serve_opts.addr);
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        return smoke(server);
    }

    eprintln!("unicornd: serving on {}", server.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Self-driving smoke: two queries through the real TCP path — both on
/// one persistent connection — reply bodies on stdout (the CI golden),
/// clean shutdown.
fn smoke(server: Server) -> ExitCode {
    let addr = server.addr();
    let queries = [
        (
            "POST",
            "/query",
            Some(r#"{"type":"causal_effect","option":"Buffer Size","objective":"Latency"}"#),
        ),
        (
            "POST",
            "/query",
            Some(r#"{"type":"root_causes","goal":[["Latency",30]]}"#),
        ),
    ];
    match http_request_many(addr, &queries) {
        Ok(replies) => {
            for (status, reply) in replies {
                if status != 200 {
                    eprintln!("unicornd: smoke query failed: HTTP {status}: {reply}");
                    server.shutdown();
                    return ExitCode::FAILURE;
                }
                println!("{reply}");
            }
        }
        Err(e) => {
            eprintln!("unicornd: smoke query failed: {e}");
            server.shutdown();
            return ExitCode::FAILURE;
        }
    }
    server.shutdown();
    ExitCode::SUCCESS
}
