//! `unicornd` — the resident Unicorn serving daemon.
//!
//! Boots a simulated subject system, learns the causal performance model
//! once, publishes it as epoch 1's snapshot, and serves causal queries
//! over HTTP/JSON until killed. Configuration is parsed once at boot
//! into a typed [`ServeConfig`] (see `unicorn_serve::config` for the
//! variable table); explicit CLI flags outrank environment variables.
//!
//! The daemon also runs the streaming-ingestion loop for the default
//! tenant: rows POSTed to `/v1/tenants/default/ingest` land in a bounded
//! buffer, and a background worker folds flushes into the model, watches
//! drift detectors over SCM prediction residuals, and on a trigger (or
//! the max-staleness fallback) relearns off-thread and publishes the
//! next epoch while connection threads keep answering from the old one.
//!
//! With `--smoke` it instead binds an OS-assigned loopback port, issues
//! one ACE query and one root-cause query against itself over **one
//! persistent TCP connection** (exercising keep-alive), prints the two
//! reply bodies to stdout, and exits — CI byte-diffs that output against
//! `tests/golden/serve_smoke.txt`. `--smoke-v1` does the same over the
//! versioned surface — the two `/v1/` query replies (byte-identical to
//! the legacy ones), a deterministic ingest ack, and the two fixed
//! `/v1/` error bodies — diffed against `tests/golden/serve_smoke_v1.txt`.
//!
//! ```sh
//! unicornd [--addr 127.0.0.1:7077] [--window-us 2000]
//!          [--samples 60] [--seed 42] [--smoke] [--smoke-v1]
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use unicorn_core::{SnapshotCell, SnapshotRouter, UnicornOptions, UnicornState, DEFAULT_TENANT};
use unicorn_ingest::{
    DriftStats, IngestEndpoint, IngestPipeline, IngestQueue, IngestRouter, IngestWorker,
};
use unicorn_serve::{http_request_many, Json, ServeConfig, Server};
use unicorn_systems::{Environment, Hardware, Simulator, SubjectSystem};

struct Args {
    addr: Option<String>,
    window: Option<Duration>,
    samples: usize,
    seed: u64,
    smoke: bool,
    smoke_v1: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        window: None,
        samples: 60,
        seed: 42,
        smoke: false,
        smoke_v1: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--window-us" => {
                args.window = Some(Duration::from_micros(
                    value("--window-us")?
                        .parse()
                        .map_err(|_| "--window-us must be an integer".to_string())?,
                ))
            }
            "--samples" => {
                args.samples = value("--samples")?
                    .parse()
                    .map_err(|_| "--samples must be an integer".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--smoke" => args.smoke = true,
            "--smoke-v1" => args.smoke_v1 = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("unicornd: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Config precedence: built-in default < env var < explicit CLI flag.
    let mut config = match ServeConfig::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("unicornd: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = &args.addr {
        config.addr = addr.clone();
    }
    if let Some(window) = args.window {
        config.window = window;
    }
    let smoke = args.smoke || args.smoke_v1;
    if smoke {
        config.addr = "127.0.0.1:0".into();
    }

    // Boot: learn the model once, publish it as the serving snapshot.
    let sim = Simulator::new(
        SubjectSystem::X264.build(),
        Environment::on(Hardware::Tx2),
        args.seed,
    );
    let opts = UnicornOptions {
        initial_samples: args.samples,
        ..UnicornOptions::default()
    };
    let mut state = UnicornState::bootstrap(&sim, &opts);
    let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
    let router = SnapshotRouter::single(Arc::clone(&cell));

    // The default tenant's ingest plumbing: a bounded buffer the server
    // pushes into, and the background relearn worker that owns the
    // state from here on (connection threads only read snapshots).
    let queue = IngestQueue::new(config.ingest.buffer_rows);
    let drift_stats = Arc::new(DriftStats::default());
    let pipeline = IngestPipeline::new(
        state,
        sim.clone(),
        opts,
        Arc::clone(&cell),
        config.drift,
        Arc::clone(&drift_stats),
    );
    let worker = IngestWorker::spawn(pipeline, Arc::clone(&queue), config.ingest.flush_interval);
    let ingest = Arc::new(IngestRouter::new());
    ingest.insert(
        DEFAULT_TENANT,
        IngestEndpoint {
            queue: Arc::clone(&queue),
            drift: drift_stats,
        },
    );

    let server = match Server::start_with_ingest(router, ingest, &config.serve_options()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("unicornd: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };

    if smoke {
        let code = if args.smoke_v1 {
            smoke_v1(&server, &sim)
        } else {
            smoke_legacy(&server)
        };
        server.shutdown();
        queue.close();
        worker.join();
        return code;
    }

    eprintln!(
        "unicornd: serving on {} (threads {}, sweep_cache {}, ingest buffer {} rows / flush {:?}, drift {:?})",
        server.addr(),
        config.threads,
        config.sweep_cache,
        config.ingest.buffer_rows,
        config.ingest.flush_interval,
        config.drift.detector,
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Issues `requests` over one persistent connection and prints each
/// reply body to stdout, failing unless the statuses match `expect`.
fn drive(server: &Server, requests: &[(&str, &str, Option<&str>)], expect: &[u16]) -> ExitCode {
    match http_request_many(server.addr(), requests) {
        Ok(replies) => {
            for ((status, reply), want) in replies.iter().zip(expect) {
                if status != want {
                    eprintln!("unicornd: smoke query failed: HTTP {status} (want {want}): {reply}");
                    return ExitCode::FAILURE;
                }
                println!("{reply}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("unicornd: smoke query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Self-driving smoke: two queries through the real TCP path — both on
/// one persistent connection — reply bodies on stdout (the CI golden).
fn smoke_legacy(server: &Server) -> ExitCode {
    let queries = [
        (
            "POST",
            "/query",
            Some(r#"{"type":"causal_effect","option":"Buffer Size","objective":"Latency"}"#),
        ),
        (
            "POST",
            "/query",
            Some(r#"{"type":"root_causes","goal":[["Latency",30]]}"#),
        ),
    ];
    drive(server, &queries, &[200, 200])
}

/// The `/v1/` smoke: the two legacy queries on the versioned route
/// (replies must be byte-identical to the legacy golden's), a
/// deterministic two-row ingest ack, and the two fixed error bodies —
/// unknown tenant and unknown endpoint — all on one connection.
fn smoke_v1(server: &Server, sim: &Simulator) -> ExitCode {
    // Two deterministic measurement rows for the ingest ack (the worker
    // folds them after the ack; with default thresholds two
    // in-distribution rows never trigger a relearn).
    let data = unicorn_systems::generate(sim, 2, 0xD1F7);
    let rows = Json::Arr(
        (0..data.n_rows())
            .map(|r| Json::Arr(data.columns.iter().map(|c| Json::Num(c[r])).collect()))
            .collect(),
    );
    let ingest_body = Json::Obj(vec![("rows".into(), rows)]).to_string();
    let requests = [
        (
            "POST",
            "/v1/tenants/default/query",
            Some(r#"{"type":"causal_effect","option":"Buffer Size","objective":"Latency"}"#),
        ),
        (
            "POST",
            "/v1/tenants/default/query",
            Some(r#"{"type":"root_causes","goal":[["Latency",30]]}"#),
        ),
        (
            "POST",
            "/v1/tenants/default/ingest",
            Some(ingest_body.as_str()),
        ),
        (
            "POST",
            "/v1/tenants/nope/query",
            Some(r#"{"type":"root_causes","goal":[["Latency",30]]}"#),
        ),
        ("GET", "/v1/bogus", None),
    ];
    drive(server, &requests, &[200, 200, 200, 404, 404])
}
