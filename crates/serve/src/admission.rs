//! Admission batching: the daemon's perf headline.
//!
//! Connection threads never evaluate anything themselves — they submit
//! their parsed query (tagged with its tenant) to the [`AdmissionQueue`]
//! and block on a reply channel. A single batcher thread drains the
//! queue: when a request arrives it waits one *admission window* (default
//! a few milliseconds) for concurrent requests to pile up — *across
//! tenants* — then groups the drained round by tenant, loads each
//! tenant's current snapshot once, and answers each group through
//! [`unicorn_inference::answer_coalesced`] — every request compiled into
//! one merged [`unicorn_inference::PlanBatch`] per coalescing round, with
//! duplicate interventional sweeps deduplicated, the no-intervention
//! baseline shared, and one `DomainCache` probe per (node, grid) across
//! the window. Answers are demultiplexed per request and are bit-identical
//! to evaluating each request alone (`tests/serve_coalescing.rs` proves
//! this property-style; the serve bench asserts it on every sample).
//!
//! Because the batch holds one `Arc` snapshot for its whole lifetime, an
//! epoch flip mid-batch is harmless: the in-flight batch finishes against
//! the epoch it loaded, and the next batch picks up the new one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use unicorn_core::SnapshotRouter;
use unicorn_inference::{answer_coalesced, PerformanceQuery, QueryAnswer};

/// A coalesced answer: the payload plus the epoch that produced it.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// Epoch of the snapshot the batch ran against.
    pub epoch: u64,
    /// The answer, bit-identical to a standalone `estimate`.
    pub answer: QueryAnswer,
}

struct Job {
    tenant: String,
    query: PerformanceQuery,
    reply: Sender<ServedAnswer>,
}

/// The submission side of the admission batcher.
///
/// Counters are observability for tests and the bench: `submitted` /
/// `batches` expose the coalescing ratio actually achieved.
pub struct AdmissionQueue {
    jobs: Mutex<VecDeque<Job>>,
    arrived: Condvar,
    open: AtomicBool,
    submitted: AtomicU64,
    batches: AtomicU64,
}

impl AdmissionQueue {
    /// An open, empty queue.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            jobs: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            open: AtomicBool::new(true),
            submitted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        })
    }

    /// Submits a query against `tenant` for the next admission window
    /// (single-tenant callers pass [`unicorn_core::DEFAULT_TENANT`]).
    /// Returns the receiver the batcher will answer on; blocks nobody.
    /// A submission for an unregistered tenant is answered by dropping
    /// the reply sender — the receiver's `recv` errors, which the server
    /// maps to 503.
    pub fn submit(&self, tenant: &str, query: PerformanceQuery) -> Receiver<ServedAnswer> {
        let (reply, rx) = channel();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let mut jobs = self.jobs.lock().expect("admission queue poisoned");
        jobs.push_back(Job {
            tenant: tenant.to_string(),
            query,
            reply,
        });
        drop(jobs);
        self.arrived.notify_one();
        rx
    }

    /// Closes the queue: the batcher drains what is queued and exits.
    pub fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
        self.arrived.notify_all();
    }

    /// Total queries submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Total plan batches evaluated so far — one per (tenant, window)
    /// round. `submitted() / batches()` is the realized coalescing
    /// factor.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Blocks until at least one job is queued (or the queue closes),
    /// then holds admission open for `window` and drains everything that
    /// arrived. `None` means closed-and-empty: the batcher should exit.
    fn take_batch(&self, window: Duration) -> Option<Vec<Job>> {
        let mut jobs = self.jobs.lock().expect("admission queue poisoned");
        while jobs.is_empty() {
            if !self.open.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self.arrived.wait(jobs).expect("admission queue poisoned");
        }
        if !window.is_zero() {
            // Admission window: let concurrent requests join this batch.
            // Sleeping without the lock keeps submission wait-free.
            drop(jobs);
            std::thread::sleep(window);
            jobs = self.jobs.lock().expect("admission queue poisoned");
        }
        Some(jobs.drain(..).collect())
    }
}

/// The batcher loop: drain a window's worth of requests, group them by
/// tenant preserving arrival order, and answer each tenant group as one
/// coalesced plan batch against that tenant's current snapshot — one
/// [`unicorn_inference::PlanBatch`] per (tenant, window) round. Jobs for
/// tenants the router does not know are dropped (their reply sender with
/// them), which the connection thread surfaces as 503.
///
/// Runs until [`AdmissionQueue::close`] is called and the queue drains.
/// Send failures (client gave up) are ignored — the batch's other
/// answers are unaffected.
pub fn run_batcher(queue: &AdmissionQueue, router: &SnapshotRouter, window: Duration) {
    while let Some(batch) = queue.take_batch(window) {
        // Group by tenant in arrival order. Rounds hold a handful of
        // distinct tenants, so a linear scan beats hashing and keeps the
        // demux order deterministic.
        let mut groups: Vec<(String, Vec<Job>)> = Vec::new();
        for job in batch {
            match groups.iter_mut().find(|(t, _)| *t == job.tenant) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((job.tenant.clone(), vec![job])),
            }
        }
        for (tenant, jobs) in groups {
            let Some(cell) = router.get(&tenant) else {
                continue; // dropping the jobs drops their reply senders
            };
            let snap = cell.load();
            let queries: Vec<PerformanceQuery> = jobs.iter().map(|j| j.query.clone()).collect();
            let answers = answer_coalesced(&snap.engine, &queries);
            queue.batches.fetch_add(1, Ordering::Relaxed);
            for (job, answer) in jobs.into_iter().zip(answers) {
                let _ = job.reply.send(ServedAnswer {
                    epoch: snap.epoch,
                    answer,
                });
            }
        }
    }
}
