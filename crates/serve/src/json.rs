//! A minimal JSON value model for the wire protocol.
//!
//! The workspace has no registry access, so the daemon speaks JSON
//! through this self-contained recursive-descent parser and writer. The
//! dialect is full JSON on input; on output, objects preserve insertion
//! order and numbers render through Rust's shortest-roundtrip `f64`
//! display, so a reply is a deterministic byte sequence — the property
//! the CI smoke golden relies on.

use std::fmt::Write as _;

/// A parsed JSON value. Objects are ordered key/value lists (insertion
/// order in, document order out) — deterministic serialization matters
/// more to the protocol than O(1) key lookup on a handful of fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document/insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Canonical compact serialization (`to_string()` comes with it).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Numbers render via Rust's shortest-roundtrip display — deterministic,
/// and `parse::<f64>()` of the output is bit-identical to the input.
/// Non-finite values (JSON has no spelling for them) render as `null`.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.at))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(kw.as_bytes()) {
            self.at += kw.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.at)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let doc = r#"{"type":"probability","interventions":[["Buffer Size",6000]],"objective":"Latency","threshold":30.5,"flag":true,"note":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("probability"));
        assert_eq!(v.get("threshold").and_then(Json::as_num), Some(30.5));
        assert_eq!(v.to_string(), doc);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn float_output_roundtrips_bitwise() {
        for &x in &[0.1, -3.75e-9, 1.0, 12345.678901234567, f64::MIN_POSITIVE] {
            let s = Json::Num(x).to_string();
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd".into());
        let s = v.to_string();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        assert_eq!(parse(&s).unwrap(), v);
    }
}
