//! # unicorn-serve — `unicornd`
//!
//! A resident serving daemon over the Unicorn engine: long-lived process,
//! epoch-snapshotted model state, many concurrent clients, one coalesced
//! plan batch per admission window.
//!
//! ## Architecture
//!
//! ```text
//!  clients ══HTTP keep-alive══▶ conn threads ──submit(tenant, q)──▶ AdmissionQueue
//!              │                                   │  (window: ~1–5 ms, across tenants)
//!              │ POST /v1/tenants/:id/ingest  batcher thread
//!              ▼                                   │  group by tenant, then per group:
//!        IngestQueue (bounded)                     │  load() ── SnapshotRouter[tenant] ◀─┐
//!              │ flush interval                answer_coalesced                 publish()│
//!              ▼                  (one merged PlanBatch per (tenant, window))            │
//!        ingest worker ── residuals ─▶ drift detect ─▶ relearn ───────────────────────▶─┘
//! ```
//!
//! * **Snapshots** ([`unicorn_core::snapshot`]): queries never touch
//!   mutable state. The daemon resolves the request's tenant through a
//!   [`unicorn_core::SnapshotRouter`] and reads that tenant's
//!   `Arc<EngineSnapshot>` from its [`unicorn_core::SnapshotCell`]; a
//!   background relearn builds the next epoch and publishes it with a
//!   pointer flip. In-flight batches finish against the epoch they
//!   loaded. A single-tenant daemon is the one-entry router
//!   ([`unicorn_core::SnapshotRouter::single`]); a fleet hands its
//!   router ([`unicorn_core::fleet::Fleet::router`]) to
//!   [`Server::start_router`] and is served on `/tenant/:id/query`.
//! * **Admission batching** ([`admission`]): requests arriving within
//!   the window — from any tenant — are grouped per tenant, and each
//!   group compiles into one merged `PlanBatch` — duplicate
//!   interventional sweeps deduplicated across requests, the
//!   no-intervention baseline shared, one domain probe per (node, grid)
//!   per window — and the merged results are demultiplexed per request.
//!   Answers are **bit-identical** to evaluating each request alone; the
//!   win is throughput, never semantics.
//! * **Protocol** ([`protocol`], [`json`]): a deterministic JSON dialect
//!   over a minimal `std::net` HTTP/1.1 subset ([`server`]) — no
//!   registry access, so no tokio; the persistent `unicorn_exec`
//!   executor inside the engine is the scheduler that matters.
//!   Connections are persistent (HTTP/1.1 keep-alive semantics, honored
//!   from the request's version token and `Connection:` header, with an
//!   idle timeout); [`http_request_many`] is the matching client. The
//!   versioned `/v1/` surface routes through one typed pair
//!   ([`WireRequest`] / [`WireResponse`]) with the single error shape
//!   `{"error":{"code","message"}}`; legacy routes are thin aliases over
//!   the same handlers, byte-identical to their pre-`/v1` selves.
//! * **Ingest & drift** (`unicorn_ingest`, wired by `unicornd`): live
//!   measurement rows enter a bounded per-tenant `IngestQueue` via
//!   `POST /v1/tenants/:id/ingest` (explicit backpressure when full); a
//!   background worker folds flushes into the tenant's `UnicornState`,
//!   watches Page-Hinkley/CUSUM detectors over SCM prediction residuals,
//!   and on a trigger (or the max-staleness fallback) relearns off-thread
//!   and publishes the next epoch with a pointer flip. `/stats` carries
//!   the ingest/drift counters.
//! * **Config** ([`config`]): every env knob is parsed once at daemon
//!   boot into a typed [`ServeConfig`] (precedence: default < env var <
//!   CLI flag) instead of raw `std::env::var` calls sprinkled through
//!   the stack.
//!
//! ## Adding a new query endpoint
//!
//! The daemon answers whatever [`unicorn_inference::PerformanceQuery`]
//! can express; a new query kind threads through four small seams:
//!
//! 1. **Inference**: add the variant to `PerformanceQuery` /
//!    `QueryAnswer`, and teach `unicorn_inference::coalesce` to compile
//!    it — either a one-round scalar (emit plan items in
//!    `CoalescedQuery::compile`, harvest them in `advance`) or a
//!    multi-round state if it needs intermediate results. Reuse the
//!    `compile_*`/`finish_*` pairs the engine's own entry points use so
//!    coalesced answers cannot drift from standalone ones.
//! 2. **Protocol parse**: add a `"type"` arm in
//!    [`protocol::parse_request`] mapping request JSON (nodes by name)
//!    to the new variant.
//! 3. **Protocol render**: add the answer arm in
//!    [`protocol::render_reply`]. Keep field order fixed — replies are
//!    byte-diffed in CI.
//! 4. **Tests**: extend `tests/serve_coalescing.rs` with the new query
//!    in the mixed workload — the proptest then proves its merged-batch
//!    answer is bit-identical to `engine.estimate`, interleaved with an
//!    epoch flip.
//!
//! No server/admission changes are needed: routing is uniform over
//! `PerformanceQuery`.

pub mod admission;
pub mod config;
pub mod json;
pub mod protocol;
pub mod server;

pub use admission::{run_batcher, AdmissionQueue, ServedAnswer};
pub use config::{IngestConfig, ServeConfig};
pub use json::{parse as parse_json, Json};
pub use protocol::{
    parse_ingest, parse_request, parse_v1, render_error, render_reply, render_v1_error,
    render_v1_ok, ErrorCode, WireError, WireRequest, WireResponse,
};
pub use server::{http_request, http_request_many, ServeOptions, Server};
