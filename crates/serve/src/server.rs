//! The HTTP front of `unicornd`: `std::net` TCP, one thread per
//! connection, a single batcher thread behind the admission queue.
//!
//! The daemon deliberately speaks a minimal HTTP/1.1 subset (no chunked
//! bodies): the workspace has no registry access, and the persistent
//! `unicorn_exec::Executor` inside the engine is the scheduler that
//! matters — connection threads only parse, enqueue, and block on their
//! reply channel. Connections are persistent per HTTP/1.1 semantics:
//! requests loop on one socket until the client sends `Connection:
//! close` (or speaks HTTP/1.0 without `keep-alive`), closes its end, or
//! goes idle past the read timeout.
//!
//! Endpoints — the versioned `/v1/` surface (see [`crate::protocol`] for
//! the typed request/response pair and the deterministic error shape):
//!
//! * `POST /v1/tenants/:id/query` — a protocol query body; replies
//!   `{"epoch":N,"answer":{...}}`.
//! * `POST /v1/tenants/:id/ingest` — `{"rows":[[...],...]}` measurement
//!   rows into the tenant's bounded ingest buffer; acks
//!   `{"accepted":N,"dropped":M}`, 503 `backpressure` when the whole
//!   submission is shed.
//! * `GET /v1/tenants/:id/stats` — the tenant's observability snapshot.
//! * `GET /v1/stats` — the same for the default tenant.
//!
//! Legacy routes, kept as thin aliases over the same handlers (success
//! bodies shared byte-for-byte; errors keep the old `{"error":"..."}`
//! shape and status codes):
//!
//! * `GET /health` — `{"ok":true,"epoch":N}` from the default tenant's
//!   snapshot (`{"ok":true,"tenants":N}` on a fleet router with no
//!   default tenant).
//! * `GET /stats`, `GET /tenant/:id/stats` — observability snapshot:
//!   snapshot epoch, sweep-cache counters, admission coalescing
//!   counters, and the ingest/drift counters, as deterministic
//!   fixed-key-order JSON.
//! * `POST /query`, `POST /tenant/:id/query` — the protocol query
//!   against the default tenant / tenant `:id`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use unicorn_core::{SnapshotCell, SnapshotRouter, DEFAULT_TENANT};
use unicorn_ingest::IngestRouter;

use crate::admission::{run_batcher, AdmissionQueue};
use crate::json::Json;
use crate::protocol::{
    parse_ingest, parse_request, parse_v1, render_error, render_v1_error, render_v1_ok, ErrorCode,
    WireError, WireRequest, WireResponse,
};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 for an OS-assigned loopback port.
    pub addr: String,
    /// Admission window: how long a batch holds the door open for
    /// concurrent requests after the first arrival. Zero disables
    /// coalescing delay (each batch takes whatever is already queued).
    pub window: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_millis(2),
        }
    }
}

/// A running daemon: accept loop + batcher, both joined on shutdown.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    router: Arc<SnapshotRouter>,
    ingest: Arc<IngestRouter>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a single-tenant server over `snapshots` (registered under
    /// [`DEFAULT_TENANT`]). The server serves whatever snapshot the cell
    /// currently holds; publishing to the cell flips the model
    /// generation live.
    pub fn start(snapshots: Arc<SnapshotCell>, opts: &ServeOptions) -> std::io::Result<Self> {
        Self::start_router(SnapshotRouter::single(snapshots), opts)
    }

    /// [`Self::start_with_ingest`] with no ingest endpoints — every
    /// `/v1/tenants/:id/ingest` request answers 404.
    pub fn start_router(router: Arc<SnapshotRouter>, opts: &ServeOptions) -> std::io::Result<Self> {
        Self::start_with_ingest(router, Arc::new(IngestRouter::new()), opts)
    }

    /// Binds, spawns the batcher and the accept loop over a (possibly
    /// multi-tenant) snapshot router, and returns. Tenants registered
    /// with the snapshot router — before or after start — are served on
    /// the query/stats routes; the [`DEFAULT_TENANT`] cell, if present,
    /// also answers the legacy `/query` route. Tenants registered with
    /// the ingest router additionally accept rows on
    /// `/v1/tenants/:id/ingest` (the daemon's background relearn worker
    /// drains them; the server itself only buffers).
    pub fn start_with_ingest(
        router: Arc<SnapshotRouter>,
        ingest: Arc<IngestRouter>,
        opts: &ServeOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let queue = AdmissionQueue::new();
        let stop = Arc::new(AtomicBool::new(false));

        let batcher_thread = {
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let window = opts.window;
            std::thread::Builder::new()
                .name("unicornd-batcher".into())
                .spawn(move || run_batcher(&queue, &router, window))?
        };

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("unicornd-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let queue = Arc::clone(&queue);
                        let router = Arc::clone(&router);
                        let ingest = Arc::clone(&ingest);
                        // One thread per connection: parse, enqueue,
                        // block on the reply channel, write, loop until
                        // the client closes or goes idle.
                        let spawned = std::thread::Builder::new()
                            .name("unicornd-conn".into())
                            .spawn(move || handle_connection(stream, &queue, &router, &ingest));
                        drop(spawned);
                    }
                })?
        };

        Ok(Self {
            addr,
            queue,
            router,
            ingest,
            stop,
            accept_thread: Some(accept_thread),
            batcher_thread: Some(batcher_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot router this server reads — publish into a tenant's
    /// cell to flip its model generation live.
    pub fn router(&self) -> &Arc<SnapshotRouter> {
        &self.router
    }

    /// The default tenant's snapshot cell, if one is registered (the
    /// single-tenant daemon's publication point).
    pub fn snapshots(&self) -> Option<Arc<SnapshotCell>> {
        self.router.get(DEFAULT_TENANT)
    }

    /// The admission queue (coalescing counters for tests/benches).
    pub fn queue(&self) -> &Arc<AdmissionQueue> {
        &self.queue
    }

    /// The ingest router this server buffers rows through (empty unless
    /// started via [`Self::start_with_ingest`]).
    pub fn ingest(&self) -> &Arc<IngestRouter> {
        &self.ingest
    }

    /// Stops accepting, drains the batcher, joins both threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

/// How long a persistent connection may sit idle between requests before
/// the server closes it.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Serves one connection: read a request, route it, write the response,
/// and loop while the client keeps the connection alive. A clean close or
/// idle timeout between requests ends the loop silently; a malformed
/// request gets a 400 and a close.
fn handle_connection(
    mut stream: TcpStream,
    queue: &AdmissionQueue,
    router: &SnapshotRouter,
    ingest: &IngestRouter,
) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    loop {
        let req = match read_request(&mut stream) {
            Ok(Some(req)) => req,
            Ok(None) => return, // client closed / idle between requests
            Err(_) => {
                let _ = write_response(
                    &mut stream,
                    400,
                    &render_error("malformed HTTP request"),
                    true,
                );
                return;
            }
        };
        let close = !req.keep_alive;
        let (status, body) = route(&req, queue, router, ingest);
        if write_response(&mut stream, status, &body, close).is_err() || close {
            return;
        }
    }
}

/// One parsed request off the wire.
struct Request {
    method: String,
    path: String,
    body: String,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default, overridden by a `Connection:` header either way).
    keep_alive: bool,
}

/// Routes one request to `(status, reply body)`. Every query/ingest/
/// stats route — `/v1/` and legacy alike — funnels through the same
/// typed [`dispatch`]; the two surfaces differ only in how they render
/// the `Result` (v1's `{"error":{"code","message"}}` vs the legacy
/// `{"error":"..."}` bodies and status codes).
fn route(
    req: &Request,
    queue: &AdmissionQueue,
    router: &SnapshotRouter,
    ingest: &IngestRouter,
) -> (u16, String) {
    if req.path == "/v1" || req.path.starts_with("/v1/") {
        let result = parse_v1(&req.method, &req.path, &req.body)
            .and_then(|wire| dispatch(wire, queue, router, ingest));
        return match result {
            Ok(resp) => (200, render_v1_ok(&resp)),
            Err(e) => (e.code.http_status(), render_v1_error(&e)),
        };
    }
    let legacy = |result: Result<WireResponse, WireError>| match result {
        Ok(resp) => (200, render_v1_ok(&resp)),
        Err(e) => (e.code.legacy_status(), render_error(&e.message)),
    };
    let stats = |tenant: &str| {
        legacy(dispatch(
            WireRequest::TenantStats {
                tenant: tenant.into(),
            },
            queue,
            router,
            ingest,
        ))
    };
    let query = |tenant: &str| {
        legacy(dispatch(
            WireRequest::Query {
                tenant: tenant.into(),
                body: req.body.clone(),
            },
            queue,
            router,
            ingest,
        ))
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => match router.get(DEFAULT_TENANT) {
            Some(cell) => {
                let epoch = cell.load().epoch;
                (200, format!("{{\"ok\":true,\"epoch\":{epoch}}}"))
            }
            None => (200, format!("{{\"ok\":true,\"tenants\":{}}}", router.len())),
        },
        ("GET", "/stats") => stats(DEFAULT_TENANT),
        ("GET", path) => match path
            .strip_prefix("/tenant/")
            .and_then(|rest| rest.strip_suffix("/stats"))
        {
            Some(tenant) if !tenant.is_empty() && !tenant.contains('/') => stats(tenant),
            _ => legacy(Err(WireError::unknown_endpoint())),
        },
        ("POST", "/query") => query(DEFAULT_TENANT),
        ("POST", path) => match path
            .strip_prefix("/tenant/")
            .and_then(|rest| rest.strip_suffix("/query"))
        {
            Some(tenant) if !tenant.is_empty() && !tenant.contains('/') => query(tenant),
            _ => legacy(Err(WireError::unknown_endpoint())),
        },
        _ => legacy(Err(WireError::unknown_endpoint())),
    }
}

/// Executes one typed request against the routers — the single handler
/// set behind both wire surfaces.
fn dispatch(
    wire: WireRequest,
    queue: &AdmissionQueue,
    router: &SnapshotRouter,
    ingest: &IngestRouter,
) -> Result<WireResponse, WireError> {
    match wire {
        WireRequest::Query { tenant, body } => do_query(&tenant, &body, queue, router),
        WireRequest::Ingest { tenant, body } => do_ingest(&tenant, &body, router, ingest),
        WireRequest::TenantStats { tenant } => do_stats(&tenant, queue, router, ingest),
    }
}

/// Builds `tenant`'s observability snapshot as deterministic JSON
/// (fixed key order, integer counters): the snapshot epoch, the
/// interventional sweep-cache counters (`enabled:false` zeros when
/// `UNICORN_SWEEP_CACHE` disables caching), its accounted resident
/// bytes, the admission queue's coalescing counters, and the tenant's
/// ingest/drift counters (zeros when the tenant has no ingest
/// endpoint). Counter values are monotone but timing-dependent — the
/// smoke golden therefore pins the shape via the query path, not this
/// endpoint's body.
fn do_stats(
    tenant: &str,
    queue: &AdmissionQueue,
    router: &SnapshotRouter,
    ingest: &IngestRouter,
) -> Result<WireResponse, WireError> {
    let Some(cell) = router.get(tenant) else {
        return Err(WireError::unknown_tenant());
    };
    let snap = cell.load();
    let sweep = match snap.engine.sweep_cache() {
        Some(c) => Json::Obj(vec![
            ("enabled".into(), Json::Bool(true)),
            ("hits".into(), Json::Num(c.stats().hits() as f64)),
            ("misses".into(), Json::Num(c.stats().misses() as f64)),
            ("evictions".into(), Json::Num(c.evictions() as f64)),
            ("entries".into(), Json::Num(c.len() as f64)),
            ("approx_bytes".into(), Json::Num(c.approx_bytes() as f64)),
        ]),
        None => Json::Obj(vec![
            ("enabled".into(), Json::Bool(false)),
            ("hits".into(), Json::Num(0.0)),
            ("misses".into(), Json::Num(0.0)),
            ("evictions".into(), Json::Num(0.0)),
            ("entries".into(), Json::Num(0.0)),
            ("approx_bytes".into(), Json::Num(0.0)),
        ]),
    };
    let endpoint = ingest.get(tenant);
    let (rows, flushes, dropped) = endpoint.as_ref().map_or((0, 0, 0), |e| {
        (e.queue.rows(), e.queue.flushes(), e.queue.dropped())
    });
    let (triggers, last_trigger_epoch) = endpoint.as_ref().map_or((0, 0), |e| {
        (e.drift.triggers(), e.drift.last_trigger_epoch())
    });
    let body = Json::Obj(vec![
        ("tenant".into(), Json::Str(tenant.into())),
        ("epoch".into(), Json::Num(snap.epoch as f64)),
        ("sweep_cache".into(), sweep),
        (
            "admission".into(),
            Json::Obj(vec![
                ("submitted".into(), Json::Num(queue.submitted() as f64)),
                ("batches".into(), Json::Num(queue.batches() as f64)),
            ]),
        ),
        (
            "ingest".into(),
            Json::Obj(vec![
                ("rows".into(), Json::Num(rows as f64)),
                ("flushes".into(), Json::Num(flushes as f64)),
                ("dropped".into(), Json::Num(dropped as f64)),
            ]),
        ),
        (
            "drift".into(),
            Json::Obj(vec![
                ("triggers".into(), Json::Num(triggers as f64)),
                (
                    "last_trigger_epoch".into(),
                    Json::Num(last_trigger_epoch as f64),
                ),
            ]),
        ),
    ]);
    Ok(WireResponse::Stats(body))
}

/// Parses and submits one query against `tenant`, blocking on the
/// batcher's reply.
fn do_query(
    tenant: &str,
    body: &str,
    queue: &AdmissionQueue,
    router: &SnapshotRouter,
) -> Result<WireResponse, WireError> {
    // Names are stable across epochs of one tenant; the batch's snapshot
    // decides the answering epoch. The lookup also rejects unknown
    // tenants before their job would be dropped on the batcher floor.
    let Some(cell) = router.get(tenant) else {
        return Err(WireError::unknown_tenant());
    };
    let names = cell.load().names.clone();
    let query = parse_request(body, &names).map_err(WireError::bad_request)?;
    let served = queue
        .submit(tenant, query)
        .recv()
        .map_err(|_| WireError::shutting_down())?;
    Ok(WireResponse::Answer {
        epoch: served.epoch,
        answer: served.answer,
        names,
    })
}

/// Validates one ingest submission against `tenant`'s snapshot width and
/// offers it to the tenant's bounded buffer. The ack is decided entirely
/// at buffer admission — deterministic given the buffer's occupancy — and
/// a fully shed submission is explicit backpressure, not silence.
fn do_ingest(
    tenant: &str,
    body: &str,
    router: &SnapshotRouter,
    ingest: &IngestRouter,
) -> Result<WireResponse, WireError> {
    let Some(cell) = router.get(tenant) else {
        return Err(WireError::unknown_tenant());
    };
    let width = cell.load().names.len();
    let Some(endpoint) = ingest.get(tenant) else {
        return Err(WireError::new(
            ErrorCode::UnknownEndpoint,
            "ingest not enabled for this tenant",
        ));
    };
    let rows = parse_ingest(body, width).map_err(WireError::bad_request)?;
    let ack = endpoint.queue.push_rows(rows);
    if ack.accepted == 0 && ack.dropped > 0 {
        return Err(WireError::new(
            ErrorCode::Backpressure,
            "ingest buffer full",
        ));
    }
    Ok(WireResponse::Ingested {
        accepted: ack.accepted,
        dropped: ack.dropped,
    })
}

/// Parses the request line + headers + Content-Length body of one
/// HTTP/1.1 request. `Ok(None)` means the connection ended cleanly (EOF
/// or idle timeout) before any request bytes arrived — the persistent
/// connection's normal end of life.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(at) = find_header_end(&buf) {
            break at;
        }
        if buf.len() > 1 << 20 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if buf.is_empty() => {
                return match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Ok(None),
                    _ => Err(e),
                };
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");

    let mut content_length = 0usize;
    let mut keep_alive = !version.eq_ignore_ascii_case("HTTP/1.0");
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            let k = k.trim();
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            } else if k.eq_ignore_ascii_case("connection") {
                let v = v.trim();
                if v.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if v.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Some(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
        keep_alive,
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Service Unavailable",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A one-shot HTTP client for the smoke path and tests: sends `body` to
/// `POST path` (or a bodiless `GET path`) and returns `(status, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: unicornd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, reply_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    Ok((status, reply_body.to_string()))
}

/// A keep-alive HTTP client: sends every `(method, path, body)` request
/// over **one** persistent connection, reading each response by its
/// `Content-Length` before issuing the next, and returns the
/// `(status, body)` pairs in order. Exercises the server's connection
/// reuse — the smoke path and tests assert multiple round-trips without
/// reconnecting.
pub fn http_request_many(
    addr: SocketAddr,
    requests: &[(&str, &str, Option<&str>)],
) -> std::io::Result<Vec<(u16, String)>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut replies = Vec::with_capacity(requests.len());
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    for (method, path, body) in requests {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: unicornd\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;

        // Read one response: headers to \r\n\r\n, then Content-Length
        // bytes of body. Anything past the body stays in `pending` for
        // the next round-trip.
        let header_end = loop {
            if let Some(at) = find_header_end(&pending) {
                break at;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            pending.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&pending[..header_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
        let mut content_length = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap_or(0);
                }
            }
        }
        pending.drain(..header_end + 4);
        while pending.len() < content_length {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            pending.extend_from_slice(&chunk[..n]);
        }
        let body_bytes: Vec<u8> = pending.drain(..content_length).collect();
        replies.push((status, String::from_utf8_lossy(&body_bytes).into_owned()));
    }
    Ok(replies)
}
