//! The HTTP front of `unicornd`: `std::net` TCP, one thread per
//! connection, a single batcher thread behind the admission queue.
//!
//! The daemon deliberately speaks a minimal HTTP/1.1 subset (no
//! keep-alive, no chunked bodies): the workspace has no registry access,
//! and the persistent `unicorn_exec::Executor` inside the engine is the
//! scheduler that matters — connection threads only parse, enqueue, and
//! block on their reply channel.
//!
//! Endpoints:
//!
//! * `GET /health` — `{"ok":true,"epoch":N}` from the current snapshot.
//! * `POST /query` — a protocol request body (see [`crate::protocol`]);
//!   replies `{"epoch":N,"answer":{...}}`, or HTTP 400 with
//!   `{"error":"..."}` on a malformed request.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use unicorn_core::SnapshotCell;

use crate::admission::{run_batcher, AdmissionQueue};
use crate::protocol::{parse_request, render_error, render_reply};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 for an OS-assigned loopback port.
    pub addr: String,
    /// Admission window: how long a batch holds the door open for
    /// concurrent requests after the first arrival. Zero disables
    /// coalescing delay (each batch takes whatever is already queued).
    pub window: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_millis(2),
        }
    }
}

/// A running daemon: accept loop + batcher, both joined on shutdown.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    snapshots: Arc<SnapshotCell>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the batcher and the accept loop, and returns. The
    /// server serves whatever snapshot the cell currently holds;
    /// publishing to the cell flips the model generation live.
    pub fn start(snapshots: Arc<SnapshotCell>, opts: &ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let queue = AdmissionQueue::new();
        let stop = Arc::new(AtomicBool::new(false));

        let batcher_thread = {
            let queue = Arc::clone(&queue);
            let snapshots = Arc::clone(&snapshots);
            let window = opts.window;
            std::thread::Builder::new()
                .name("unicornd-batcher".into())
                .spawn(move || run_batcher(&queue, &snapshots, window))?
        };

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let snapshots = Arc::clone(&snapshots);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("unicornd-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let queue = Arc::clone(&queue);
                        let snapshots = Arc::clone(&snapshots);
                        // One thread per connection: parse, enqueue,
                        // block on the reply channel, write, close.
                        let spawned = std::thread::Builder::new()
                            .name("unicornd-conn".into())
                            .spawn(move || handle_connection(stream, &queue, &snapshots));
                        drop(spawned);
                    }
                })?
        };

        Ok(Self {
            addr,
            queue,
            snapshots,
            stop,
            accept_thread: Some(accept_thread),
            batcher_thread: Some(batcher_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot cell this server reads — publish here to flip epochs.
    pub fn snapshots(&self) -> &Arc<SnapshotCell> {
        &self.snapshots
    }

    /// The admission queue (coalescing counters for tests/benches).
    pub fn queue(&self) -> &Arc<AdmissionQueue> {
        &self.queue
    }

    /// Stops accepting, drains the batcher, joins both threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

/// Reads one HTTP request, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, queue: &AdmissionQueue, snapshots: &SnapshotCell) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok((method, path, body)) = read_request(&mut stream) else {
        let _ = write_response(&mut stream, 400, &render_error("malformed HTTP request"));
        return;
    };
    match (method.as_str(), path.as_str()) {
        ("GET", "/health") => {
            let epoch = snapshots.load().epoch;
            let _ = write_response(
                &mut stream,
                200,
                &format!("{{\"ok\":true,\"epoch\":{epoch}}}"),
            );
        }
        ("POST", "/query") => {
            // Names are stable across epochs of one system; the batch's
            // snapshot decides the answering epoch.
            let names = snapshots.load().names.clone();
            match parse_request(&body, &names) {
                Err(e) => {
                    let _ = write_response(&mut stream, 400, &render_error(&e));
                }
                Ok(query) => match queue.submit(query).recv() {
                    Ok(served) => {
                        let reply = render_reply(served.epoch, &served.answer, &names);
                        let _ = write_response(&mut stream, 200, &reply);
                    }
                    Err(_) => {
                        let _ =
                            write_response(&mut stream, 503, &render_error("server shutting down"));
                    }
                },
            }
        }
        _ => {
            let _ = write_response(&mut stream, 404, &render_error("no such endpoint"));
        }
    }
}

/// Parses the request line + headers + Content-Length body of one
/// HTTP/1.1 request. Returns `(method, path, body)`.
fn read_request(stream: &mut TcpStream) -> std::io::Result<(String, String, String)> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(at) = find_header_end(&buf) {
            break at;
        }
        if buf.len() > 1 << 20 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((method, path, String::from_utf8_lossy(&body).into_owned()))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Service Unavailable",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A one-shot HTTP client for the smoke path and tests: sends `body` to
/// `POST path` (or a bodiless `GET path`) and returns `(status, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: unicornd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, reply_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    Ok((status, reply_body.to_string()))
}
