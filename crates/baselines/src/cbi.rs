//! CBI — statistical debugging (Song & Lu 2014, after Liblit et al.):
//! option-value predicates ranked by the *Importance* score, the harmonic
//! mean of `Increase(P)` (how much more likely failure is when `P` holds)
//! and a log-scaled failure coverage term.

use std::time::Instant;

use unicorn_systems::{Config, Fault, FaultCatalog, Simulator};

use crate::common::{
    probe_fixes, sample_labeled, BaselineOutcome, DebugBudget, Debugger, LabeledSamples,
};

/// The CBI debugger.
#[derive(Debug, Clone, Default)]
pub struct Cbi {
    /// How many top predicates become the diagnosis.
    pub top_k: usize,
}

impl Cbi {
    /// CBI with the paper-typical top-5 diagnosis size.
    pub fn new() -> Self {
        Self { top_k: 5 }
    }
}

/// One scored predicate `option == value-index`.
#[derive(Debug, Clone)]
struct Predicate {
    option: usize,
    value_idx: usize,
    importance: f64,
}

fn rank_predicates(sim: &Simulator, samples: &LabeledSamples, top_k: usize) -> Vec<Predicate> {
    let n_fail_total = samples.failing.iter().filter(|&&f| f).count().max(1) as f64;
    let context = n_fail_total / samples.failing.len() as f64;
    let mut preds = Vec::new();
    for opt in 0..sim.model.n_options() {
        let grid = &sim.model.space.option(opt).values;
        for (vi, &v) in grid.iter().enumerate() {
            let mut f = 0usize;
            let mut s = 0usize;
            for (c, &fail) in samples.configs.iter().zip(&samples.failing) {
                if sim.model.space.option(opt).nearest_index(c.values[opt])
                    == sim.model.space.option(opt).nearest_index(v)
                {
                    if fail {
                        f += 1;
                    } else {
                        s += 1;
                    }
                }
            }
            if f == 0 {
                continue;
            }
            let failure = f as f64 / (f + s) as f64;
            let increase = failure - context;
            if increase <= 0.0 {
                continue;
            }
            let coverage = (1.0 + f as f64).ln() / (1.0 + n_fail_total).ln();
            let importance = 2.0 / (1.0 / increase + 1.0 / coverage);
            preds.push(Predicate {
                option: opt,
                value_idx: vi,
                importance,
            });
        }
    }
    preds.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .expect("NaN importance")
    });
    // Deduplicate by option, keeping each option's strongest predicate.
    let mut seen = Vec::new();
    preds.retain(|p| {
        if seen.contains(&p.option) {
            false
        } else {
            seen.push(p.option);
            true
        }
    });
    preds.truncate(top_k);
    preds
}

/// The "safest" value of an option: the grid value with the lowest failure
/// rate among the labeled samples (ties → most frequent among passes).
fn safest_value(sim: &Simulator, samples: &LabeledSamples, opt: usize) -> f64 {
    let grid = &sim.model.space.option(opt).values;
    let mut best = (grid[0], f64::INFINITY);
    for &v in grid {
        let vi = sim.model.space.option(opt).nearest_index(v);
        let mut f = 0usize;
        let mut total = 0usize;
        for (c, &fail) in samples.configs.iter().zip(&samples.failing) {
            if sim.model.space.option(opt).nearest_index(c.values[opt]) == vi {
                total += 1;
                if fail {
                    f += 1;
                }
            }
        }
        if total == 0 {
            continue;
        }
        let rate = f as f64 / total as f64;
        if rate < best.1 {
            best = (v, rate);
        }
    }
    best.0
}

impl Debugger for Cbi {
    fn name(&self) -> &'static str {
        "CBI"
    }

    fn debug(
        &self,
        sim: &Simulator,
        fault: &Fault,
        catalog: &FaultCatalog,
        budget: &DebugBudget,
        seed: u64,
    ) -> BaselineOutcome {
        let start = Instant::now();
        let samples = sample_labeled(sim, fault, catalog, budget.n_samples, seed);
        let preds = rank_predicates(sim, &samples, self.top_k.max(1));
        let diagnosed: Vec<usize> = preds.iter().map(|p| p.option).collect();

        // Fix candidates: greedily re-tune the top-1, top-2, … predicates
        // of the fault configuration to their safest values.
        let mut candidates: Vec<Config> = Vec::new();
        let mut cumulative = fault.config.clone();
        for p in &preds {
            let fault_vi = sim
                .model
                .space
                .option(p.option)
                .nearest_index(fault.config.values[p.option]);
            // Only meaningful when the fault actually matches the predicate.
            let _ = fault_vi == p.value_idx;
            cumulative.values[p.option] = safest_value(sim, &samples, p.option);
            candidates.push(cumulative.clone());
        }
        probe_fixes(
            sim,
            fault,
            catalog,
            &candidates,
            budget.n_probes,
            budget.n_samples,
            diagnosed,
            start,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::fixtures::{latency_fault, x264_fixture};

    #[test]
    fn cbi_improves_the_fault() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let out = Cbi::new().debug(
            &sim,
            fault,
            &catalog,
            &DebugBudget {
                n_samples: 80,
                n_probes: 6,
            },
            5,
        );
        let o = fault.objectives[0];
        let before = fault.true_objectives[o];
        let after = sim.true_objectives(&out.best_config)[o];
        assert!(after <= before, "{after} !<= {before}");
        assert!(out.n_measurements <= 80 + 6 + 1);
    }

    #[test]
    fn predicates_rank_the_planted_cause() {
        // Synthetic labeled set where option 3 value-index 2 perfectly
        // predicts failure.
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let mut samples = sample_labeled(&sim, fault, &catalog, 60, 7);
        let grid = sim.model.space.option(3).values.clone();
        for (c, fail) in samples.configs.iter_mut().zip(samples.failing.iter_mut()) {
            *fail = sim.model.space.option(3).nearest_index(c.values[3]) == 2;
            if *fail {
                c.values[3] = grid[2];
            }
        }
        // Ensure at least one failure exists.
        samples.configs[0].values[3] = grid[2];
        samples.failing[0] = true;
        let preds = rank_predicates(&sim, &samples, 3);
        assert_eq!(preds[0].option, 3, "{preds:?}");
        assert_eq!(preds[0].value_idx, 2);
    }
}
