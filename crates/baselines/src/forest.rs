//! Random-forest regression: bagged CART trees with feature subsampling —
//! the surrogate model of SMAC (Hutter et al. 2011) and of our
//! PESMO-style multi-objective optimizer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{DecisionTree, TreeOptions};

/// Forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestOptions {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree options (`mtry` defaults to √p when `None`).
    pub tree: TreeOptions,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestOptions {
    fn default() -> Self {
        Self {
            n_trees: 24,
            tree: TreeOptions::default(),
            seed: 0xF0535,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits the forest on row-major features and targets.
    pub fn fit(x: &[Vec<f64>], y: &[f64], opts: &ForestOptions) -> Self {
        assert!(!x.is_empty(), "empty training set");
        let p = x[0].len();
        let mtry = opts
            .tree
            .mtry
            .unwrap_or(((p as f64).sqrt().ceil()) as usize);
        let tree_opts = TreeOptions {
            mtry: Some(mtry.max(1)),
            ..opts.tree.clone()
        };
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let n = x.len();
        let trees = (0..opts.n_trees)
            .map(|_| {
                // Bootstrap resample.
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let bx: Vec<Vec<f64>> = rows.iter().map(|&r| x[r].clone()).collect();
                let by: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
                DecisionTree::fit(&bx, &by, &tree_opts, &mut rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean prediction across trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Mean and variance of per-tree predictions (SMAC's uncertainty).
    pub fn predict_with_uncertainty(&self, row: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(row)).collect();
        let m = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - m) * (p - m)).sum::<f64>() / preds.len() as f64;
        (m, var)
    }

    /// Prediction of one specific tree (Thompson-style sampling for the
    /// multi-objective acquisition).
    pub fn predict_tree(&self, tree_idx: usize, row: &[f64]) -> f64 {
        self.trees[tree_idx % self.trees.len()].predict(row)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Expected improvement of minimizing a Gaussian-approximated surrogate at
/// `row` over the incumbent `best`: `EI = σ·(z·Φ(z) + φ(z))` with
/// `z = (best − μ)/σ`.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sigma;
    sigma * (z * unicorn_stats::dist::normal_cdf(z) + unicorn_stats::dist::normal_pdf(z))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 7) as f64 / 7.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| (4.0 * r[0]).sin() + r[1]).collect();
        (x, y)
    }

    #[test]
    fn forest_fits_smooth_function() {
        let (x, y) = wavy_data(300);
        let f = RandomForest::fit(&x, &y, &ForestOptions::default());
        let mut err = 0.0;
        for (r, &t) in x.iter().zip(&y) {
            err += (f.predict(r) - t).abs();
        }
        err /= x.len() as f64;
        assert!(err < 0.25, "mean abs error {err}");
    }

    #[test]
    fn uncertainty_higher_off_distribution() {
        let (x, y) = wavy_data(200);
        let f = RandomForest::fit(&x, &y, &ForestOptions::default());
        let (_, var_in) = f.predict_with_uncertainty(&[0.5, 0.3]);
        let (_, var_out) = f.predict_with_uncertainty(&[5.0, -3.0]);
        // Out-of-range points at minimum do not reduce variance.
        assert!(var_out >= 0.0 && var_in >= 0.0);
    }

    #[test]
    fn ei_prefers_low_mean_and_high_variance() {
        let good = expected_improvement(0.2, 0.1, 1.0);
        let bad = expected_improvement(2.0, 0.1, 1.0);
        assert!(good > bad);
        let certain = expected_improvement(1.0, 0.0, 1.0);
        let uncertain = expected_improvement(1.0, 1.0, 1.0);
        assert!(uncertain > certain);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = wavy_data(100);
        let a = RandomForest::fit(&x, &y, &ForestOptions::default());
        let b = RandomForest::fit(&x, &y, &ForestOptions::default());
        assert_eq!(a.predict(&x[3]), b.predict(&x[3]));
    }
}
