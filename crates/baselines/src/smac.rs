//! SMAC (Hutter et al., LION'11): sequential model-based algorithm
//! configuration — a random-forest surrogate over configurations, expected
//! improvement acquisition over a local + random candidate pool, and
//! interleaved random picks for theoretical convergence.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unicorn_systems::{Config, Fault, FaultCatalog, Simulator};

use crate::common::{changed_options, meets_goal, BaselineOutcome, DebugBudget};
use crate::forest::{expected_improvement, ForestOptions, RandomForest};

/// SMAC hyperparameters.
#[derive(Debug, Clone)]
pub struct SmacOptions {
    /// Initial random design size.
    pub n_init: usize,
    /// Total measurement budget (including the initial design).
    pub budget: usize,
    /// Candidates scored per iteration.
    pub n_candidates: usize,
    /// Every k-th pick is uniformly random (SMAC's interleaving).
    pub random_interleave: usize,
    /// Forest settings.
    pub forest: ForestOptions,
    /// Seed.
    pub seed: u64,
}

impl Default for SmacOptions {
    fn default() -> Self {
        Self {
            n_init: 15,
            budget: 60,
            n_candidates: 40,
            random_interleave: 9,
            forest: ForestOptions {
                n_trees: 16,
                ..Default::default()
            },
            seed: 0x5AC,
        }
    }
}

/// Outcome of a SMAC run.
#[derive(Debug, Clone)]
pub struct SmacOutcome {
    /// Best configuration.
    pub best_config: Config,
    /// Best measured objective.
    pub best_value: f64,
    /// Best-so-far after every measurement.
    pub history: Vec<f64>,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
}

/// Minimizes `objective_idx` of the simulator.
pub fn smac_optimize(sim: &Simulator, objective_idx: usize, opts: &SmacOptions) -> SmacOutcome {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut configs: Vec<Config> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut history = Vec::new();

    let measure =
        |c: &Config, xs: &mut Vec<Vec<f64>>, configs: &mut Vec<Config>, ys: &mut Vec<f64>| {
            let s = sim.measure(c);
            xs.push(c.values.clone());
            configs.push(c.clone());
            ys.push(s.objectives[objective_idx]);
        };

    for _ in 0..opts.n_init.min(opts.budget) {
        let c = sim.model.space.random_config(&mut rng);
        measure(&c, &mut xs, &mut configs, &mut ys);
        history.push(best(&ys));
    }

    let mut iter = 0usize;
    while ys.len() < opts.budget {
        iter += 1;
        let incumbent_idx = argmin(&ys);
        let incumbent = configs[incumbent_idx].clone();
        let next = if opts.random_interleave > 0 && iter.is_multiple_of(opts.random_interleave) {
            sim.model.space.random_config(&mut rng)
        } else {
            let forest = RandomForest::fit(
                &xs,
                &ys,
                &ForestOptions {
                    seed: opts.seed ^ iter as u64,
                    ..opts.forest.clone()
                },
            );
            // Candidate pool: local neighbours of the incumbent + random.
            let mut pool: Vec<Config> = sim.model.space.neighbors(&incumbent);
            while pool.len() < opts.n_candidates {
                pool.push(sim.model.space.random_config(&mut rng));
            }
            let best_y = ys[incumbent_idx];
            pool.into_iter()
                .max_by(|a, b| {
                    let (ma, va) = forest.predict_with_uncertainty(&a.values);
                    let (mb, vb) = forest.predict_with_uncertainty(&b.values);
                    expected_improvement(ma, va, best_y)
                        .partial_cmp(&expected_improvement(mb, vb, best_y))
                        .expect("NaN EI")
                })
                .expect("non-empty pool")
        };
        measure(&next, &mut xs, &mut configs, &mut ys);
        history.push(best(&ys));
    }

    let i = argmin(&ys);
    SmacOutcome {
        best_config: configs[i].clone(),
        best_value: ys[i],
        history,
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// SMAC used as a debugger (the §5 case study and Tables 2a/2b baselines):
/// optimize the violated objective, report the changed options as the
/// diagnosis.
pub fn smac_debug(
    sim: &Simulator,
    fault: &Fault,
    catalog: &FaultCatalog,
    budget: &DebugBudget,
    seed: u64,
) -> BaselineOutcome {
    let start = Instant::now();
    let objective = fault.objectives[0];
    let out = smac_optimize(
        sim,
        objective,
        &SmacOptions {
            n_init: (budget.n_samples / 4).max(5),
            budget: budget.n_samples + budget.n_probes,
            seed,
            ..Default::default()
        },
    );
    let s = sim.measure(&out.best_config);
    let fixed = meets_goal(fault, catalog, &s.objectives);
    BaselineOutcome {
        diagnosed_options: changed_options(sim, &fault.config, &out.best_config),
        best_config: out.best_config,
        best_objectives: s.objectives,
        fixed,
        n_measurements: budget.n_samples + budget.n_probes + 1,
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

fn best(ys: &[f64]) -> f64 {
    ys.iter().copied().fold(f64::INFINITY, f64::min)
}

fn argmin(ys: &[f64]) -> usize {
    ys.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicorn_systems::{Environment, Hardware, SubjectSystem};

    #[test]
    fn smac_beats_its_own_random_initialization() {
        let sim = Simulator::new(
            SubjectSystem::Xception.build(),
            Environment::on(Hardware::Tx2),
            31,
        );
        let out = smac_optimize(
            &sim,
            0,
            &SmacOptions {
                n_init: 10,
                budget: 30,
                ..Default::default()
            },
        );
        assert_eq!(out.history.len(), 30);
        // Best-so-far is monotone and the final value beats (or equals)
        // the initial design's best.
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(out.best_value <= out.history[9]);
    }

    #[test]
    fn smac_debug_reports_changes() {
        let (sim, catalog) = crate::common::fixtures::x264_fixture();
        let fault = crate::common::fixtures::latency_fault(&catalog);
        let out = smac_debug(
            &sim,
            fault,
            &catalog,
            &DebugBudget {
                n_samples: 25,
                n_probes: 5,
            },
            3,
        );
        let o = fault.objectives[0];
        assert!(sim.true_objectives(&out.best_config)[o] <= fault.true_objectives[o]);
        // SMAC changes many options relative to the fault (the paper's
        // criticism: it flips unrelated options).
        assert!(!out.diagnosed_options.is_empty());
    }
}
