//! EnCore (Zhang et al., ASPLOS'14): learns correlational rules about
//! misconfigurations from labeled environments. We mine single-option and
//! pairwise value rules with support/confidence thresholds, flag the fault
//! configuration's rule violations, and repair by rewriting the matched
//! values to their highest-confidence passing alternatives.

use std::time::Instant;

use unicorn_systems::{Config, Fault, FaultCatalog, Simulator};

use crate::common::{
    probe_fixes, sample_labeled, BaselineOutcome, DebugBudget, Debugger, LabeledSamples,
};

/// The EnCore baseline.
#[derive(Debug, Clone)]
pub struct Encore {
    /// Minimum rule support (matching samples).
    pub min_support: usize,
    /// Minimum failure confidence for a rule to fire.
    pub min_confidence: f64,
    /// Diagnosis size cap.
    pub top_k: usize,
}

impl Default for Encore {
    fn default() -> Self {
        Self {
            min_support: 4,
            min_confidence: 0.5,
            top_k: 5,
        }
    }
}

/// A mined failure rule over one or two option-value equalities.
#[derive(Debug, Clone)]
struct Rule {
    options: Vec<(usize, usize)>, // (option, value index)
    confidence: f64,
    support: usize,
}

fn value_idx(sim: &Simulator, c: &Config, opt: usize) -> usize {
    sim.model.space.option(opt).nearest_index(c.values[opt])
}

fn mine_rules(
    sim: &Simulator,
    samples: &LabeledSamples,
    fault: &Fault,
    opts: &Encore,
) -> Vec<Rule> {
    let overall_fail =
        samples.failing.iter().filter(|&&f| f).count() as f64 / samples.failing.len() as f64;
    let mut rules = Vec::new();
    let n_options = sim.model.n_options();

    // Single-option rules restricted to the fault's own values (EnCore
    // checks the *current* configuration against learned rules).
    for opt in 0..n_options {
        let fv = value_idx(sim, &fault.config, opt);
        let mut f = 0usize;
        let mut total = 0usize;
        for (c, &fail) in samples.configs.iter().zip(&samples.failing) {
            if value_idx(sim, c, opt) == fv {
                total += 1;
                if fail {
                    f += 1;
                }
            }
        }
        if total >= opts.min_support {
            let conf = f as f64 / total as f64;
            if conf >= opts.min_confidence.max(1.5 * overall_fail) {
                rules.push(Rule {
                    options: vec![(opt, fv)],
                    confidence: conf,
                    support: total,
                });
            }
        }
    }

    // Pairwise rules among the strongest single options (correlation
    // information across options is EnCore's differentiator).
    let mut singles: Vec<usize> = rules.iter().map(|r| r.options[0].0).collect();
    if singles.len() < 4 {
        // Seed with a few more candidate options by marginal failure rate.
        for opt in 0..n_options {
            if singles.len() >= 6 {
                break;
            }
            if !singles.contains(&opt) {
                singles.push(opt);
            }
        }
    }
    for (i, &o1) in singles.iter().enumerate() {
        for &o2 in singles.iter().skip(i + 1) {
            let v1 = value_idx(sim, &fault.config, o1);
            let v2 = value_idx(sim, &fault.config, o2);
            let mut f = 0usize;
            let mut total = 0usize;
            for (c, &fail) in samples.configs.iter().zip(&samples.failing) {
                if value_idx(sim, c, o1) == v1 && value_idx(sim, c, o2) == v2 {
                    total += 1;
                    if fail {
                        f += 1;
                    }
                }
            }
            if total >= opts.min_support.min(2) && total > 0 {
                let conf = f as f64 / total as f64;
                if conf >= opts.min_confidence {
                    rules.push(Rule {
                        options: vec![(o1, v1), (o2, v2)],
                        confidence: conf,
                        support: total,
                    });
                }
            }
        }
    }

    rules.sort_by(|a, b| {
        (b.confidence, b.support)
            .partial_cmp(&(a.confidence, a.support))
            .expect("NaN rule score")
    });
    rules
}

/// Highest passing-rate value for an option.
fn best_passing_value(sim: &Simulator, samples: &LabeledSamples, opt: usize) -> f64 {
    let grid = &sim.model.space.option(opt).values;
    let mut best = (grid[0], -1.0);
    for &v in grid {
        let vi = sim.model.space.option(opt).nearest_index(v);
        let mut pass = 0usize;
        let mut total = 0usize;
        for (c, &fail) in samples.configs.iter().zip(&samples.failing) {
            if value_idx(sim, c, opt) == vi {
                total += 1;
                if !fail {
                    pass += 1;
                }
            }
        }
        if total > 0 {
            let rate = pass as f64 / total as f64;
            if rate > best.1 {
                best = (v, rate);
            }
        }
    }
    best.0
}

impl Debugger for Encore {
    fn name(&self) -> &'static str {
        "EnCore"
    }

    fn debug(
        &self,
        sim: &Simulator,
        fault: &Fault,
        catalog: &FaultCatalog,
        budget: &DebugBudget,
        seed: u64,
    ) -> BaselineOutcome {
        let start = Instant::now();
        let samples = sample_labeled(sim, fault, catalog, budget.n_samples, seed);
        let rules = mine_rules(sim, &samples, fault, self);

        // Diagnosis: options of the firing rules, strongest first.
        let mut diagnosed = Vec::new();
        for r in &rules {
            for &(o, _) in &r.options {
                if !diagnosed.contains(&o) {
                    diagnosed.push(o);
                }
            }
            if diagnosed.len() >= self.top_k {
                break;
            }
        }
        diagnosed.truncate(self.top_k);

        // Fixes: cumulative rewrites of the diagnosed options to their
        // best passing values.
        let mut candidates: Vec<Config> = Vec::new();
        let mut cumulative = fault.config.clone();
        for &o in &diagnosed {
            cumulative.values[o] = best_passing_value(sim, &samples, o);
            candidates.push(cumulative.clone());
        }
        probe_fixes(
            sim,
            fault,
            catalog,
            &candidates,
            budget.n_probes,
            budget.n_samples,
            diagnosed,
            start,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::fixtures::{latency_fault, x264_fixture};

    #[test]
    fn encore_improves_the_fault() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let out = Encore::default().debug(
            &sim,
            fault,
            &catalog,
            &DebugBudget {
                n_samples: 80,
                n_probes: 6,
            },
            9,
        );
        let o = fault.objectives[0];
        assert!(sim.true_objectives(&out.best_config)[o] <= fault.true_objectives[o]);
        assert!(!out.diagnosed_options.is_empty());
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let samples = sample_labeled(&sim, fault, &catalog, 60, 17);
        let rules = mine_rules(&sim, &samples, fault, &Encore::default());
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }
}
