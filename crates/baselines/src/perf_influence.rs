//! Performance-influence models (Siegmund et al., FSE'15) — the incumbent
//! regression approach the paper critiques in §2: stepwise polynomial
//! regression from configuration options to an objective. Used by the
//! Fig 4/5 and Fig 21/22 transferability analyses.

use unicorn_stats::regression::{stepwise_fit, PolyModel, StepwiseOptions, Term};
use unicorn_stats::StatsError;
use unicorn_systems::Dataset;

/// A fitted performance-influence model for one objective.
#[derive(Debug, Clone)]
pub struct InfluenceModel {
    /// The underlying polynomial model (over option columns only).
    pub model: PolyModel,
    /// Option names, aligned with term variable indices.
    pub option_names: Vec<String>,
}

impl InfluenceModel {
    /// Fits a model on a dataset's option columns against objective
    /// `obj_idx`, with the standard stepwise forward/backward protocol.
    pub fn fit(data: &Dataset, obj_idx: usize, opts: &StepwiseOptions) -> Result<Self, StatsError> {
        let options = &data.columns[..data.n_options];
        let y = data.objective_column(obj_idx);
        let model = stepwise_fit(options, y, opts)?;
        Ok(Self {
            model,
            option_names: data.names[..data.n_options].to_vec(),
        })
    }

    /// Non-intercept terms.
    pub fn terms(&self) -> Vec<&Term> {
        self.model.predictors()
    }

    /// Renders a term with option names (`A ⊗ B` for interactions).
    pub fn render_term(&self, term: &Term) -> String {
        term.render(&|i| self.option_names[i].clone())
    }

    /// MAPE of this model on (possibly other-environment) data.
    pub fn mape_on(&self, data: &Dataset, obj_idx: usize) -> f64 {
        let options = &data.columns[..data.n_options];
        self.model.mape_on(options, data.objective_column(obj_idx))
    }

    /// Terms common to two models (the Fig 4 "common terms" count).
    pub fn common_terms(&self, other: &InfluenceModel) -> Vec<Term> {
        self.terms()
            .into_iter()
            .filter(|t| other.terms().iter().any(|o| o == t))
            .cloned()
            .collect()
    }

    /// Coefficient differences on common terms, source → target (Fig 5).
    pub fn coefficient_diffs(&self, other: &InfluenceModel) -> Vec<(Term, f64)> {
        self.common_terms(other)
            .into_iter()
            .map(|t| {
                let a = self.model.coefficient(&t).unwrap_or(0.0);
                let b = other.model.coefficient(&t).unwrap_or(0.0);
                (t, b - a)
            })
            .collect()
    }

    /// Spearman rank correlation between the two models' coefficients on
    /// the union of their terms (the Fig 4 stability statistic).
    pub fn coefficient_rank_correlation(&self, other: &InfluenceModel) -> f64 {
        let mut union: Vec<Term> = self.terms().into_iter().cloned().collect();
        for t in other.terms() {
            if !union.contains(t) {
                union.push(t.clone());
            }
        }
        if union.len() < 2 {
            return 1.0;
        }
        let a: Vec<f64> = union
            .iter()
            .map(|t| self.model.coefficient(t).unwrap_or(0.0))
            .collect();
        let b: Vec<f64> = union
            .iter()
            .map(|t| other.model.coefficient(t).unwrap_or(0.0))
            .collect();
        unicorn_stats::spearman(&a, &b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicorn_systems::{generate, Environment, Hardware, Simulator, SubjectSystem};

    fn dataset(hw: Hardware, n: usize, seed: u64) -> (Simulator, Dataset) {
        let sim = Simulator::new(SubjectSystem::X264.build(), Environment::on(hw), 2);
        let ds = generate(&sim, n, seed);
        (sim, ds)
    }

    fn small_opts() -> StepwiseOptions {
        StepwiseOptions {
            max_terms: 12,
            ..Default::default()
        }
    }

    #[test]
    fn influence_model_fits_training_environment() {
        let (_, ds) = dataset(Hardware::Tx2, 250, 3);
        let m = InfluenceModel::fit(&ds, 0, &small_opts()).unwrap();
        assert!(!m.terms().is_empty());
        let mape = m.mape_on(&ds, 0);
        assert!(mape < 30.0, "training MAPE {mape}");
    }

    #[test]
    fn transfer_error_grows_across_hardware() {
        let (_, src) = dataset(Hardware::Xavier, 250, 3);
        let (_, dst) = dataset(Hardware::Tx1, 250, 4);
        let m = InfluenceModel::fit(&src, 0, &small_opts()).unwrap();
        let here = m.mape_on(&src, 0);
        let there = m.mape_on(&dst, 0);
        assert!(
            there > here,
            "transfer error {there} should exceed source error {here}"
        );
    }

    #[test]
    fn common_terms_and_diffs() {
        let (_, a) = dataset(Hardware::Tx2, 220, 5);
        let (_, b) = dataset(Hardware::Xavier, 220, 6);
        let ma = InfluenceModel::fit(&a, 0, &small_opts()).unwrap();
        let mb = InfluenceModel::fit(&b, 0, &small_opts()).unwrap();
        let common = ma.common_terms(&mb);
        assert!(common.len() <= ma.terms().len());
        let diffs = ma.coefficient_diffs(&mb);
        assert_eq!(diffs.len(), common.len());
        let rank = ma.coefficient_rank_correlation(&mb);
        assert!((-1.0..=1.0).contains(&rank));
    }

    #[test]
    fn term_rendering_uses_option_names() {
        let (_, ds) = dataset(Hardware::Tx2, 150, 7);
        let m = InfluenceModel::fit(&ds, 0, &small_opts()).unwrap();
        if let Some(t) = m.terms().first() {
            let s = m.render_term(t);
            assert!(!s.is_empty());
        }
    }
}
