//! # unicorn-baselines
//!
//! The six comparison methods of the Unicorn (EuroSys '22) evaluation,
//! implemented from their original papers, plus the tree/forest substrate
//! they need:
//!
//! * [`cbi`] — statistical debugging with Liblit-style predicate ranking
//!   (Song & Lu 2014).
//! * [`dd`] — `ddmin` delta debugging over configuration diffs
//!   (Artho 2011).
//! * [`encore`] — correlational rule mining over misconfiguration data
//!   (Zhang et al. 2014).
//! * [`bugdoc`] — decision-tree diagnosis and fix steering
//!   (Lourenço et al. 2020).
//! * [`smac`] — sequential model-based optimization with an RF surrogate
//!   and EI acquisition (Hutter et al. 2011).
//! * [`pesmo`] — multi-objective model-based optimization (PESMO-shaped;
//!   see DESIGN.md for the acquisition substitution).
//! * [`perf_influence`] — stepwise performance-influence models
//!   (Siegmund et al. 2015), the §2 incumbent.
//! * [`tree`] / [`forest`] — CART and random-forest substrates.

pub mod bugdoc;
pub mod cbi;
pub mod common;
pub mod dd;
pub mod encore;
pub mod forest;
pub mod perf_influence;
pub mod pesmo;
pub mod smac;
pub mod tree;

pub use bugdoc::BugDoc;
pub use cbi::Cbi;
pub use common::{BaselineOutcome, DebugBudget, Debugger};
pub use dd::DeltaDebugging;
pub use encore::Encore;
pub use forest::{expected_improvement, ForestOptions, RandomForest};
pub use perf_influence::InfluenceModel;
pub use pesmo::{hv_error_history, pesmo_optimize, PesmoOptions, PesmoOutcome};
pub use smac::{smac_debug, smac_optimize, SmacOptions, SmacOutcome};
pub use tree::{DecisionTree, PathStep, TreeOptions};
