//! Shared machinery for the debugging baselines: pass/fail sampling, the
//! fix-probing loop, and the common outcome type.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unicorn_systems::{Config, Fault, FaultCatalog, Simulator};

/// Measurement budget of a baseline debugging run.
#[derive(Debug, Clone)]
pub struct DebugBudget {
    /// Observational samples the method may label pass/fail.
    pub n_samples: usize,
    /// Candidate fixes the method may measure.
    pub n_probes: usize,
}

impl Default for DebugBudget {
    fn default() -> Self {
        Self {
            n_samples: 60,
            n_probes: 10,
        }
    }
}

/// Outcome of a baseline debugging run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Best configuration found.
    pub best_config: Config,
    /// Its measured objectives.
    pub best_objectives: Vec<f64>,
    /// Diagnosed root-cause options.
    pub diagnosed_options: Vec<usize>,
    /// Whether the QoS goal was met.
    pub fixed: bool,
    /// Total measurements (samples + probes).
    pub n_measurements: usize,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
}

/// A debugging baseline.
pub trait Debugger {
    /// Method name for reports.
    fn name(&self) -> &'static str;
    /// Diagnoses and repairs `fault`.
    fn debug(
        &self,
        sim: &Simulator,
        fault: &Fault,
        catalog: &FaultCatalog,
        budget: &DebugBudget,
        seed: u64,
    ) -> BaselineOutcome;
}

/// A labeled observational sample set.
pub struct LabeledSamples {
    /// Configurations.
    pub configs: Vec<Config>,
    /// Failure labels aligned with `configs` (true = faulty).
    pub failing: Vec<bool>,
    /// Measured objective vectors.
    pub objectives: Vec<Vec<f64>>,
}

/// Draws and labels `n` random configurations: a sample fails when any of
/// the fault's violated objectives exceeds the catalog threshold. The
/// fault itself is appended as a guaranteed failing example.
pub fn sample_labeled(
    sim: &Simulator,
    fault: &Fault,
    catalog: &FaultCatalog,
    n: usize,
    seed: u64,
) -> LabeledSamples {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut configs: Vec<Config> = (0..n.saturating_sub(1))
        .map(|_| sim.model.space.random_config(&mut rng))
        .collect();
    configs.push(fault.config.clone());
    let mut failing = Vec::with_capacity(configs.len());
    let mut objectives = Vec::with_capacity(configs.len());
    for c in &configs {
        let s = sim.measure(c);
        let fail = fault
            .objectives
            .iter()
            .any(|&o| s.objectives[o] > catalog.thresholds[o]);
        failing.push(fail);
        objectives.push(s.objectives);
    }
    LabeledSamples {
        configs,
        failing,
        objectives,
    }
}

/// QoS check for a repair: all violated objectives at or below the
/// catalog repair targets (same goal Unicorn uses).
pub fn meets_goal(fault: &Fault, catalog: &FaultCatalog, objectives: &[f64]) -> bool {
    fault
        .objectives
        .iter()
        .all(|&o| objectives[o] <= catalog.targets[o])
}

/// Probes candidate fixes in order, tracking the best configuration on the
/// violated objectives; stops at the first fix meeting the goal or when
/// the probe budget is exhausted.
#[allow(clippy::too_many_arguments)]
pub fn probe_fixes(
    sim: &Simulator,
    fault: &Fault,
    catalog: &FaultCatalog,
    candidates: &[Config],
    max_probes: usize,
    prior_measurements: usize,
    diagnosed_options: Vec<usize>,
    start: Instant,
) -> BaselineOutcome {
    let fault_sample = sim.measure(&fault.config);
    let mut best_config = fault.config.clone();
    let mut best_objectives = fault_sample.objectives;
    let mut n = prior_measurements + 1;
    let mut fixed = false;
    for c in candidates.iter().take(max_probes) {
        let s = sim.measure(c);
        n += 1;
        let better = fault
            .objectives
            .iter()
            .all(|&o| s.objectives[o] <= best_objectives[o]);
        if better {
            best_config = c.clone();
            best_objectives = s.objectives.clone();
        }
        if meets_goal(fault, catalog, &s.objectives) {
            best_config = c.clone();
            best_objectives = s.objectives;
            fixed = true;
            break;
        }
    }
    // The diagnosis reported is the changed-option set of the best config.
    let diagnosed = if best_config == fault.config {
        diagnosed_options
    } else {
        changed_options(sim, &fault.config, &best_config)
    };
    BaselineOutcome {
        best_config,
        best_objectives,
        diagnosed_options: diagnosed,
        fixed,
        n_measurements: n,
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// Options whose grid position differs between two configurations.
pub fn changed_options(sim: &Simulator, a: &Config, b: &Config) -> Vec<usize> {
    (0..sim.model.n_options())
        .filter(|&i| {
            sim.model.space.option(i).nearest_index(a.values[i])
                != sim.model.space.option(i).nearest_index(b.values[i])
        })
        .collect()
}

/// Feature matrix (row-major, raw option values) of a config list.
pub fn feature_rows(configs: &[Config]) -> Vec<Vec<f64>> {
    configs.iter().map(|c| c.values.clone()).collect()
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use unicorn_systems::{
        discover_faults, Environment, FaultDiscoveryOptions, Hardware, SubjectSystem,
    };

    /// A small shared fixture: x264 on TX2 with its fault catalog.
    pub fn x264_fixture() -> (Simulator, FaultCatalog) {
        let sim = Simulator::new(
            SubjectSystem::X264.build(),
            Environment::on(Hardware::Tx2),
            13,
        );
        let catalog = discover_faults(
            &sim,
            &FaultDiscoveryOptions {
                n_samples: 500,
                ace_bases: 4,
                ..Default::default()
            },
        );
        (sim, catalog)
    }

    /// A latency fault from the fixture.
    pub fn latency_fault(catalog: &FaultCatalog) -> &Fault {
        catalog
            .faults
            .iter()
            .find(|f| f.objectives.contains(&0))
            .unwrap_or(&catalog.faults[0])
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;

    #[test]
    fn labeling_marks_the_fault_failing() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let s = sample_labeled(&sim, fault, &catalog, 20, 3);
        assert_eq!(s.configs.len(), 20);
        assert!(
            *s.failing.last().unwrap(),
            "fault row must be labeled failing"
        );
        // Most random configs pass (faults are 1% tails).
        let fails = s.failing.iter().filter(|&&f| f).count();
        assert!(fails <= 6, "too many failures: {fails}");
    }

    #[test]
    fn probing_tracks_best_and_counts_measurements() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let candidates = vec![sim.model.space.default_config()];
        let out = probe_fixes(
            &sim,
            fault,
            &catalog,
            &candidates,
            5,
            7,
            vec![],
            Instant::now(),
        );
        assert!(out.n_measurements >= 8); // 7 prior + fault + ≥0 probes
        assert!(out.best_objectives[0] > 0.0);
    }

    #[test]
    fn changed_options_detects_grid_moves() {
        let (sim, _) = x264_fixture();
        let a = sim.model.space.default_config();
        let mut b = a.clone();
        b.values[0] = sim.model.space.option(0).values[0];
        let diff = changed_options(&sim, &a, &b);
        // Default of option 0 is index 1, so moving to index 0 is a change.
        assert_eq!(diff, vec![0]);
    }
}
