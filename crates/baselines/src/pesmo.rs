//! PESMO-style multi-objective Bayesian optimization.
//!
//! The paper compares against PESMO (Hernández-Lobato et al., ICML'16),
//! whose exact predictive-entropy-search acquisition requires expectation-
//! propagation approximations of GP minima. Per the substitution rule
//! (DESIGN.md) we keep the same loop shape — surrogate per objective,
//! information-seeking acquisition, one measurement per iteration — but
//! use random-forest surrogates with *expected hypervolume improvement*
//! estimated by Thompson sampling over trees, the standard drop-in MO
//! acquisition.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unicorn_stats::pareto::{hypervolume_2d, pareto_front};
use unicorn_systems::{Config, Simulator};

use crate::forest::{ForestOptions, RandomForest};

/// PESMO-style optimizer hyperparameters.
#[derive(Debug, Clone)]
pub struct PesmoOptions {
    /// Initial random design.
    pub n_init: usize,
    /// Total budget.
    pub budget: usize,
    /// Candidates per iteration.
    pub n_candidates: usize,
    /// Thompson samples per candidate.
    pub n_thompson: usize,
    /// Forest settings.
    pub forest: ForestOptions,
    /// Seed.
    pub seed: u64,
}

impl Default for PesmoOptions {
    fn default() -> Self {
        Self {
            n_init: 15,
            budget: 60,
            n_candidates: 30,
            n_thompson: 8,
            forest: ForestOptions {
                n_trees: 16,
                ..Default::default()
            },
            seed: 0x9E5,
        }
    }
}

/// Outcome of a PESMO-style run.
#[derive(Debug, Clone)]
pub struct PesmoOutcome {
    /// Measured objective vectors in measurement order.
    pub evaluated: Vec<Vec<f64>>,
    /// Measured configurations in order.
    pub configs: Vec<Config>,
    /// Final Pareto front.
    pub front: Vec<Vec<f64>>,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
}

/// Minimizes the two objectives `objective_idxs` jointly.
pub fn pesmo_optimize(
    sim: &Simulator,
    objective_idxs: &[usize; 2],
    opts: &PesmoOptions,
) -> PesmoOutcome {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut configs: Vec<Config> = Vec::new();
    let mut evaluated: Vec<Vec<f64>> = Vec::new();

    let measure = |c: &Config, configs: &mut Vec<Config>, evaluated: &mut Vec<Vec<f64>>| {
        let s = sim.measure(c);
        configs.push(c.clone());
        evaluated.push(objective_idxs.iter().map(|&o| s.objectives[o]).collect());
    };

    for _ in 0..opts.n_init.min(opts.budget) {
        let c = sim.model.space.random_config(&mut rng);
        measure(&c, &mut configs, &mut evaluated);
    }

    while evaluated.len() < opts.budget {
        let xs: Vec<Vec<f64>> = configs.iter().map(|c| c.values.clone()).collect();
        let y0: Vec<f64> = evaluated.iter().map(|v| v[0]).collect();
        let y1: Vec<f64> = evaluated.iter().map(|v| v[1]).collect();
        let it = evaluated.len() as u64;
        let f0 = RandomForest::fit(
            &xs,
            &y0,
            &ForestOptions {
                seed: opts.seed ^ it,
                ..opts.forest.clone()
            },
        );
        let f1 = RandomForest::fit(
            &xs,
            &y1,
            &ForestOptions {
                seed: opts.seed ^ (it << 1),
                ..opts.forest.clone()
            },
        );

        // Reference point: slightly beyond the observed maxima.
        let rp = [
            y0.iter().copied().fold(0.0, f64::max) * 1.1 + 1e-9,
            y1.iter().copied().fold(0.0, f64::max) * 1.1 + 1e-9,
        ];
        let front = pareto_front(&evaluated);
        let hv_now = hypervolume_2d(&front, &rp);

        // Candidate pool: neighbours of front members + random.
        let front_idx = unicorn_stats::pareto::pareto_front_indices(&evaluated);
        let mut pool: Vec<Config> = Vec::new();
        for &i in front_idx.iter().take(4) {
            pool.extend(sim.model.space.neighbors(&configs[i]));
        }
        while pool.len() < opts.n_candidates {
            pool.push(sim.model.space.random_config(&mut rng));
        }

        // Expected hypervolume improvement via Thompson sampling of trees.
        let mut best: Option<(f64, Config)> = None;
        for c in pool {
            let mut ehvi = 0.0;
            for _ in 0..opts.n_thompson {
                let t0 = rng.gen_range(0..f0.n_trees());
                let t1 = rng.gen_range(0..f1.n_trees());
                let p = vec![
                    f0.predict_tree(t0, &c.values),
                    f1.predict_tree(t1, &c.values),
                ];
                let mut augmented = front.clone();
                augmented.push(p);
                let hv = hypervolume_2d(&pareto_front(&augmented), &rp);
                ehvi += (hv - hv_now).max(0.0);
            }
            ehvi /= opts.n_thompson as f64;
            if best.as_ref().is_none_or(|(b, _)| ehvi > *b) {
                best = Some((ehvi, c));
            }
        }
        let next = best.map(|(_, c)| c).expect("non-empty pool");
        measure(&next, &mut configs, &mut evaluated);
    }

    PesmoOutcome {
        front: pareto_front(&evaluated),
        evaluated,
        configs,
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// Hypervolume-error history of a finished run against a reference front
/// (prefixes of the evaluation order), for Fig 15c.
pub fn hv_error_history(
    outcome: &PesmoOutcome,
    reference: &[Vec<f64>],
    ref_point: &[f64; 2],
) -> Vec<f64> {
    (1..=outcome.evaluated.len())
        .map(|k| {
            let front = pareto_front(&outcome.evaluated[..k]);
            unicorn_stats::pareto::hypervolume_error(&front, reference, ref_point)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicorn_systems::{Environment, Hardware, SubjectSystem};

    #[test]
    fn pesmo_builds_a_front() {
        let sim = Simulator::new(
            SubjectSystem::Xception.build(),
            Environment::on(Hardware::Tx2),
            37,
        );
        let out = pesmo_optimize(
            &sim,
            &[0, 1],
            &PesmoOptions {
                n_init: 10,
                budget: 25,
                ..Default::default()
            },
        );
        assert_eq!(out.evaluated.len(), 25);
        assert!(!out.front.is_empty());
        // The front must actually be non-dominated.
        for (i, a) in out.front.iter().enumerate() {
            for (j, b) in out.front.iter().enumerate() {
                if i != j {
                    assert!(!unicorn_stats::dominates(a, b));
                }
            }
        }
    }

    #[test]
    fn hv_error_history_is_monotone() {
        let sim = Simulator::new(
            SubjectSystem::Xception.build(),
            Environment::on(Hardware::Tx2),
            41,
        );
        let out = pesmo_optimize(
            &sim,
            &[0, 1],
            &PesmoOptions {
                n_init: 8,
                budget: 16,
                ..Default::default()
            },
        );
        let reference = out.front.clone();
        let rp = [1e6, 1e6];
        let hist = hv_error_history(&out, &reference, &rp);
        assert_eq!(hist.len(), 16);
        for w in hist.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Converges to zero against its own final front.
        assert!(hist.last().unwrap().abs() < 1e-9);
    }
}
