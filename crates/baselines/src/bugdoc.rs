//! BugDoc (Lourenço et al., SIGMOD'20): learns a decision tree over
//! pass/fail runs, explains the failure via the root-to-leaf path the
//! faulty configuration follows, and derives fixes by steering the
//! configuration toward passing leaves.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unicorn_systems::{Config, Fault, FaultCatalog, Simulator};

use crate::common::{
    feature_rows, probe_fixes, sample_labeled, BaselineOutcome, DebugBudget, Debugger,
};
use crate::tree::{DecisionTree, PathStep, TreeOptions};

/// The BugDoc baseline.
#[derive(Debug, Clone)]
pub struct BugDoc {
    /// Tree depth cap.
    pub max_depth: usize,
    /// Diagnosis size cap.
    pub top_k: usize,
}

impl Default for BugDoc {
    fn default() -> Self {
        Self {
            max_depth: 6,
            top_k: 5,
        }
    }
}

/// Builds a configuration satisfying `path` constraints, starting from the
/// fault and moving each constrained option to the nearest grid value on
/// the required side of the threshold.
fn config_for_path(sim: &Simulator, fault: &Config, path: &[PathStep]) -> Config {
    let mut c = fault.clone();
    for step in path {
        let grid = &sim.model.space.option(step.feature).values;
        let current = c.values[step.feature];
        let ok = if step.went_left {
            current <= step.threshold
        } else {
            current > step.threshold
        };
        if ok {
            continue;
        }
        // Nearest grid value on the required side.
        let candidates: Vec<f64> = grid
            .iter()
            .copied()
            .filter(|&v| {
                if step.went_left {
                    v <= step.threshold
                } else {
                    v > step.threshold
                }
            })
            .collect();
        if let Some(v) = candidates.into_iter().min_by(|a, b| {
            (a - current)
                .abs()
                .partial_cmp(&(b - current).abs())
                .expect("NaN value")
        }) {
            c.values[step.feature] = v;
        }
    }
    c
}

impl BugDoc {
    /// Diagnoses and repairs using caller-provided labeled samples (the
    /// transfer experiments feed source-environment samples here); fix
    /// probes still run against `sim`.
    #[allow(clippy::too_many_arguments)]
    pub fn debug_with_samples(
        &self,
        sim: &Simulator,
        fault: &Fault,
        catalog: &FaultCatalog,
        samples: &crate::common::LabeledSamples,
        budget: &DebugBudget,
        seed: u64,
        start: Instant,
        prior_measurements: usize,
    ) -> BaselineOutcome {
        let x = feature_rows(&samples.configs);
        let y: Vec<f64> = samples
            .failing
            .iter()
            .map(|&f| if f { 1.0 } else { 0.0 })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB06D0C);
        let tree = DecisionTree::fit(
            &x,
            &y,
            &TreeOptions {
                max_depth: self.max_depth,
                min_samples_leaf: 2,
                mtry: None,
            },
            &mut rng,
        );

        let fault_path = tree.decision_path(&fault.config.values);
        let mut diagnosed: Vec<usize> = Vec::new();
        for s in &fault_path {
            if !diagnosed.contains(&s.feature) {
                diagnosed.push(s.feature);
            }
        }
        diagnosed.truncate(self.top_k);

        let mut passing = tree.paths_to_leaves_with(f64::NEG_INFINITY);
        passing.retain(|(_, v)| *v < 0.5);
        let mut candidates: Vec<(Config, f64, usize)> = passing
            .into_iter()
            .map(|(path, v)| {
                let c = config_for_path(sim, &fault.config, &path);
                let dist = sim.model.space.config_distance(&fault.config, &c);
                (c, v, dist)
            })
            .filter(|(_, _, dist)| *dist > 0)
            .collect();
        candidates.sort_by(|a, b| {
            (a.1, a.2)
                .partial_cmp(&(b.1, b.2))
                .expect("NaN candidate score")
        });
        candidates.dedup_by(|a, b| a.0 == b.0);
        let configs: Vec<Config> = candidates.into_iter().map(|(c, _, _)| c).collect();

        probe_fixes(
            sim,
            fault,
            catalog,
            &configs,
            budget.n_probes,
            prior_measurements,
            diagnosed,
            start,
        )
    }
}

impl Debugger for BugDoc {
    fn name(&self) -> &'static str {
        "BugDoc"
    }

    fn debug(
        &self,
        sim: &Simulator,
        fault: &Fault,
        catalog: &FaultCatalog,
        budget: &DebugBudget,
        seed: u64,
    ) -> BaselineOutcome {
        let start = Instant::now();
        let samples = sample_labeled(sim, fault, catalog, budget.n_samples, seed);
        self.debug_with_samples(
            sim,
            fault,
            catalog,
            &samples,
            budget,
            seed,
            start,
            budget.n_samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::fixtures::{latency_fault, x264_fixture};

    #[test]
    fn bugdoc_improves_the_fault() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let out = BugDoc::default().debug(
            &sim,
            fault,
            &catalog,
            &DebugBudget {
                n_samples: 80,
                n_probes: 8,
            },
            23,
        );
        let o = fault.objectives[0];
        assert!(sim.true_objectives(&out.best_config)[o] <= fault.true_objectives[o]);
    }

    #[test]
    fn path_steering_respects_constraints() {
        let (sim, _) = x264_fixture();
        let fault = sim.model.space.default_config();
        // Force option 1 (Bitrate, grid 1000..5000, default 2000) above
        // 2500: the steered config must pick a grid value > 2500.
        let path = vec![PathStep {
            feature: 1,
            threshold: 2500.0,
            went_left: false,
        }];
        let c = config_for_path(&sim, &fault, &path);
        assert!(c.values[1] > 2500.0);
        assert!(sim.model.space.option(1).values.contains(&c.values[1]));
        // Already-satisfied constraints leave values untouched.
        let path2 = vec![PathStep {
            feature: 1,
            threshold: 2500.0,
            went_left: true,
        }];
        let c2 = config_for_path(&sim, &fault, &path2);
        assert_eq!(c2.values[1], fault.values[1]);
    }
}
