//! DD — delta debugging (Zeller's `ddmin`, per Artho 2011): minimizes the
//! set of option differences between the faulty configuration and a known
//! good one until a 1-minimal failure-inducing change set remains. The
//! repair reverts exactly that change set.

use std::time::Instant;

use unicorn_systems::{Config, Fault, FaultCatalog, Simulator};

use crate::common::{changed_options, meets_goal, BaselineOutcome, DebugBudget, Debugger};

/// The delta-debugging baseline.
#[derive(Debug, Clone, Default)]
pub struct DeltaDebugging;

/// Measurement-counting oracle: does applying `delta` (option indices,
/// values taken from the fault) onto `base` reproduce the fault?
struct Oracle<'a> {
    sim: &'a Simulator,
    fault: &'a Fault,
    catalog: &'a FaultCatalog,
    base: Config,
    calls: usize,
    budget: usize,
}

impl Oracle<'_> {
    fn apply(&self, delta: &[usize]) -> Config {
        let mut c = self.base.clone();
        for &o in delta {
            c.values[o] = self.fault.config.values[o];
        }
        c
    }

    fn fails(&mut self, delta: &[usize]) -> Option<bool> {
        if self.calls >= self.budget {
            return None;
        }
        self.calls += 1;
        let s = self.sim.measure(&self.apply(delta));
        Some(
            self.fault
                .objectives
                .iter()
                .any(|&o| s.objectives[o] > self.catalog.thresholds[o]),
        )
    }
}

/// `ddmin`: splits the failing change set into `n` chunks, tries each chunk
/// and each complement, recursing on any failing reduction; stops at
/// 1-minimality or budget exhaustion.
fn ddmin(oracle: &mut Oracle<'_>, mut delta: Vec<usize>) -> Vec<usize> {
    let mut n = 2usize;
    while delta.len() >= 2 {
        let chunk = delta.len().div_ceil(n);
        let chunks: Vec<Vec<usize>> = delta.chunks(chunk).map(<[usize]>::to_vec).collect();
        let mut reduced = false;
        // Try each chunk alone.
        for c in &chunks {
            match oracle.fails(c) {
                None => return delta,
                Some(true) => {
                    delta = c.clone();
                    n = 2;
                    reduced = true;
                    break;
                }
                Some(false) => {}
            }
        }
        if reduced {
            continue;
        }
        // Try complements.
        if n > 2 || chunks.len() > 2 {
            for (i, _) in chunks.iter().enumerate() {
                let complement: Vec<usize> = chunks
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                if complement.is_empty() {
                    continue;
                }
                match oracle.fails(&complement) {
                    None => return delta,
                    Some(true) => {
                        delta = complement;
                        n = (n - 1).max(2);
                        reduced = true;
                        break;
                    }
                    Some(false) => {}
                }
            }
        }
        if reduced {
            continue;
        }
        // Increase granularity.
        if n >= delta.len() {
            break;
        }
        n = (2 * n).min(delta.len());
    }
    delta
}

impl Debugger for DeltaDebugging {
    fn name(&self) -> &'static str {
        "DD"
    }

    fn debug(
        &self,
        sim: &Simulator,
        fault: &Fault,
        catalog: &FaultCatalog,
        budget: &DebugBudget,
        seed: u64,
    ) -> BaselineOutcome {
        let start = Instant::now();
        let _ = seed; // DD is deterministic given the base configuration.
                      // Known-good base: the shipped defaults (measured once); if even
                      // the defaults fail, DD degrades to reporting all differences.
        let base = sim.model.space.default_config();
        let base_sample = sim.measure(&base);
        let mut measurements = 1usize;
        let base_fails = fault
            .objectives
            .iter()
            .any(|&o| base_sample.objectives[o] > catalog.thresholds[o]);

        let all_deltas = changed_options(sim, &base, &fault.config);
        let minimal = if base_fails || all_deltas.is_empty() {
            all_deltas.clone()
        } else {
            let mut oracle = Oracle {
                sim,
                fault,
                catalog,
                base: base.clone(),
                calls: 0,
                budget: budget.n_samples + budget.n_probes - 1,
            };
            let m = ddmin(&mut oracle, all_deltas);
            measurements += oracle.calls;
            m
        };

        // Repair: revert the minimal failure-inducing options to the base
        // values.
        let mut fix = fault.config.clone();
        for &o in &minimal {
            fix.values[o] = base.values[o];
        }
        let fix_sample = sim.measure(&fix);
        measurements += 1;
        let fixed = meets_goal(fault, catalog, &fix_sample.objectives);
        let improved = fault
            .objectives
            .iter()
            .all(|&o| fix_sample.objectives[o] <= fault.true_objectives[o]);
        let (best_config, best_objectives) = if improved || fixed {
            (fix, fix_sample.objectives)
        } else {
            (fault.config.clone(), fault.true_objectives.clone())
        };
        BaselineOutcome {
            diagnosed_options: minimal,
            best_config,
            best_objectives,
            fixed,
            n_measurements: measurements,
            wall_time_s: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::fixtures::{latency_fault, x264_fixture};

    #[test]
    fn ddmin_minimizes_a_synthetic_cause() {
        // Synthetic oracle via a planted single-option cause: build a
        // fault whose only failure-inducing delta is one option.
        let (sim, catalog) = x264_fixture();
        let real = latency_fault(&catalog);
        let out = DeltaDebugging.debug(
            &sim,
            real,
            &catalog,
            &DebugBudget {
                n_samples: 40,
                n_probes: 10,
            },
            0,
        );
        // The diagnosis must be a subset of the fault's deltas vs default.
        let base = sim.model.space.default_config();
        let all = changed_options(&sim, &base, &real.config);
        for d in &out.diagnosed_options {
            assert!(all.contains(d));
        }
        assert!(out.n_measurements <= 40 + 10 + 2);
    }

    #[test]
    fn dd_repair_improves_or_keeps() {
        let (sim, catalog) = x264_fixture();
        let fault = latency_fault(&catalog);
        let out = DeltaDebugging.debug(&sim, fault, &catalog, &DebugBudget::default(), 0);
        let o = fault.objectives[0];
        let after = sim.true_objectives(&out.best_config)[o];
        assert!(after <= fault.true_objectives[o] * 1.05);
    }
}
