//! CART regression trees — the substrate under BugDoc's diagnosis and the
//! random-forest surrogate of SMAC/PESMO.
//!
//! Plain variance-reduction splitting on row-major feature matrices.
//! Binary labels (0/1) fit the same machinery: variance reduction on
//! indicators is equivalent to Gini-impurity splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Tree hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeOptions {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features sampled per split (`None` = all; forests use √p).
    pub mtry: Option<usize>,
}

impl Default for TreeOptions {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_leaf: 4,
            mtry: None,
        }
    }
}

/// A tree node.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// Terminal node.
    Leaf {
        /// Mean target value of the training rows that reached the leaf.
        value: f64,
        /// Number of training rows.
        n: usize,
    },
    /// Internal split: rows with `feature <= threshold` go left.
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    n_features: usize,
}

/// One step along a decision path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// Feature tested.
    pub feature: usize,
    /// Threshold tested against.
    pub threshold: f64,
    /// Whether the row went left (`x[feature] <= threshold`).
    pub went_left: bool,
}

impl DecisionTree {
    /// Fits a tree on row-major features `x` and targets `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], opts: &TreeOptions, rng: &mut StdRng) -> Self {
        assert_eq!(x.len(), y.len(), "row/target mismatch");
        assert!(!x.is_empty(), "empty training set");
        let n_features = x[0].len();
        let mut tree = Self {
            nodes: Vec::new(),
            n_features,
        };
        let rows: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, &rows, 0, opts, rng);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        rows: &[usize],
        depth: usize,
        opts: &TreeOptions,
        rng: &mut StdRng,
    ) -> usize {
        let mean: f64 = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64;
        let make_leaf = |nodes: &mut Vec<TreeNode>| {
            nodes.push(TreeNode::Leaf {
                value: mean,
                n: rows.len(),
            });
            nodes.len() - 1
        };
        if depth >= opts.max_depth || rows.len() < 2 * opts.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }
        // Candidate features (mtry subsample for forests).
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if let Some(m) = opts.mtry {
            features.shuffle(rng);
            features.truncate(m.max(1));
        }
        // Best split by weighted-variance reduction.
        let total_sse = sse(y, rows, mean);
        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, thr)
        for &f in &features {
            let mut values: Vec<f64> = rows.iter().map(|&r| x[r][f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            for w in values.windows(2) {
                let thr = (w[0] + w[1]) / 2.0;
                let (l, r): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&row| x[row][f] <= thr);
                if l.len() < opts.min_samples_leaf || r.len() < opts.min_samples_leaf {
                    continue;
                }
                let ml = l.iter().map(|&row| y[row]).sum::<f64>() / l.len() as f64;
                let mr = r.iter().map(|&row| y[row]).sum::<f64>() / r.len() as f64;
                let s = sse(y, &l, ml) + sse(y, &r, mr);
                if best.as_ref().is_none_or(|&(bs, _, _)| s < bs) {
                    best = Some((s, f, thr));
                }
            }
        }
        let Some((s, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        if s >= total_sse - 1e-12 {
            return make_leaf(&mut self.nodes);
        }
        let (l_rows, r_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&row| x[row][feature] <= threshold);
        // Reserve this node, then grow children.
        let idx = self.nodes.len();
        self.nodes.push(TreeNode::Leaf {
            value: mean,
            n: rows.len(),
        });
        let left = self.grow(x, y, &l_rows, depth + 1, opts, rng);
        let right = self.grow(x, y, &r_rows, depth + 1, opts, rng);
        self.nodes[idx] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = self.root();
        loop {
            match self.nodes[i] {
                TreeNode::Leaf { value, .. } => return value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// The decision path a row takes.
    pub fn decision_path(&self, row: &[f64]) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut i = self.root();
        loop {
            match self.nodes[i] {
                TreeNode::Leaf { .. } => return path,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let went_left = row[feature] <= threshold;
                    path.push(PathStep {
                        feature,
                        threshold,
                        went_left,
                    });
                    i = if went_left { left } else { right };
                }
            }
        }
    }

    /// All root-to-leaf paths with leaf predictions ≥ `min_value`,
    /// as constraint lists — BugDoc's "succinct explanations of failures".
    pub fn paths_to_leaves_with(&self, min_value: f64) -> Vec<(Vec<PathStep>, f64)> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, Vec<PathStep>)> = vec![(self.root(), Vec::new())];
        while let Some((i, path)) = stack.pop() {
            match self.nodes[i] {
                TreeNode::Leaf { value, .. } => {
                    if value >= min_value {
                        out.push((path, value));
                    }
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let mut lp = path.clone();
                    lp.push(PathStep {
                        feature,
                        threshold,
                        went_left: true,
                    });
                    stack.push((left, lp));
                    let mut rp = path;
                    rp.push(PathStep {
                        feature,
                        threshold,
                        went_left: false,
                    });
                    stack.push((right, rp));
                }
            }
        }
        out
    }

    fn root(&self) -> usize {
        // grow() pushes the root first for leaf-only trees; for split
        // trees the reserved node at index 0 is also the root (children of
        // the root are pushed after the reservation).
        0
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

fn sse(y: &[f64], rows: &[usize], mean: f64) -> f64 {
    rows.iter().map(|&r| (y[r] - mean) * (y[r] - mean)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn step_function_is_learned_exactly() {
        // y = 1 if x0 > 0.5 else 0.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0, 0.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let t = DecisionTree::fit(&x, &y, &TreeOptions::default(), &mut rng());
        assert_eq!(t.predict(&[0.2, 0.0]), 0.0);
        assert_eq!(t.predict(&[0.9, 0.0]), 1.0);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let t = DecisionTree::fit(&x, &y, &TreeOptions::default(), &mut rng());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[5.0]), 3.0);
    }

    #[test]
    fn conjunction_needs_depth_two() {
        // y = 1 iff x0 > 0.5 AND x1 > 0.5 — unlike XOR, each split has
        // positive gain, so greedy CART recovers it with depth 2.
        let x: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]
        .into_iter()
        .cycle()
        .take(80)
        .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.5 && r[1] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeOptions {
                max_depth: 4,
                min_samples_leaf: 2,
                mtry: None,
            },
            &mut rng(),
        );
        for (r, want) in x.iter().zip(&y).take(4) {
            assert_eq!(t.predict(r), *want);
        }
    }

    #[test]
    fn decision_path_reflects_structure() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.5 { 2.0 } else { 0.0 })
            .collect();
        let t = DecisionTree::fit(&x, &y, &TreeOptions::default(), &mut rng());
        let path = t.decision_path(&[0.9]);
        assert!(!path.is_empty());
        assert_eq!(path[0].feature, 0);
        assert!(!path[0].went_left);
    }

    #[test]
    fn failure_paths_enumerate_bad_leaves() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let t = DecisionTree::fit(&x, &y, &TreeOptions::default(), &mut rng());
        let bad = t.paths_to_leaves_with(0.5);
        assert!(!bad.is_empty());
        // Every failing path must require x0 > threshold for some step.
        for (path, v) in &bad {
            assert!(*v >= 0.5);
            assert!(path.iter().any(|s| !s.went_left));
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeOptions {
                max_depth: 20,
                min_samples_leaf: 5,
                mtry: None,
            },
            &mut rng(),
        );
        // With 10 rows and min 5 per leaf, at most one split.
        assert!(t.n_nodes() <= 3);
    }
}
