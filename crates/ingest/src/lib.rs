//! Streaming telemetry ingestion with drift-triggered relearn.
//!
//! The paper's Stage V loop ("measure, update, relearn every *k*") is a
//! batch schedule; this crate turns it into a *source → transform →
//! learn* streaming loop that decides **when** to relearn from the data
//! itself. Live measurement rows enter per tenant, fold through the
//! segmented append path, and a change detector over the fitted SCM's
//! prediction residuals pulls the relearn trigger:
//!
//! ```text
//!   clients ──POST /v1/tenants/:id/ingest──▶ IngestQueue (bounded, backpressure)
//!                                                │ take_flush(interval)
//!                                                ▼
//!                                          IngestWorker thread
//!                                                │ per row
//!                                                ▼
//!          ┌─────────────────────── IngestPipeline ───────────────────────┐
//!          │ residuals vs pinned SCM ─▶ DriftBank (Page-Hinkley / CUSUM)  │
//!          │ record_row (staged fold) ─▶ on trigger or max staleness:     │
//!          │   relearn ▶ publish_snapshot ▶ SnapshotCell.publish (flip)   │
//!          └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Connection threads keep answering from the old epoch while the worker
//! builds the next one; the publish is a pointer flip. The whole loop
//! inherits the house invariant: a streamed-then-relearned state is
//! **bit-identical** to a cold learn over the concatenated rows, and the
//! trigger decision is a pure function of the row stream — independent of
//! flush-chunk boundaries, worker-pool width, and interleaved query load.
//!
//! Determinism is engineered in three places:
//!
//! * residuals are computed against the *pinned* SCM of the last
//!   published epoch (never a half-updated model), one row at a time;
//! * residuals are normalized by each objective's training-residual RMS
//!   ([`unicorn_inference::FittedScm::residual_rms`]), so thresholds are
//!   dimensionless and survive objective rescaling;
//! * a mid-batch trigger relearns *immediately* — the remaining rows of
//!   the flush are scored against the freshly published model, so the
//!   trigger row never depends on where a flush boundary fell.
//!
//! # Adding a detector
//!
//! Detectors are deliberately plain state machines, not trait objects —
//! an enum keeps them `Clone`, comparable, and free of dynamic dispatch
//! in the per-row hot path. To add one:
//!
//! 1. Add a variant to [`DetectorKind`] and a state struct alongside
//!    [`PageHinkley`]/[`Cusum`] in `drift.rs`. Its `update(&mut self, x)
//!    -> bool` must be a pure fold over the normalized residual stream —
//!    no clocks, no randomness, no allocation-order dependence.
//! 2. Wire the variant into `Detector::new` and `Detector::update` in
//!    `drift.rs` (one match arm each).
//! 3. Give its knobs defaults in [`DriftOptions`] (reuse `delta`/`lambda`
//!    where the semantics fit — bias and threshold in RMS units).
//! 4. Extend `drift_trigger_is_chunk_invariant` in
//!    `tests/ingest_drift_determinism.rs` with the new kind: the proptest
//!    already asserts chunk- and pool-invariance for every kind it sweeps.
//!
//! The serving integration (`unicorn_serve`) needs no change: it stores a
//! [`DriftOptions`] in its `ServeConfig` and everything downstream is
//! data-driven.

pub mod drift;
pub mod pipeline;
pub mod queue;

pub use drift::{Cusum, DetectorKind, DriftBank, DriftOptions, PageHinkley};
pub use pipeline::{
    DriftStats, IngestEndpoint, IngestPipeline, IngestRouter, IngestWorker, RelearnEvent,
    RelearnReason,
};
pub use queue::{IngestAck, IngestQueue};
