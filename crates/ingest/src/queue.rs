//! The bounded ingest buffer: producers (connection threads) push rows,
//! one consumer (the tenant's `IngestWorker`) drains flushes.
//!
//! Mirrors the Mutex+Condvar idiom of `unicorn_serve::admission`'s
//! `AdmissionQueue`: producers push and `notify_one`; the consumer waits
//! on the condvar, then sleeps the flush interval *outside* the lock so
//! a burst coalesces into one flush, then drains everything buffered.
//! Unlike admission, the buffer is **bounded**: a full buffer drops the
//! overflowing rows at the door and says so in the ack — explicit
//! backpressure the wire layer surfaces as a 503, never an unbounded
//! queue behind a slow relearn.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What happened to one ingest submission: how many rows entered the
/// buffer and how many were shed because it was full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// Rows accepted into the buffer.
    pub accepted: u64,
    /// Rows dropped at the door (buffer full).
    pub dropped: u64,
}

/// A bounded MPSC row buffer with interval-coalesced flushes.
pub struct IngestQueue {
    buf: Mutex<VecDeque<Vec<f64>>>,
    arrived: Condvar,
    open: AtomicBool,
    capacity: usize,
    rows: AtomicU64,
    flushes: AtomicU64,
    dropped: AtomicU64,
}

impl IngestQueue {
    /// An open queue holding at most `capacity` buffered rows.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a queue that can hold nothing
    /// would drop every row, which is a configuration bug.
    pub fn new(capacity: usize) -> Arc<Self> {
        assert!(capacity > 0, "ingest buffer capacity must be positive");
        Arc::new(Self {
            buf: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            open: AtomicBool::new(true),
            capacity,
            rows: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Offers `rows` to the buffer, non-blocking. Rows are admitted in
    /// order until the buffer is full; the rest are dropped and counted.
    /// A closed queue drops everything (shutdown backpressure).
    pub fn push_rows(&self, rows: Vec<Vec<f64>>) -> IngestAck {
        let n = rows.len() as u64;
        if !self.open.load(Ordering::SeqCst) {
            self.dropped.fetch_add(n, Ordering::Relaxed);
            return IngestAck {
                accepted: 0,
                dropped: n,
            };
        }
        let mut buf = self.buf.lock().expect("ingest queue poisoned");
        let mut accepted = 0u64;
        for row in rows {
            if buf.len() >= self.capacity {
                break;
            }
            buf.push_back(row);
            accepted += 1;
        }
        drop(buf);
        let dropped = n - accepted;
        self.rows.fetch_add(accepted, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        if accepted > 0 {
            self.arrived.notify_one();
        }
        IngestAck { accepted, dropped }
    }

    /// Blocks until at least one row is buffered, lets the flush
    /// `interval` elapse (outside the lock) so a burst coalesces, then
    /// drains and returns everything buffered. Returns `None` once the
    /// queue is closed *and* empty — the worker's shutdown signal.
    pub fn take_flush(&self, interval: Duration) -> Option<Vec<Vec<f64>>> {
        let mut buf = self.buf.lock().expect("ingest queue poisoned");
        while buf.is_empty() {
            if !self.open.load(Ordering::SeqCst) {
                return None;
            }
            buf = self.arrived.wait(buf).expect("ingest queue poisoned");
        }
        if !interval.is_zero() {
            drop(buf);
            std::thread::sleep(interval);
            buf = self.buf.lock().expect("ingest queue poisoned");
        }
        let batch: Vec<Vec<f64>> = buf.drain(..).collect();
        drop(buf);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Some(batch)
    }

    /// Closes the queue: subsequent pushes are dropped, and the consumer
    /// drains what remains before [`Self::take_flush`] returns `None`.
    pub fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
        self.arrived.notify_all();
    }

    /// Maximum buffered rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total rows accepted into the buffer so far.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Total flushes drained so far.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Total rows dropped (backpressure or post-close).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_up_to_capacity_and_drops_the_rest() {
        let q = IngestQueue::new(3);
        let ack = q.push_rows(vec![vec![1.0]; 5]);
        assert_eq!(
            ack,
            IngestAck {
                accepted: 3,
                dropped: 2
            }
        );
        assert_eq!(q.rows(), 3);
        assert_eq!(q.dropped(), 2);
        // Draining frees the capacity again.
        let batch = q.take_flush(Duration::ZERO).expect("open queue");
        assert_eq!(batch.len(), 3);
        assert_eq!(q.flushes(), 1);
        let ack = q.push_rows(vec![vec![2.0]; 2]);
        assert_eq!(ack.accepted, 2);
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = IngestQueue::new(8);
        q.push_rows(vec![vec![1.0], vec![2.0]]);
        q.close();
        // Pushes after close are shed entirely.
        let ack = q.push_rows(vec![vec![3.0]]);
        assert_eq!(ack.accepted, 0);
        assert_eq!(ack.dropped, 1);
        // The buffered rows still drain, then the shutdown signal.
        assert_eq!(q.take_flush(Duration::ZERO).expect("drain").len(), 2);
        assert!(q.take_flush(Duration::ZERO).is_none());
    }

    #[test]
    fn flush_interval_coalesces_a_burst() {
        let q = IngestQueue::new(64);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..4 {
                    q.push_rows(vec![vec![i as f64]]);
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        // A generous interval lets the whole burst land in one flush
        // batch (the first push wakes us, the sleep coalesces the rest).
        let batch = q.take_flush(Duration::from_millis(100)).expect("open");
        assert_eq!(batch.len(), 4, "burst must coalesce into one flush");
        producer.join().expect("producer");
    }
}
