//! The per-tenant ingest pipeline and its worker thread: score, fold,
//! detect, relearn, publish.
//!
//! [`IngestPipeline`] owns the tenant's [`UnicornState`] for the
//! daemon's lifetime — the background relearn thread is the *only*
//! mutator, connection threads read immutable [`EngineSnapshot`]s from
//! the shared [`SnapshotCell`]. Rows are processed strictly one at a
//! time against the **pinned** SCM of the last published epoch, which is
//! what makes the trigger row a pure function of the row stream: a
//! mid-batch trigger relearns and re-pins immediately, so the remaining
//! rows of the flush score against the new model exactly as they would
//! have had the flush boundary fallen anywhere else.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use unicorn_core::{EngineSnapshot, SnapshotCell, UnicornOptions, UnicornState};
use unicorn_graph::NodeId;
use unicorn_inference::FittedScm;
use unicorn_systems::Simulator;

use crate::drift::{DriftBank, DriftOptions};
use crate::queue::IngestQueue;

/// Why a relearn fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelearnReason {
    /// A drift detector tripped on this objective (index into the
    /// snapshot's objective order).
    Drift { objective: usize },
    /// The max-staleness fallback cadence elapsed without a trigger.
    Staleness,
}

/// One background relearn, as observed by the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RelearnEvent {
    /// 1-based index, in the pipeline's lifetime row stream, of the row
    /// whose processing fired the relearn.
    pub stream_row: u64,
    /// What pulled the trigger.
    pub reason: RelearnReason,
    /// Epoch of the snapshot the relearn published.
    pub epoch: u64,
    /// Wall-clock cost of relearn + snapshot build + publish.
    pub wall: Duration,
}

/// Shared drift observability counters (rendered by `/stats`).
#[derive(Debug, Default)]
pub struct DriftStats {
    triggers: AtomicU64,
    last_trigger_epoch: AtomicU64,
    staleness_relearns: AtomicU64,
}

impl DriftStats {
    /// Drift-triggered relearns so far.
    pub fn triggers(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }

    /// Epoch published by the most recent drift-triggered relearn
    /// (zero when none has fired yet).
    pub fn last_trigger_epoch(&self) -> u64 {
        self.last_trigger_epoch.load(Ordering::Relaxed)
    }

    /// Staleness-fallback relearns so far (not drift-triggered).
    pub fn staleness_relearns(&self) -> u64 {
        self.staleness_relearns.load(Ordering::Relaxed)
    }
}

/// The streaming *score → fold → detect → relearn → publish* loop for
/// one tenant.
pub struct IngestPipeline {
    state: UnicornState,
    sim: Simulator,
    opts: UnicornOptions,
    cell: Arc<SnapshotCell>,
    drift: DriftOptions,
    bank: DriftBank,
    objectives: Vec<NodeId>,
    /// The model rows are scored against: pinned at the last publish,
    /// never a half-updated state.
    scm: FittedScm,
    /// Per-objective training-residual RMS of the pinned model — the
    /// normalization that makes `DriftOptions` thresholds unit-free.
    scales: Vec<f64>,
    rows_seen: u64,
    rows_since_relearn: usize,
    stats: Arc<DriftStats>,
}

impl IngestPipeline {
    /// Builds the pipeline around a bootstrapped tenant.
    ///
    /// `cell` must currently hold a snapshot published from `state` (the
    /// daemon boots exactly this way: bootstrap, `publish_snapshot`,
    /// wrap in a cell, hand both here) — the pipeline pins that
    /// snapshot's SCM as the initial residual baseline.
    pub fn new(
        state: UnicornState,
        sim: Simulator,
        opts: UnicornOptions,
        cell: Arc<SnapshotCell>,
        drift: DriftOptions,
        stats: Arc<DriftStats>,
    ) -> Self {
        let snap = cell.load();
        let objectives = snap.objective_nodes();
        let (scm, scales) = Self::pin(&snap, &objectives);
        let bank = DriftBank::new(objectives.len(), &drift);
        Self {
            state,
            sim,
            opts,
            cell,
            drift,
            bank,
            objectives,
            scm,
            scales,
            rows_seen: 0,
            rows_since_relearn: 0,
            stats,
        }
    }

    fn pin(snap: &EngineSnapshot, objectives: &[NodeId]) -> (FittedScm, Vec<f64>) {
        let scm = snap.engine.scm().clone();
        let scales = objectives.iter().map(|&o| scm.residual_rms(o)).collect();
        (scm, scales)
    }

    /// Processes a flushed batch row by row: score against the pinned
    /// SCM, fold into the state, update the detectors, and relearn on a
    /// trigger or on the staleness fallback. Returns the relearns that
    /// fired, in order.
    pub fn ingest_rows(&mut self, rows: &[Vec<f64>]) -> Vec<RelearnEvent> {
        let mut events = Vec::new();
        for row in rows {
            let residuals = self.scm.residuals_against(row, &self.objectives);
            self.state.record_row(row);
            self.rows_seen += 1;
            self.rows_since_relearn += 1;
            let normalized: Vec<f64> = residuals
                .iter()
                .zip(&self.scales)
                .map(|(r, s)| r / s)
                .collect();
            if let Some(objective) = self.bank.observe(&normalized) {
                events.push(self.relearn_now(RelearnReason::Drift { objective }));
            } else if self.rows_since_relearn >= self.drift.max_staleness_rows {
                events.push(self.relearn_now(RelearnReason::Staleness));
            }
        }
        events
    }

    /// Relearns over everything folded so far, publishes the next epoch
    /// into the cell (a pointer flip — in-flight queries finish on the
    /// old one), and re-pins the residual baseline.
    fn relearn_now(&mut self, reason: RelearnReason) -> RelearnEvent {
        let t0 = Instant::now();
        self.state.relearn(&self.sim, &self.opts);
        let snap = self.state.publish_snapshot(&self.sim, &self.opts);
        self.cell.publish(Arc::clone(&snap));
        let (scm, scales) = Self::pin(&snap, &self.objectives);
        self.scm = scm;
        self.scales = scales;
        self.bank.reset();
        self.rows_since_relearn = 0;
        match reason {
            RelearnReason::Drift { .. } => {
                self.stats.triggers.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .last_trigger_epoch
                    .store(snap.epoch, Ordering::Relaxed);
            }
            RelearnReason::Staleness => {
                self.stats
                    .staleness_relearns
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        RelearnEvent {
            stream_row: self.rows_seen,
            reason,
            epoch: snap.epoch,
            wall: t0.elapsed(),
        }
    }

    /// Total rows ingested over the pipeline's lifetime.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// The shared drift counters.
    pub fn stats(&self) -> &Arc<DriftStats> {
        &self.stats
    }

    /// The tenant's publication cell.
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// Read access to the owned state (bit-identity assertions).
    pub fn state(&self) -> &UnicornState {
        &self.state
    }

    /// Tears the pipeline down into its state (end-of-life inspection).
    pub fn into_state(self) -> UnicornState {
        self.state
    }
}

/// The background relearn thread: drains the tenant's [`IngestQueue`]
/// flush by flush and drives the pipeline until the queue closes.
pub struct IngestWorker {
    handle: thread::JoinHandle<IngestPipeline>,
}

impl IngestWorker {
    /// Spawns the worker. It exits (returning the pipeline) when the
    /// queue is closed and drained.
    pub fn spawn(
        mut pipeline: IngestPipeline,
        queue: Arc<IngestQueue>,
        flush_interval: Duration,
    ) -> Self {
        let handle = thread::Builder::new()
            .name("unicorn-ingest".into())
            .spawn(move || {
                while let Some(rows) = queue.take_flush(flush_interval) {
                    pipeline.ingest_rows(&rows);
                }
                pipeline
            })
            .expect("spawn ingest worker");
        Self { handle }
    }

    /// Joins the worker, recovering the pipeline. Call after closing the
    /// queue, or this blocks until someone does.
    pub fn join(self) -> IngestPipeline {
        self.handle.join().expect("ingest worker panicked")
    }
}

/// A tenant's wire-facing ingest surface: where `POST .../ingest` pushes
/// rows, and the drift counters `/stats` renders. Cloning shares both.
#[derive(Clone)]
pub struct IngestEndpoint {
    /// The bounded row buffer the tenant's worker drains.
    pub queue: Arc<IngestQueue>,
    /// The tenant's drift counters.
    pub drift: Arc<DriftStats>,
}

/// Tenant-keyed directory of ingest endpoints — the ingest-side sibling
/// of `unicorn_core::SnapshotRouter`, with the same insert-only
/// discipline: an endpoint, once registered, is stable for the router's
/// lifetime.
pub struct IngestRouter {
    endpoints: Mutex<HashMap<String, IngestEndpoint>>,
}

impl IngestRouter {
    /// An empty router (tenants without endpoints simply have no ingest).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            endpoints: Mutex::new(HashMap::new()),
        }
    }

    /// Registers `tenant`'s ingest endpoint.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate tenant name (insert-only, like the snapshot
    /// router).
    pub fn insert(&self, tenant: &str, endpoint: IngestEndpoint) {
        let prev = self
            .endpoints
            .lock()
            .expect("ingest router poisoned")
            .insert(tenant.to_string(), endpoint);
        assert!(prev.is_none(), "duplicate ingest tenant {tenant:?}");
    }

    /// The endpoint serving `tenant`, if registered.
    pub fn get(&self, tenant: &str) -> Option<IngestEndpoint> {
        self.endpoints
            .lock()
            .expect("ingest router poisoned")
            .get(tenant)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicorn_systems::{Environment, Hardware, SubjectSystem};

    fn small_sim() -> Simulator {
        Simulator::new(
            SubjectSystem::X264.build(),
            Environment::on(Hardware::Tx2),
            7,
        )
    }

    fn rows_of(data: &unicorn_systems::Dataset) -> Vec<Vec<f64>> {
        (0..data.n_rows())
            .map(|r| data.columns.iter().map(|c| c[r]).collect())
            .collect()
    }

    #[test]
    fn staleness_fallback_relearns_and_publishes() {
        let sim = small_sim();
        let opts = UnicornOptions {
            initial_samples: 40,
            ..UnicornOptions::default()
        };
        let mut state = UnicornState::bootstrap(&sim, &opts);
        let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
        let epoch0 = cell.load().epoch;
        // A threshold no in-distribution stream reaches, plus a tight
        // staleness cadence: only the fallback path may fire.
        let drift = DriftOptions {
            lambda: 1e12,
            max_staleness_rows: 8,
            ..DriftOptions::default()
        };
        let stats = Arc::new(DriftStats::default());
        let mut pipeline = IngestPipeline::new(
            state,
            sim.clone(),
            opts,
            Arc::clone(&cell),
            drift,
            Arc::clone(&stats),
        );
        let extra = unicorn_systems::generate(&sim, 12, 0xFEED);
        let events = pipeline.ingest_rows(&rows_of(&extra));
        assert_eq!(events.len(), 1, "one staleness relearn over 12 rows");
        assert_eq!(events[0].reason, RelearnReason::Staleness);
        assert_eq!(events[0].stream_row, 8);
        assert_eq!(stats.staleness_relearns(), 1);
        assert_eq!(stats.triggers(), 0);
        let snap = cell.load();
        assert!(snap.epoch > epoch0, "fallback must publish a new epoch");
        assert_eq!(snap.n_rows, 40 + 8, "published mid-stream at row 8");
        assert_eq!(pipeline.rows_seen(), 12);
        assert_eq!(cell.flips(), 1);
    }

    #[test]
    fn worker_drains_queue_and_returns_pipeline() {
        let sim = small_sim();
        let opts = UnicornOptions {
            initial_samples: 40,
            ..UnicornOptions::default()
        };
        let mut state = UnicornState::bootstrap(&sim, &opts);
        let cell = Arc::new(SnapshotCell::new(state.publish_snapshot(&sim, &opts)));
        let drift = DriftOptions {
            lambda: 1e12,
            max_staleness_rows: usize::MAX,
            ..DriftOptions::default()
        };
        let pipeline = IngestPipeline::new(
            state,
            sim.clone(),
            opts,
            cell,
            drift,
            Arc::new(DriftStats::default()),
        );
        let queue = IngestQueue::new(64);
        let worker = IngestWorker::spawn(pipeline, Arc::clone(&queue), Duration::ZERO);
        let extra = unicorn_systems::generate(&sim, 6, 0xBEEF);
        let ack = queue.push_rows(rows_of(&extra));
        assert_eq!(ack.accepted, 6);
        queue.close();
        let pipeline = worker.join();
        assert_eq!(pipeline.rows_seen(), 6);
        assert!(queue.flushes() >= 1);
        assert_eq!(pipeline.state().data.n_rows(), 40 + 6);
    }

    #[test]
    #[should_panic(expected = "duplicate ingest tenant")]
    fn ingest_router_rejects_duplicates() {
        let router = IngestRouter::new();
        let ep = IngestEndpoint {
            queue: IngestQueue::new(4),
            drift: Arc::new(DriftStats::default()),
        };
        router.insert("t", ep.clone());
        router.insert("t", ep);
    }
}
