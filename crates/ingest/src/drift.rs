//! Change detection over normalized SCM prediction residuals.
//!
//! A well-fitted model's residuals on in-distribution rows hover around
//! zero at roughly unit scale (they are normalized by the training
//! residual RMS). An environment shift — new hardware, a workload-scale
//! flip — moves the residual mean away from zero, and a sequential
//! change detector notices. Two classic detectors are provided, both
//! pure folds over the residual stream (no clocks, no randomness), so
//! the trigger row is a deterministic function of the rows alone:
//!
//! * [`PageHinkley`] — tracks the cumulative deviation of each sample
//!   from the running mean, minus a drift allowance `delta`; triggers
//!   when the cumulation departs more than `lambda` from its running
//!   extremum (two-sided).
//! * [`Cusum`] — the tabular CUSUM pair: one-sided upper/lower sums
//!   clamped at zero with slack `delta`, triggering when either exceeds
//!   `lambda`.
//!
//! [`DriftBank`] runs one detector per objective and reports the first
//! objective that trips (lowest index wins on ties — a fixed scan
//! order, so multi-objective triggering is deterministic too).
//!
//! See the crate docs for the recipe to add a detector kind.

/// Which sequential change detector to run per objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Page-Hinkley cumulative-deviation test (default).
    PageHinkley,
    /// Tabular CUSUM (one-sided pair, clamped at zero).
    Cusum,
}

/// Deterministic drift-detection thresholds. All magnitudes are in units
/// of the training residual RMS (the ingest pipeline normalizes residuals
/// before they reach a detector).
#[derive(Debug, Clone, Copy)]
pub struct DriftOptions {
    /// Detector run per objective.
    pub detector: DetectorKind,
    /// Drift allowance / slack per sample (RMS units): deviations smaller
    /// than this accumulate nothing, making the detectors robust to the
    /// fitted model's ordinary noise floor.
    pub delta: f64,
    /// Trigger threshold on the accumulated deviation (RMS units).
    pub lambda: f64,
    /// Samples a detector must see before it may trigger — guards the
    /// running mean against cold-start transients.
    pub min_rows: usize,
    /// Staleness fallback: relearn after this many ingested rows even
    /// without a trigger, so a drift too slow for the detector still gets
    /// folded in on a bounded cadence.
    pub max_staleness_rows: usize,
}

impl Default for DriftOptions {
    fn default() -> Self {
        Self {
            detector: DetectorKind::PageHinkley,
            delta: 0.1,
            lambda: 8.0,
            min_rows: 12,
            max_staleness_rows: 256,
        }
    }
}

/// Page-Hinkley test state for one objective: the classic pair of
/// cumulative-deviation sums (one biased `−delta` for increase
/// detection, one biased `+delta` for decrease detection), each tested
/// against its running extremum. A single shared sum would drift by
/// `delta` per sample and false-trigger the opposite side on pure noise.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    min_rows: usize,
    n: u64,
    mean: f64,
    m_inc: f64,
    min_inc: f64,
    m_dec: f64,
    max_dec: f64,
}

impl PageHinkley {
    /// Fresh detector state with the given thresholds.
    pub fn new(delta: f64, lambda: f64, min_rows: usize) -> Self {
        Self {
            delta,
            lambda,
            min_rows,
            n: 0,
            mean: 0.0,
            m_inc: 0.0,
            min_inc: 0.0,
            m_dec: 0.0,
            max_dec: 0.0,
        }
    }

    /// Folds one normalized residual; true when either side trips.
    pub fn update(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        let dev = x - self.mean;
        self.m_inc += dev - self.delta;
        self.min_inc = self.min_inc.min(self.m_inc);
        self.m_dec += dev + self.delta;
        self.max_dec = self.max_dec.max(self.m_dec);
        self.n as usize >= self.min_rows
            && (self.m_inc - self.min_inc > self.lambda || self.max_dec - self.m_dec > self.lambda)
    }

    /// Back to the fresh state (after a relearn re-baselines residuals).
    pub fn reset(&mut self) {
        *self = Self::new(self.delta, self.lambda, self.min_rows);
    }
}

/// Tabular CUSUM state for one objective.
#[derive(Debug, Clone)]
pub struct Cusum {
    delta: f64,
    lambda: f64,
    min_rows: usize,
    n: u64,
    up: f64,
    down: f64,
}

impl Cusum {
    /// Fresh detector state with the given thresholds.
    pub fn new(delta: f64, lambda: f64, min_rows: usize) -> Self {
        Self {
            delta,
            lambda,
            min_rows,
            n: 0,
            up: 0.0,
            down: 0.0,
        }
    }

    /// Folds one normalized residual; true when either side trips.
    ///
    /// The reference level is zero by construction: residuals of a
    /// well-fitted model are centered there, so no running mean is
    /// needed (and the test reacts faster than Page-Hinkley to a mean
    /// shift, at the cost of more sensitivity to heavy tails).
    pub fn update(&mut self, x: f64) -> bool {
        self.n += 1;
        self.up = (self.up + x - self.delta).max(0.0);
        self.down = (self.down - x - self.delta).max(0.0);
        self.n as usize >= self.min_rows && (self.up > self.lambda || self.down > self.lambda)
    }

    /// Back to the fresh state (after a relearn re-baselines residuals).
    pub fn reset(&mut self) {
        *self = Self::new(self.delta, self.lambda, self.min_rows);
    }
}

/// One detector instance, kind-erased for the bank. An enum rather than
/// a trait object keeps the per-row hot path free of dynamic dispatch
/// and the whole bank `Clone` (see the crate-docs recipe for adding a
/// kind).
#[derive(Debug, Clone)]
enum Detector {
    Ph(PageHinkley),
    Cu(Cusum),
}

impl Detector {
    fn new(opts: &DriftOptions) -> Self {
        match opts.detector {
            DetectorKind::PageHinkley => {
                Detector::Ph(PageHinkley::new(opts.delta, opts.lambda, opts.min_rows))
            }
            DetectorKind::Cusum => Detector::Cu(Cusum::new(opts.delta, opts.lambda, opts.min_rows)),
        }
    }

    fn update(&mut self, x: f64) -> bool {
        match self {
            Detector::Ph(d) => d.update(x),
            Detector::Cu(d) => d.update(x),
        }
    }
}

/// One detector per objective, observed in lockstep per row.
#[derive(Debug, Clone)]
pub struct DriftBank {
    detectors: Vec<Detector>,
    opts: DriftOptions,
}

impl DriftBank {
    /// A bank of `n_objectives` fresh detectors.
    pub fn new(n_objectives: usize, opts: &DriftOptions) -> Self {
        Self {
            detectors: (0..n_objectives).map(|_| Detector::new(opts)).collect(),
            opts: *opts,
        }
    }

    /// Folds one row's normalized residuals (one per objective, in
    /// objective order) into every detector, returning the index of the
    /// first objective that trips — lowest index wins on ties. Every
    /// detector is updated even when an earlier one trips, so the fold
    /// is the same whether or not the caller acts on the trigger.
    ///
    /// # Panics
    ///
    /// Panics when `residuals` does not have one entry per objective.
    pub fn observe(&mut self, residuals: &[f64]) -> Option<usize> {
        assert_eq!(
            residuals.len(),
            self.detectors.len(),
            "one residual per objective"
        );
        let mut hit = None;
        for (i, (d, &x)) in self.detectors.iter_mut().zip(residuals).enumerate() {
            if d.update(x) && hit.is_none() {
                hit = Some(i);
            }
        }
        hit
    }

    /// Resets every detector to fresh state (after a relearn publishes a
    /// new model and the residual baseline moves).
    pub fn reset(&mut self) {
        let opts = self.opts;
        for d in &mut self.detectors {
            *d = Detector::new(&opts);
        }
    }

    /// Number of objectives (detectors) in the bank.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// True when the bank watches no objectives.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trigger_row(opts: &DriftOptions, stream: &[f64]) -> Option<usize> {
        let mut bank = DriftBank::new(1, opts);
        for (i, &x) in stream.iter().enumerate() {
            if bank.observe(&[x]).is_some() {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn page_hinkley_ignores_noise_and_catches_a_mean_shift() {
        let opts = DriftOptions::default();
        // Zero-mean alternating noise at the RMS scale: no trigger.
        let noise: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.9 } else { -0.9 })
            .collect();
        assert_eq!(trigger_row(&opts, &noise), None);
        // The same noise, then a +3·RMS mean shift: triggers, and after
        // the shift point.
        let mut shifted = noise.clone();
        shifted.extend((0..100).map(|i| 3.0 + if i % 2 == 0 { 0.9 } else { -0.9 }));
        let row = trigger_row(&opts, &shifted).expect("shift must trigger");
        assert!(row >= 200, "trigger {row} before the planted shift");
    }

    #[test]
    fn cusum_ignores_noise_and_catches_a_mean_shift() {
        let opts = DriftOptions {
            detector: DetectorKind::Cusum,
            delta: 1.0,
            ..DriftOptions::default()
        };
        let noise: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.9 } else { -0.9 })
            .collect();
        assert_eq!(trigger_row(&opts, &noise), None);
        let mut shifted = noise.clone();
        shifted.extend((0..100).map(|_| 3.0));
        let row = trigger_row(&opts, &shifted).expect("shift must trigger");
        assert!(row >= 200, "trigger {row} before the planted shift");
    }

    #[test]
    fn detectors_are_two_sided() {
        for kind in [DetectorKind::PageHinkley, DetectorKind::Cusum] {
            let opts = DriftOptions {
                detector: kind,
                ..DriftOptions::default()
            };
            // A settled zero baseline, then a −3·RMS shift.
            let mut down: Vec<f64> = vec![0.0; 20];
            down.extend(std::iter::repeat_n(-3.0, 50));
            let row = trigger_row(&opts, &down).unwrap_or_else(|| {
                panic!("{kind:?} must catch a downward shift");
            });
            assert!(row >= 20, "{kind:?} triggered at {row}, before the shift");
        }
    }

    #[test]
    fn min_rows_gates_cold_start() {
        let opts = DriftOptions::default();
        // A zero baseline followed by huge deviations: the accumulated
        // evidence crosses lambda almost immediately, but the gate holds
        // the trigger until min_rows samples have been seen.
        let mut bank = DriftBank::new(1, &opts);
        let mut trigger = None;
        for i in 0..opts.min_rows + 5 {
            let x = if i < 5 { 0.0 } else { 100.0 };
            if bank.observe(&[x]).is_some() {
                trigger = Some(i);
                break;
            }
        }
        assert_eq!(
            trigger,
            Some(opts.min_rows - 1),
            "trigger must land exactly when the cold-start gate lifts"
        );
    }

    #[test]
    fn first_objective_wins_ties_and_reset_rearms() {
        let opts = DriftOptions::default();
        let mut bank = DriftBank::new(3, &opts);
        // A settled baseline, then an identical shift on every
        // objective: all three detectors trip on the same row.
        let mut hit = None;
        for i in 0..200 {
            let x = if i < 20 { 0.0 } else { 5.0 };
            hit = bank.observe(&[x, x, x]);
            if hit.is_some() {
                break;
            }
        }
        assert_eq!(hit, Some(0), "fixed scan order: lowest index wins");
        bank.reset();
        assert_eq!(bank.observe(&[5.0, 5.0, 5.0]), None, "reset re-arms");
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
    }
}
