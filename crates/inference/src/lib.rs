//! # unicorn-inference
//!
//! The causal inference engine of the Unicorn (EuroSys '22) reproduction —
//! the role played by `ananke`, `causality` and `semopy` in the original
//! toolchain, reimplemented as one coherent Rust engine:
//!
//! * [`scm::FittedScm`] — polynomial structural causal model fitted over a
//!   learned ADMG, with an empirical-g-formula do-operator, deterministic
//!   counterfactuals (abduction–action–prediction) and conditional
//!   prediction for unmeasured configurations.
//! * [`ace`] — average causal effects, path ACE (appendix Eq 1) and causal
//!   path ranking.
//! * [`repair`] — counterfactual repair sets and ICE scoring (Eqs 2–5).
//! * [`identify`] — bow-arc identifiability screening and backdoor-set
//!   search.
//! * [`plan`] — the batched causal query planner: engine entry points
//!   compile their whole query sets into a deduplicated [`QueryPlan`]
//!   which [`FittedScm::evaluate_plan`] executes as one pool-parallel,
//!   ancestor-sharing batch — answers bit-identical to the legacy serial
//!   loops at any thread count. See the `plan` module docs for how a new
//!   query type expresses itself as plan items plus a canonical merge.
//! * [`queries`] — the user-facing performance-query interface
//!   (Stages I and V).
//! * [`coalesce`] — cross-request query coalescing: performance queries
//!   unrolled into resumable compile/advance rounds so a serving layer
//!   (`unicornd`) can merge many concurrent requests into one
//!   [`plan::PlanBatch`] per admission window, answers bit-identical to
//!   estimating each request alone.
//! * [`dsl`] — a textual query language over it (the §11 future-work
//!   direction), e.g. `P(Latency <= 30 | do(CPU Frequency = 2.0))`.

pub mod ace;
pub mod coalesce;
pub mod dsl;
pub mod engine;
pub mod identify;
pub mod plan;
pub mod queries;
pub mod repair;
pub mod scm;
pub mod sweep_cache;

pub use ace::{
    ace, ace_signed, option_aces, option_aces_planned, path_ace, quantile_values,
    rank_causal_paths, rank_causal_paths_planned, ExplicitDomain, RankedPath, ValueDomain,
};
pub use coalesce::{answer_coalesced, CoalescedQuery};
pub use dsl::{parse_query, ParseError};
pub use engine::CausalEngine;
pub use identify::{find_backdoor_set, identifiable, satisfies_backdoor};
pub use plan::{
    DomainCache, DomainStore, Intervention, PlanBatch, PlanHandle, PlanResults, QueryPlan,
};
pub use queries::{PerformanceQuery, QueryAnswer};
pub use repair::{
    generate_repairs, generate_repairs_cached, ice, rank_repairs, rank_repairs_planned,
    root_cause_candidates, root_cause_candidates_planned, QosGoal, Repair, RepairOptions,
};
pub use scm::{FittedScm, ResidualMode, SimulationOptions, SIM_LANES};
pub use sweep_cache::{sweep_cache_enabled, SweepCache, DEFAULT_SWEEP_CACHE_CAPACITY};
