//! The causal inference engine facade: a fitted SCM plus tier knowledge
//! and value domains, exposing the operations the Unicorn loop needs
//! (root-cause ranking, repair recommendation, path ranking).
//!
//! Every entry point **compiles** its whole query set into one
//! [`crate::plan::QueryPlan`] and answers it with a single
//! [`FittedScm::evaluate_plan`] batch — never one intervention at a time.
//! The SCM and value domain are `Arc`-shared, so the engine (and the
//! plans built from it) clone cheaply across worker threads and relearn
//! iterations.

use std::sync::Arc;

use unicorn_graph::{NodeId, TierConstraints, VarKind};

use crate::ace::{
    ace_of_handles, option_aces_planned, plan_ace, rank_causal_paths_planned, RankedPath,
    ValueDomain,
};
use crate::plan::{DomainCache, DomainStore, QueryPlan};
use crate::repair::{
    generate_repairs_cached, rank_repairs_planned, root_cause_candidates_planned, QosGoal, Repair,
    RepairOptions,
};
use crate::scm::FittedScm;
use crate::sweep_cache::SweepCache;

/// The engine bundling model, constraints and domains. Cloning is a
/// handful of `Arc` bumps — the fit, its caches, and the domain are
/// shared, never copied.
#[derive(Clone)]
pub struct CausalEngine {
    scm: Arc<FittedScm>,
    tiers: TierConstraints,
    domain: Arc<dyn ValueDomain>,
    repair_opts: RepairOptions,
    /// Per-epoch domain-grid memo shared by every plan this engine
    /// compiles: the engine lives exactly as long as one fitted epoch, so
    /// a grid probed in one admission window serves every later one.
    domain_store: Arc<DomainStore>,
}

impl CausalEngine {
    /// Builds an engine with default repair options.
    pub fn new(scm: FittedScm, tiers: TierConstraints, domain: Arc<dyn ValueDomain>) -> Self {
        Self {
            scm: Arc::new(scm),
            tiers,
            domain,
            repair_opts: RepairOptions::default(),
            domain_store: Arc::new(DomainStore::new()),
        }
    }

    /// Overrides the repair-generation options.
    pub fn with_repair_options(mut self, opts: RepairOptions) -> Self {
        self.repair_opts = opts;
        self
    }

    /// Attaches a [`SweepCache`] to the underlying fit: every plan this
    /// engine (or clones of it) evaluates will probe/populate it at the
    /// fit's data epoch.
    pub fn with_sweep_cache(mut self, cache: Arc<SweepCache>) -> Self {
        self.scm = Arc::new(self.scm.as_ref().clone().with_sweep_cache(cache));
        self
    }

    /// A clone of this engine that bypasses the sweep cache — the
    /// reference arm for bit-identity assertions in benches and tests.
    pub fn without_sweep_cache(&self) -> Self {
        let mut e = self.clone();
        e.scm = Arc::new(e.scm.without_sweep_cache());
        e
    }

    /// The attached sweep cache, if any.
    pub fn sweep_cache(&self) -> Option<&Arc<SweepCache>> {
        self.scm.sweep_cache()
    }

    /// The engine-lifetime domain-grid store (one fitted epoch's probes).
    pub fn domain_store(&self) -> &Arc<DomainStore> {
        &self.domain_store
    }

    /// A plan-scoped domain cache backed by the engine's per-epoch store.
    pub fn domain_cache(&self) -> DomainCache<'_> {
        DomainCache::shared(self.domain.as_ref(), Arc::clone(&self.domain_store))
    }

    /// The fitted SCM.
    pub fn scm(&self) -> &FittedScm {
        &self.scm
    }

    /// The shared fitted SCM (for callers that batch their own plans
    /// across threads).
    pub fn scm_shared(&self) -> &Arc<FittedScm> {
        &self.scm
    }

    /// The tier constraints.
    pub fn tiers(&self) -> &TierConstraints {
        &self.tiers
    }

    /// The value domains.
    pub fn domain(&self) -> &dyn ValueDomain {
        self.domain.as_ref()
    }

    /// The repair options in effect.
    pub fn repair_options(&self) -> &RepairOptions {
        &self.repair_opts
    }

    /// All configuration-option nodes.
    pub fn options(&self) -> Vec<NodeId> {
        self.tiers.of_kind(VarKind::ConfigOption)
    }

    /// Top-K causal paths into an objective, ranked by path ACE — all
    /// link sweeps of all paths compiled into one deduplicated plan.
    pub fn top_paths(&self, objective: NodeId, k: usize) -> Vec<RankedPath> {
        let mut cache = self.domain_cache();
        rank_causal_paths_planned(
            &self.scm,
            objective,
            &mut cache,
            k,
            self.repair_opts.path_cap,
        )
    }

    /// Ranks configuration options by their ACE on the goal objectives,
    /// restricted to options appearing on top-ranked causal paths — the
    /// root-cause list (descending). Candidate discovery and the
    /// objectives × candidates × values ACE grid are each one planned
    /// batch; sweeps shared between objectives are simulated once.
    pub fn rank_root_causes(&self, goal: &QosGoal) -> Vec<(NodeId, f64)> {
        let mut cache = self.domain_cache();
        let candidates = root_cause_candidates_planned(
            &self.scm,
            goal,
            &self.tiers,
            &mut cache,
            &self.repair_opts,
        );
        let mut plan = QueryPlan::new();
        let handles = compile_root_cause_grid(&mut plan, &candidates, goal, &mut cache);
        let results = self.scm.evaluate_plan(&plan);
        finish_root_cause_grid(&candidates, &handles, &results)
    }

    /// Recommends counterfactual repairs for the fault observed at
    /// `fault_row`, best first. The whole repair sweep — every candidate
    /// ICE estimate plus its counterfactual — is one planned batch.
    pub fn recommend_repairs(&self, goal: &QosGoal, fault_row: usize) -> Vec<Repair> {
        let mut cache = self.domain_cache();
        let candidates = root_cause_candidates_planned(
            &self.scm,
            goal,
            &self.tiers,
            &mut cache,
            &self.repair_opts,
        );
        let fault: Vec<f64> = (0..self.scm.n_vars())
            .map(|v| self.scm.data()[v][fault_row])
            .collect();
        let repairs = generate_repairs_cached(&fault, &candidates, &mut cache, &self.repair_opts);
        rank_repairs_planned(&self.scm, goal, fault_row, repairs, &self.repair_opts)
    }

    /// ACE of every option on `objective`, descending — the weight vector
    /// used by the paper's accuracy metric and by Stage III sampling. The
    /// whole options × values grid is one planned batch.
    pub fn option_effects(&self, objective: NodeId) -> Vec<(NodeId, f64)> {
        let mut cache = self.domain_cache();
        option_aces_planned(&self.scm, objective, &self.options(), &mut cache)
    }
}

/// Per-candidate, per-objective ACE handles of the root-cause grid, in
/// the serial path's registration order. Shared by
/// [`CausalEngine::rank_root_causes`] and the coalesced driver so the
/// grid arithmetic cannot drift between them.
pub(crate) fn compile_root_cause_grid(
    plan: &mut QueryPlan,
    candidates: &[NodeId],
    goal: &QosGoal,
    cache: &mut DomainCache<'_>,
) -> Vec<Vec<Option<Vec<crate::plan::PlanHandle>>>> {
    candidates
        .iter()
        .map(|&o| {
            goal.thresholds
                .iter()
                .map(|&(obj, _)| plan_ace(plan, obj, o, &cache.values(o)))
                .collect()
        })
        .collect()
}

/// Resolves a [`compile_root_cause_grid`] registration: per-objective
/// ACEs summed per candidate (so multi-objective faults weigh both),
/// sorted descending.
pub(crate) fn finish_root_cause_grid(
    candidates: &[NodeId],
    handles: &[Vec<Option<Vec<crate::plan::PlanHandle>>>],
    results: &crate::plan::PlanResults,
) -> Vec<(NodeId, f64)> {
    let mut scores: Vec<(NodeId, f64)> = candidates
        .iter()
        .zip(handles)
        .map(|(&o, per_obj)| {
            let total: f64 = per_obj.iter().map(|hs| ace_of_handles(results, hs)).sum();
            (o, total)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN ACE"));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ace::ExplicitDomain;
    use unicorn_graph::Admg;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn engine() -> (CausalEngine, usize) {
        let mut s = 31u64;
        let n = 400;
        let mut bad = Vec::new();
        let mut weak = Vec::new();
        let mut ev = Vec::new();
        let mut lat = Vec::new();
        for i in 0..n {
            let a = ((i % 7) == 0) as usize as f64;
            let b = (i % 2) as f64;
            let e = 4.0 * a + 0.3 * b + 0.05 * lcg(&mut s);
            let l = 2.5 * e + 0.05 * lcg(&mut s);
            bad.push(a);
            weak.push(b);
            ev.push(e);
            lat.push(l);
        }
        let mut g = Admg::new(vec!["bad".into(), "weak".into(), "ev".into(), "lat".into()]);
        g.add_directed(0, 2);
        g.add_directed(1, 2);
        g.add_directed(2, 3);
        let scm = FittedScm::fit(g, &[bad, weak, ev, lat]).unwrap();
        let tiers = TierConstraints::new(vec![
            VarKind::ConfigOption,
            VarKind::ConfigOption,
            VarKind::SystemEvent,
            VarKind::Objective,
        ]);
        let domain = ExplicitDomain {
            values: vec![vec![0.0, 1.0], vec![0.0, 1.0], vec![], vec![]],
        };
        (CausalEngine::new(scm, tiers, Arc::new(domain)), 7)
    }

    #[test]
    fn top_paths_cover_both_options() {
        let (e, _) = engine();
        let paths = e.top_paths(3, 5);
        assert_eq!(paths.len(), 2);
        let sources: Vec<usize> = paths.iter().map(|p| p.path.source()).collect();
        assert!(sources.contains(&0) && sources.contains(&1));
        // Strong option ranks first.
        assert_eq!(paths[0].path.source(), 0);
    }

    #[test]
    fn root_cause_ranking_orders_by_effect() {
        let (e, _) = engine();
        let rc = e.rank_root_causes(&QosGoal::single(3, 1.0));
        assert_eq!(rc[0].0, 0);
        assert!(rc[0].1 > rc[1].1);
    }

    #[test]
    fn repairs_fix_the_observed_fault() {
        let (e, fault_row) = engine();
        let repairs = e.recommend_repairs(&QosGoal::single(3, 2.0), fault_row);
        assert!(!repairs.is_empty());
        let best = &repairs[0];
        assert!(best.assignments.iter().any(|&(o, v)| o == 0 && v == 0.0));
        assert!(best.ice > 0.0);
    }

    #[test]
    fn option_effects_listing() {
        let (e, _) = engine();
        let fx = e.option_effects(3);
        assert_eq!(fx.len(), 2);
        assert_eq!(fx[0].0, 0);
        assert!(fx[0].1 > 5.0 * fx[1].1);
    }
}
