//! Fitted structural causal models over an ADMG.
//!
//! Each non-root node gets a polynomial functional node (§3: "we
//! characterize the functional nodes with polynomial models") regressed on
//! its directed parents; residuals are stored per training row. Roots keep
//! their observed values. Simulation draws the *entire* exogenous vector
//! from one training row at a time, which preserves the empirical joint of
//! the noise terms — in particular, residual correlations induced by
//! latent confounders (bidirected edges) survive into the interventional
//! distribution instead of being discarded.
//!
//! # The lane-width/fold-order contract
//!
//! The batch sweep paths ([`FittedScm::evaluate_plan`],
//! [`FittedScm::simulate_batch`]) simulate [`SIM_LANES`] swept rows per
//! topological pass: per node, one coefficient load drives `SIM_LANES`
//! fused predict/residual updates. This is bit-exact — not approximately
//! equal — to the scalar per-row sweep, because swept rows are
//! arithmetically *independent*: no floating-point reduction crosses
//! lanes. Any future kernel must keep that shape:
//!
//! * **Within a lane, the scalar fold order is law.** Each lane's
//!   prediction folds terms in model order from 0.0 with the exact
//!   per-term expressions of [`PolyModel::predict_row`] (`b` for the
//!   intercept, `b·vᵢ`, `b·(vᵢ·vⱼ)`, the ordered product for higher
//!   degrees — the unrolling [`PolyModel::predict`] already pins), then
//!   adds the injected residual. Never reassociate, never contract to
//!   FMA, never batch *across* rows of one reduction.
//! * **Lanes only across independent rows.** The lane width is free to
//!   change (it is a throughput knob, not a semantic one); which rows
//!   share a pass is not observable because no arithmetic connects them.
//! * **Consumers fold in row order.** Lane results are read back lane 0
//!   first, so per-consumer reductions replay the legacy ascending-row
//!   serial fold bit for bit at any lane width or thread count.

use std::collections::HashMap;
use std::sync::Arc;

use unicorn_exec::Executor;
use unicorn_graph::{Admg, NodeId};

use crate::plan::{ModeKey, PlanOutput, PlanResults, QueryPlan, Reduction, SweepMode};
use crate::sweep_cache::SweepCache;
use unicorn_stats::dataview::DataView;
use unicorn_stats::regression::{fit_gram, PolyModel, Term, TermGram};
use unicorn_stats::segment::Segment;
use unicorn_stats::StatsError;

/// Options for batch simulation sweeps ([`FittedScm::simulate_batch`] and
/// the `_with` query variants).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimulationOptions {
    /// Sweep stride override: visit every `stride`-th training row.
    /// `None` keeps the fitted default (`max(n / 256, 1)`), which bounds
    /// sweep cost on large samples.
    pub stride: Option<usize>,
}

/// How residual noise is injected during simulation.
#[derive(Debug, Clone, Copy)]
pub enum ResidualMode {
    /// No noise: propagate conditional expectations.
    None,
    /// Use the residuals of a specific training row (abduction).
    FromRow(usize),
    /// Blend the abducted residuals of row `.0` with the residuals of the
    /// sweep row, weighted `w·abducted + (1−w)·sweep` — the "stochastic
    /// abduction" used for probability-valued counterfactuals (Eq 5).
    Blend { abduct_row: usize, weight: f64 },
}

/// The functional node fitted for one variable.
#[derive(Debug, Clone)]
struct NodeModel {
    parents: Vec<NodeId>,
    /// `None` for root nodes (no directed parents).
    model: Option<PolyModel>,
    /// Per-training-row residuals (`observed − predicted`); for roots the
    /// residual is defined as the observed value itself.
    residuals: Vec<f64>,
}

/// One node's cached regression sufficient statistics: the per-segment
/// normal-equation contributions of its term set plus their running
/// in-order folds, keyed by segment identity. A warm refit over a grown
/// view locates the longest `Arc`-shared segment prefix, starts from that
/// prefix's cached fold, and computes only the (new or rebuilt-tail)
/// segments' contributions — O(new rows) per node instead of O(all rows).
/// Segment prefixes are append-only within a lineage, so pointer equality
/// of segment `k` certifies the whole prefix `0..=k`.
#[derive(Debug, Clone)]
struct NodeGrams {
    segments: Vec<Arc<Segment>>,
    grams: Vec<Arc<TermGram>>,
    /// `folds[k]` = grams[0] + … + grams[k], folded in segment order.
    folds: Vec<Arc<TermGram>>,
}

impl NodeGrams {
    /// Builds the cache for one node over a view's segments, reusing the
    /// previous cache's work for the shared segment prefix.
    fn build(
        view_segments: &[Arc<Segment>],
        terms: &[Term],
        v: NodeId,
        prev: Option<&NodeGrams>,
    ) -> NodeGrams {
        let shared = prev.map_or(0, |p| {
            p.segments
                .iter()
                .zip(view_segments)
                .take_while(|(a, b)| Arc::ptr_eq(a, b))
                .count()
        });
        let mut segments = Vec::with_capacity(view_segments.len());
        let mut grams = Vec::with_capacity(view_segments.len());
        let mut folds = Vec::with_capacity(view_segments.len());
        if let Some(p) = prev {
            segments.extend(p.segments[..shared].iter().cloned());
            grams.extend(p.grams[..shared].iter().cloned());
            folds.extend(p.folds[..shared].iter().cloned());
        }
        let mut acc: Option<TermGram> = folds.last().map(|f| TermGram::clone(f));
        for seg in &view_segments[shared..] {
            let gram = segment_gram(seg, terms, v);
            let fold = match acc.take() {
                Some(mut a) => {
                    a.add(&gram);
                    a
                }
                None => TermGram::clone(&gram),
            };
            segments.push(Arc::clone(seg));
            grams.push(gram);
            acc = Some(fold.clone());
            folds.push(Arc::new(fold));
        }
        NodeGrams {
            segments,
            grams,
            folds,
        }
    }

    /// The fold over all segments (zeros when the view is empty).
    fn total(&self, t: usize) -> TermGram {
        self.folds
            .last()
            .map_or_else(|| TermGram::zeros(t), |f| TermGram::clone(f))
    }
}

/// A structural causal model fitted to data over a fixed ADMG.
///
/// Fitted node models, cached regression Grams, and the topological order
/// are `Arc`-shared, so cloning an SCM (the engine cache of the
/// active-learning loop) is a handful of pointer bumps — never a copy of
/// residual vectors or columns.
#[derive(Debug, Clone)]
pub struct FittedScm {
    admg: Admg,
    nodes: Arc<Vec<NodeModel>>,
    /// Per-node segment Grams (`None` for roots), consumed by
    /// [`Self::refit_view`].
    grams: Arc<Vec<Option<NodeGrams>>>,
    /// Training data as a shared columnar view (kept for root values and
    /// sweeps); cloning the SCM bumps the view's `Arc`, never the columns.
    data: DataView,
    topo: Arc<Vec<NodeId>>,
    /// Sweep stride: expectation sweeps visit every `stride`-th row so the
    /// cost stays bounded on large datasets.
    stride: usize,
    /// The worker pool per-node regressions and batch simulation sweeps
    /// fan out over (inherited by [`Self::refit_view`] and clones).
    exec: Arc<Executor>,
    /// Epoch-pinned sweep-result cache consulted by
    /// [`Self::evaluate_plan`] (`None` = always recompute). Inherited by
    /// clones and warm refits, so one cache follows a tenant's whole
    /// data lineage — the epoch tag keeps cross-epoch reads impossible.
    sweep_cache: Option<Arc<SweepCache>>,
}

/// One node's fit result, computed independently on a worker.
type NodeFit = Result<(NodeModel, Option<NodeGrams>), StatsError>;

/// The residual injected for one node under a residual mode — the single
/// definition shared by [`FittedScm::simulate`] and the planner's
/// affected-node resimulation, so both paths are bit-identical by
/// construction.
fn residual_for(nm: &NodeModel, base_row: usize, mode: ResidualMode) -> f64 {
    match mode {
        ResidualMode::None => {
            if nm.model.is_none() {
                nm.residuals[base_row]
            } else {
                0.0
            }
        }
        ResidualMode::FromRow(r) => {
            if nm.model.is_none() {
                nm.residuals[base_row]
            } else {
                nm.residuals[r]
            }
        }
        ResidualMode::Blend { abduct_row, weight } => {
            if nm.model.is_none() {
                nm.residuals[base_row]
            } else {
                weight * nm.residuals[abduct_row] + (1.0 - weight) * nm.residuals[base_row]
            }
        }
    }
}

/// Swept rows simulated per topological pass by the batch sweep paths
/// (see the module docs: a throughput knob — lanes never share any
/// floating-point reduction, so the width is not observable in results).
pub const SIM_LANES: usize = 8;

/// Dense `do(·)` assignment map: `map[v] = Some(x)` iff `v` is clamped.
/// Built once per sweep (or per call) instead of scanning the assignment
/// list per topological node; first occurrence per node wins, the same
/// rule as the linear scan it replaces.
fn assignment_map(n_vars: usize, interventions: &[(NodeId, f64)]) -> Vec<Option<f64>> {
    let mut map = vec![None; n_vars];
    for &(node, x) in interventions {
        if map[node].is_none() {
            map[node] = Some(x);
        }
    }
    map
}

/// The per-lane residual modes of one lane of swept rows under a sweep's
/// row/residual policy.
fn lane_modes(rows: &[usize; SIM_LANES], mode: SweepMode) -> [ResidualMode; SIM_LANES] {
    let mut out = [ResidualMode::None; SIM_LANES];
    for (m, &r) in out.iter_mut().zip(rows) {
        *m = match mode {
            SweepMode::GFormula | SweepMode::Row(_) => ResidualMode::FromRow(r),
            SweepMode::Abduct { abduct_row, weight } => ResidualMode::Blend { abduct_row, weight },
        };
    }
    out
}

/// Folds one reduction from a sweep's result buffer, replaying the
/// legacy serial loops' exact arithmetic: row-order sums starting from
/// `0.0`, integer hit / ICE tallies divided once at the end, and the
/// empty-sweep answer of `0.0`. `at(row, node)` reads one per-row target
/// value; `full()` materializes a single-row sweep's whole simulated
/// vector (only [`Reduction::Values`] calls it). Because hits and misses
/// both fold through here, caching cannot perturb a single bit.
fn fold_consumer(
    c: &Reduction,
    rows: usize,
    at: impl Fn(usize, NodeId) -> f64,
    full: impl FnOnce() -> Vec<f64>,
) -> PlanOutput {
    if rows == 0 {
        if let Reduction::Values { .. } = c {
            panic!("single-row sweep produced no values");
        }
        // Empty sweeps (no training rows) answer 0.0, exactly as the
        // legacy entry points do.
        return PlanOutput::Scalar(0.0);
    }
    match c {
        Reduction::Mean { target, .. } => {
            let mut total = 0.0;
            for r in 0..rows {
                total += at(r, *target);
            }
            PlanOutput::Scalar(total / rows as f64)
        }
        Reduction::Probability { target, pred, .. } => {
            let mut hits = 0usize;
            for r in 0..rows {
                if pred(at(r, *target)) {
                    hits += 1;
                }
            }
            PlanOutput::Scalar(hits as f64 / rows as f64)
        }
        Reduction::Ice { goal, .. } => {
            let mut fixed = 0usize;
            let mut bad = 0usize;
            for r in 0..rows {
                if goal.thresholds.iter().all(|&(o, th)| at(r, o) <= th) {
                    fixed += 1;
                } else {
                    bad += 1;
                }
            }
            PlanOutput::Scalar((fixed as f64 - bad as f64) / rows as f64)
        }
        Reduction::Values { .. } => PlanOutput::Values(full()),
    }
}

/// Computes one node's Gram for one segment (the segment's own columns
/// are exactly one canonical chunk).
fn segment_gram(seg: &Arc<Segment>, terms: &[Term], v: NodeId) -> Arc<TermGram> {
    let cols: Vec<&[f64]> = seg.columns().iter().map(Vec::as_slice).collect();
    Arc::new(TermGram::of_chunk(terms, &cols, seg.col(v)))
}

/// Builds the polynomial term set for a node given its parents: intercept,
/// linear terms, squares, and pairwise interactions (interactions only when
/// the parent count stays small enough for the design to be well-posed).
fn node_terms(parents: &[NodeId]) -> Vec<Term> {
    let mut terms = vec![Term::intercept()];
    for &p in parents {
        terms.push(Term::linear(p));
    }
    if parents.len() <= 6 {
        for &p in parents {
            terms.push(Term::interaction(vec![p, p]));
        }
        for (i, &p) in parents.iter().enumerate() {
            for &q in parents.iter().skip(i + 1) {
                terms.push(Term::interaction(vec![p, q]));
            }
        }
    }
    terms
}

impl FittedScm {
    /// Fits the SCM from borrowed columns (builds a throwaway view).
    pub fn fit(admg: Admg, columns: &[Vec<f64>]) -> Result<Self, StatsError> {
        Self::fit_view(admg, &DataView::from_columns(columns))
    }

    /// Fits the SCM over a shared [`DataView`]: one regression per node
    /// with directed parents, over the process-default worker pool. The
    /// view is retained (Arc-shared, never copied) for simulation sweeps
    /// and counterfactual abduction.
    pub fn fit_view(admg: Admg, view: &DataView) -> Result<Self, StatsError> {
        Self::fit_view_on(admg, view, Executor::global())
    }

    /// [`Self::fit_view`] over an explicit worker pool. Per-node
    /// regressions are independent of each other, so they fan out over
    /// `exec` and are reassembled in node order — the fit (and the error
    /// reported, if any) is bit-identical for every worker count. The pool
    /// is retained for warm refits and batch simulation sweeps.
    pub fn fit_view_on(
        admg: Admg,
        view: &DataView,
        exec: Arc<Executor>,
    ) -> Result<Self, StatsError> {
        let columns = view.columns();
        let n_rows = view.n_rows();
        let n_vars = admg.n_nodes();
        assert_eq!(columns.len(), n_vars, "column/node count mismatch");
        let ids: Vec<usize> = (0..n_vars).collect();
        let fits = exec.par_map(&ids, |_, &v| -> NodeFit {
            let parents = admg.parents(v);
            if parents.is_empty() {
                return Ok((
                    NodeModel {
                        parents,
                        model: None,
                        residuals: columns[v].clone(),
                    },
                    None,
                ));
            }
            let terms = node_terms(&parents);
            // Normal equations accumulated and folded per segment (and
            // cached for warm refits); the in-order fold is the canonical
            // chunk fold, so this fit matches one over the contiguous
            // columns.
            let node_grams = NodeGrams::build(view.segments(), &terms, v, None);
            let gram = node_grams.total(terms.len());
            let model = fit_gram(&gram, columns, &columns[v], &terms)?;
            let pred = model.predict(columns);
            let residuals: Vec<f64> = columns[v]
                .iter()
                .zip(&pred)
                .map(|(obs, p)| obs - p)
                .collect();
            Ok((
                NodeModel {
                    parents,
                    model: Some(model),
                    residuals,
                },
                Some(node_grams),
            ))
        });
        let mut nodes = Vec::with_capacity(n_vars);
        let mut grams: Vec<Option<NodeGrams>> = Vec::with_capacity(n_vars);
        // Merge in node order; the first failing node's error is reported,
        // exactly as a sequential pass would.
        for fit in fits {
            let (node, gram) = fit?;
            nodes.push(node);
            grams.push(gram);
        }
        let topo = admg.topological_order();
        let stride = (n_rows / 256).max(1);
        Ok(Self {
            admg,
            nodes: Arc::new(nodes),
            grams: Arc::new(grams),
            data: view.clone(),
            topo: Arc::new(topo),
            stride,
            exec,
            sweep_cache: None,
        })
    }

    /// Warm-start refit over a (typically grown) view of the **same** ADMG:
    /// reuses the graph, the topological order, each node's parent list
    /// and polynomial term set, and — the O(new rows) part — every cached
    /// per-segment Gram whose segment is still `Arc`-shared with the new
    /// view, so only the appended/rebuilt segments' normal-equation
    /// contributions are recomputed before re-solving. Because the reused
    /// structure and Grams are exactly what [`Self::fit_view`] would
    /// rederive from the same ADMG and rows (term sets are a pure function
    /// of the parent list; Grams are canonical chunk sums), the result is
    /// bit-identical to a cold fit. When the view is the very table this
    /// SCM was fitted on, the fit is returned as a clone (`Arc` bumps)
    /// without touching the data at all.
    ///
    /// # Panics
    ///
    /// Panics if `view` has a different column count than the fitted ADMG.
    pub fn refit_view(&self, view: &DataView) -> Result<Self, StatsError> {
        if view.same_table(&self.data) {
            return Ok(self.clone());
        }
        let columns = view.columns();
        assert_eq!(
            columns.len(),
            self.nodes.len(),
            "column/node count mismatch"
        );
        let ids: Vec<usize> = (0..self.nodes.len()).collect();
        let fits = self.exec.par_map(&ids, |_, &v| -> NodeFit {
            let prev = &self.nodes[v];
            let Some(model) = &prev.model else {
                return Ok((
                    NodeModel {
                        parents: prev.parents.clone(),
                        model: None,
                        residuals: columns[v].clone(),
                    },
                    None,
                ));
            };
            let terms = &model.terms;
            let node_grams = NodeGrams::build(view.segments(), terms, v, self.grams[v].as_ref());
            let gram = node_grams.total(terms.len());
            let model = fit_gram(&gram, columns, &columns[v], terms)?;
            let pred = model.predict(columns);
            let residuals: Vec<f64> = columns[v]
                .iter()
                .zip(&pred)
                .map(|(obs, p)| obs - p)
                .collect();
            Ok((
                NodeModel {
                    parents: prev.parents.clone(),
                    model: Some(model),
                    residuals,
                },
                Some(node_grams),
            ))
        });
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut grams: Vec<Option<NodeGrams>> = Vec::with_capacity(self.nodes.len());
        for fit in fits {
            let (node, gram) = fit?;
            nodes.push(node);
            grams.push(gram);
        }
        Ok(Self {
            admg: self.admg.clone(),
            nodes: Arc::new(nodes),
            grams: Arc::new(grams),
            data: view.clone(),
            topo: Arc::clone(&self.topo),
            stride: (view.n_rows() / 256).max(1),
            exec: Arc::clone(&self.exec),
            // The cache follows the lineage across the epoch bump: hot
            // keys and allocation survive, stale entries can never hit.
            sweep_cache: self.sweep_cache.clone(),
        })
    }

    /// Attaches an epoch-pinned [`SweepCache`]: [`Self::evaluate_plan`]
    /// probes it (at this fit's data epoch) before scheduling lane tasks
    /// and inserts completed sweep buffers on miss. Never changes an
    /// answer — hits replay the exact stored bits through the same fold
    /// the miss path uses. Clones and warm refits inherit the cache.
    pub fn with_sweep_cache(mut self, cache: Arc<SweepCache>) -> Self {
        self.sweep_cache = Some(cache);
        self
    }

    /// A clone of this fit that bypasses the sweep cache entirely — the
    /// reference path cache-on results are asserted against.
    pub fn without_sweep_cache(&self) -> Self {
        Self {
            sweep_cache: None,
            ..self.clone()
        }
    }

    /// The attached sweep cache, if any.
    pub fn sweep_cache(&self) -> Option<&Arc<SweepCache>> {
        self.sweep_cache.as_ref()
    }

    /// The underlying ADMG.
    pub fn admg(&self) -> &Admg {
        &self.admg
    }

    /// Number of training rows.
    pub fn n_rows(&self) -> usize {
        self.data.n_rows()
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Training data (column-major).
    pub fn data(&self) -> &[Vec<f64>] {
        self.data.columns()
    }

    /// The shared training-data view.
    pub fn view(&self) -> &DataView {
        &self.data
    }

    /// Training R² of a node's functional model (1.0 for roots).
    pub fn node_r2(&self, v: NodeId) -> f64 {
        self.nodes[v].model.as_ref().map_or(1.0, |m| m.r2)
    }

    /// Fitted polynomial coefficients of a node's functional model
    /// (`None` for roots) — exposed so equivalence tests can assert SCM
    /// fits are bit-identical across thread counts.
    pub fn coefficients_of(&self, v: NodeId) -> Option<&[f64]> {
        self.nodes[v]
            .model
            .as_ref()
            .map(|m| m.coefficients.as_slice())
    }

    /// Directed parents the node's functional model was fitted on.
    pub fn parents_of(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[v].parents
    }

    /// Simulates all node values for one exogenous configuration.
    ///
    /// * `base_row` supplies root values and (depending on `mode`)
    ///   residuals.
    /// * `interventions` are `do(node = value)` pairs: the node's
    ///   functional dependence is severed and the value clamped.
    pub fn simulate(
        &self,
        base_row: usize,
        interventions: &[(NodeId, f64)],
        mode: ResidualMode,
    ) -> Vec<f64> {
        self.simulate_assigned(
            base_row,
            &assignment_map(self.n_vars(), interventions),
            mode,
        )
    }

    /// [`Self::simulate`] over a precomputed dense assignment map —
    /// O(1) clamp lookups per topological node instead of a scan of the
    /// intervention list.
    fn simulate_assigned(
        &self,
        base_row: usize,
        assign: &[Option<f64>],
        mode: ResidualMode,
    ) -> Vec<f64> {
        let mut values = vec![0.0; self.n_vars()];
        for &v in self.topo.iter() {
            if let Some(x) = assign[v] {
                values[v] = x;
                continue;
            }
            let nm = &self.nodes[v];
            let residual = residual_for(nm, base_row, mode);
            values[v] = match &nm.model {
                None => residual,
                Some(m) => m.predict_row(&|i: usize| values[i]) + residual,
            };
        }
        values
    }

    /// Re-simulates only the `affected` nodes (intervened nodes plus their
    /// descendants, in topological order) on top of a no-intervention
    /// `baseline` sweep of the same `(base_row, mode)`. Every node outside
    /// the affected set has bit-identical inputs in both sweeps, so the
    /// result equals a full [`Self::simulate`] with the interventions —
    /// the planner's ancestor-sharing shortcut.
    fn resimulate_affected(
        &self,
        baseline: &[f64],
        assign: &[Option<f64>],
        affected: &[NodeId],
        base_row: usize,
        mode: ResidualMode,
    ) -> Vec<f64> {
        let mut values = baseline.to_vec();
        for &v in affected {
            if let Some(x) = assign[v] {
                values[v] = x;
                continue;
            }
            let nm = &self.nodes[v];
            let residual = residual_for(nm, base_row, mode);
            values[v] = match &nm.model {
                None => residual,
                Some(m) => m.predict_row(&|i: usize| values[i]) + residual,
            };
        }
        values
    }

    /// One node's lane update: `SIM_LANES` fused predict/residual
    /// evaluations off a single load of the node's coefficients. Each
    /// lane's arithmetic is exactly [`Self::simulate_assigned`]'s scalar
    /// body for that lane's row — the per-term expressions and the term
    /// fold order match [`PolyModel::predict_row`] — so every lane is
    /// bit-identical to the scalar sweep it replaces (see the module
    /// docs).
    fn node_lane_update(
        &self,
        v: NodeId,
        values: &mut [[f64; SIM_LANES]],
        assign: &[Option<f64>],
        rows: &[usize; SIM_LANES],
        modes: &[ResidualMode; SIM_LANES],
    ) {
        if let Some(x) = assign[v] {
            values[v] = [x; SIM_LANES];
            return;
        }
        let nm = &self.nodes[v];
        let mut res = [0.0f64; SIM_LANES];
        for ((r, &row), &mode) in res.iter_mut().zip(rows).zip(modes) {
            *r = residual_for(nm, row, mode);
        }
        let Some(m) = &nm.model else {
            values[v] = res;
            return;
        };
        let mut pred = [0.0f64; SIM_LANES];
        for (term, &b) in m.terms.iter().zip(&m.coefficients) {
            match term.0.as_slice() {
                [] => pred.iter_mut().for_each(|p| *p += b),
                [i] => {
                    let vi = values[*i];
                    for (p, &a) in pred.iter_mut().zip(&vi) {
                        *p += b * a;
                    }
                }
                [i, j] => {
                    let (vi, vj) = (values[*i], values[*j]);
                    for ((p, &a), &c) in pred.iter_mut().zip(&vi).zip(&vj) {
                        *p += b * (a * c);
                    }
                }
                idx => {
                    for (l, p) in pred.iter_mut().enumerate() {
                        *p += b * idx.iter().map(|&i| values[i][l]).product::<f64>();
                    }
                }
            }
        }
        for ((out, &p), &r) in values[v].iter_mut().zip(&pred).zip(&res) {
            *out = p + r;
        }
    }

    /// Simulates `SIM_LANES` exogenous rows in one topological pass under
    /// one shared assignment map (node-major lane layout:
    /// `result[node][lane]`). Lane `l` is bit-identical to
    /// `simulate_assigned(rows[l], assign, modes[l])`.
    fn simulate_lanes(
        &self,
        rows: &[usize; SIM_LANES],
        assign: &[Option<f64>],
        modes: &[ResidualMode; SIM_LANES],
    ) -> Vec<[f64; SIM_LANES]> {
        let mut values = vec![[0.0; SIM_LANES]; self.n_vars()];
        for &v in self.topo.iter() {
            self.node_lane_update(v, &mut values, assign, rows, modes);
        }
        values
    }

    /// Lane variant of [`Self::resimulate_affected`]: all `SIM_LANES`
    /// lanes share one affected-set computation and re-simulate only the
    /// affected nodes on top of the lane baseline.
    fn resimulate_affected_lanes(
        &self,
        baseline: &[[f64; SIM_LANES]],
        assign: &[Option<f64>],
        affected: &[NodeId],
        rows: &[usize; SIM_LANES],
        modes: &[ResidualMode; SIM_LANES],
    ) -> Vec<[f64; SIM_LANES]> {
        let mut values = baseline.to_vec();
        for &v in affected {
            self.node_lane_update(v, &mut values, assign, rows, modes);
        }
        values
    }

    /// The strided sweep-row indices a g-formula query visits.
    pub(crate) fn sweep_rows(&self, opts: &SimulationOptions) -> Vec<usize> {
        let stride = opts.stride.unwrap_or(self.stride).max(1);
        (0..self.n_rows()).step_by(stride).collect()
    }

    /// Executes a compiled [`QueryPlan`]: one topological baseline sweep
    /// per `(row, residual mode)` shared by every intervention of that
    /// batch (each intervention re-simulates only its intervened nodes
    /// and their descendants), independent `(row, sweep-chunk)` items
    /// fanned over the shared pool via `par_map`, and per-item reductions
    /// folded in canonical plan order — so every answer is bit-identical
    /// to the legacy one-intervention-at-a-time serial loops at any
    /// thread count (`tests/query_plan_determinism.rs`).
    ///
    /// Every sweep's simulated per-row target values are assembled into a
    /// *result buffer* in ascending row order, and all reductions fold
    /// from buffers — which makes the buffer the exact unit of caching.
    /// With a [`SweepCache`] attached ([`Self::with_sweep_cache`]), each
    /// sweep's canonical signature is probed at this fit's data epoch
    /// before any task is scheduled: a hit skips the sweep's simulation
    /// entirely (a fully-hit plan schedules nothing and pays only the
    /// fold), a miss runs as always and inserts its buffer. Hits replay
    /// stored bits through the identical fold, so cache-on, cache-off,
    /// and standalone evaluation are bitwise equal
    /// (`tests/sweep_cache_determinism.rs`).
    pub fn evaluate_plan(&self, plan: &QueryPlan) -> PlanResults {
        /// Same-row sweeps are chunked this many per work item so large
        /// single-row batches (e.g. one counterfactual per repair) still
        /// fan out across workers.
        const ROW_SWEEP_CHUNK: usize = 8;

        let n_vars = self.n_vars();
        let strided = self.sweep_rows(&plan.opts);
        let stride = plan.opts.stride.unwrap_or(self.stride).max(1);
        let epoch = self.data.epoch();

        // Probe phase: look every sweep up at this fit's epoch. A `Some`
        // buffer needs no execution state, no group, and no tasks.
        let cache = self.sweep_cache.as_deref();
        let mut buffers: Vec<Option<Arc<Vec<f64>>>> = plan
            .sweeps
            .iter()
            .map(|sw| cache.and_then(|c| c.get(&SweepCache::signature(sw, stride), epoch)))
            .collect();

        // Per-miss-sweep execution state: the affected node set
        // (intervened ∪ descendants, topological order) and the dense
        // assignment map the simulators index per node (instead of
        // scanning the assignment list).
        struct SweepExec {
            affected: Vec<NodeId>,
            assign: Vec<Option<f64>>,
        }
        let execs: Vec<Option<SweepExec>> = plan
            .sweeps
            .iter()
            .zip(&buffers)
            .map(|(sw, buf)| {
                if buf.is_some() {
                    return None;
                }
                let mut hit = vec![false; n_vars];
                for &(node, _) in &sw.intervention.assignments {
                    hit[node] = true;
                    for d in self.admg.descendants(node) {
                        hit[d] = true;
                    }
                }
                Some(SweepExec {
                    affected: self.topo.iter().copied().filter(|&v| hit[v]).collect(),
                    assign: assignment_map(n_vars, &sw.intervention.assignments),
                })
            })
            .collect();

        // Group miss sweeps sharing (row list, per-row residual mode):
        // all g-formula sweeps form one group; abduction sweeps group by
        // (fault row, weight); single-row sweeps group by row. Keyed by
        // the mode's hash identity; first-seen order, exactly as the
        // linear scan it replaces produced. A group every one of whose
        // sweeps hit the cache never forms, so its shared baseline sweep
        // is never simulated — the cache's whole payoff.
        let mut groups: Vec<(SweepMode, Vec<usize>)> = Vec::new();
        let mut group_index: HashMap<ModeKey, usize> = HashMap::new();
        for (si, sw) in plan.sweeps.iter().enumerate() {
            if buffers[si].is_some() {
                continue;
            }
            match group_index.entry(sw.mode.key()) {
                std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].1.push(si),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push((sw.mode, vec![si]));
                }
            }
        }

        /// The work a task simulates.
        enum TaskKind {
            /// Up to [`SIM_LANES`] consecutive strided rows of a
            /// whole-table (g-formula / abduction) group, all of the
            /// group's sweeps, one lane baseline per task. `rows` is
            /// padded by repeating the final row; lanes `>= n` are
            /// simulated and discarded.
            Lanes { rows: [usize; SIM_LANES], n: usize },
            /// One chunk `sweeps[lo..hi]` of a single-row group, sharing
            /// the group's baseline slot: single-row groups split into
            /// several chunk tasks, which compute their common
            /// `(row, mode)` baseline once and share it.
            Chunk { lo: usize, hi: usize, slot: usize },
        }
        /// One work item of the sweep fan-out.
        struct Task {
            row: usize,
            mode: SweepMode,
            sweeps: Arc<Vec<usize>>,
            kind: TaskKind,
        }
        let mut tasks: Vec<Task> = Vec::new();
        let mut n_row_groups = 0usize;
        for (mode, sweeps) in groups {
            let sweeps = Arc::new(sweeps);
            match mode {
                SweepMode::GFormula | SweepMode::Abduct { .. } => {
                    for chunk in strided.chunks(SIM_LANES) {
                        let mut rows = [chunk[chunk.len() - 1]; SIM_LANES];
                        rows[..chunk.len()].copy_from_slice(chunk);
                        tasks.push(Task {
                            row: rows[0],
                            mode,
                            sweeps: Arc::clone(&sweeps),
                            kind: TaskKind::Lanes {
                                rows,
                                n: chunk.len(),
                            },
                        });
                    }
                }
                SweepMode::Row(row) => {
                    let slot = n_row_groups;
                    n_row_groups += 1;
                    let mut lo = 0;
                    while lo < sweeps.len() {
                        let hi = (lo + ROW_SWEEP_CHUNK).min(sweeps.len());
                        tasks.push(Task {
                            row,
                            mode,
                            sweeps: Arc::clone(&sweeps),
                            kind: TaskKind::Chunk { lo, hi, slot },
                        });
                        lo = hi;
                    }
                }
            }
        }

        // Shared baseline slots for single-row groups: each group's
        // no-intervention sweep is simulated exactly once and shared by
        // all of its chunk tasks (the first task to need it fills the
        // slot; the value is a pure function of the fit either way).
        let row_baselines: Vec<std::sync::OnceLock<Vec<f64>>> = (0..n_row_groups)
            .map(|_| std::sync::OnceLock::new())
            .collect();
        let no_assign: Vec<Option<f64>> = vec![None; n_vars];
        // Each task captures, per miss sweep it covers, the sweep's raw
        // per-row buffer slice: the declared targets' simulated values in
        // row-major ascending-row order (lane tasks read lanes back lane
        // 0 first), or the full simulated vector for a single-row sweep.
        let task_results = self.exec.par_map(&tasks, |_, t| {
            let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
            match t.kind {
                TaskKind::Lanes { rows, n } => {
                    let modes = lane_modes(&rows, t.mode);
                    let baseline = self.simulate_lanes(&rows, &no_assign, &modes);
                    for &si in t.sweeps.iter() {
                        let ex = execs[si].as_ref().expect("miss sweeps carry exec state");
                        let storage;
                        let values: &[[f64; SIM_LANES]] =
                            if plan.sweeps[si].intervention.assignments.is_empty() {
                                &baseline
                            } else {
                                storage = self.resimulate_affected_lanes(
                                    &baseline,
                                    &ex.assign,
                                    &ex.affected,
                                    &rows,
                                    &modes,
                                );
                                &storage
                            };
                        let targets = &plan.sweeps[si].intervention.targets;
                        let mut cap = Vec::with_capacity(n * targets.len());
                        cap.extend(
                            (0..n).flat_map(|l| targets.iter().map(move |&tgt| values[tgt][l])),
                        );
                        out.push((si, cap));
                    }
                }
                TaskKind::Chunk { lo, hi, slot } => {
                    let mode = ResidualMode::FromRow(t.row);
                    let baseline: &[f64] = row_baselines[slot]
                        .get_or_init(|| self.simulate_assigned(t.row, &no_assign, mode));
                    for &si in &t.sweeps[lo..hi] {
                        let ex = execs[si].as_ref().expect("miss sweeps carry exec state");
                        let values: Vec<f64> =
                            if plan.sweeps[si].intervention.assignments.is_empty() {
                                baseline.to_vec()
                            } else {
                                self.resimulate_affected(
                                    baseline,
                                    &ex.assign,
                                    &ex.affected,
                                    t.row,
                                    mode,
                                )
                            };
                        out.push((si, values));
                    }
                }
            }
            out
        });

        // Assemble miss buffers: tasks are ordered (group, then ascending
        // row / chunk) and `par_map` preserves input order, so appending
        // each task's captures replays every sweep's ascending row order.
        // Completed buffers are inserted into the cache at this epoch.
        let mut assembled: Vec<Vec<f64>> = plan.sweeps.iter().map(|_| Vec::new()).collect();
        for caps in task_results {
            for (si, cap) in caps {
                let buf = &mut assembled[si];
                if buf.is_empty() {
                    *buf = cap;
                } else {
                    buf.extend_from_slice(&cap);
                }
            }
        }
        for (si, sw) in plan.sweeps.iter().enumerate() {
            if buffers[si].is_none() {
                let buf = Arc::new(std::mem::take(&mut assembled[si]));
                if let Some(c) = cache {
                    c.put(SweepCache::signature(sw, stride), epoch, Arc::clone(&buf));
                }
                buffers[si] = Some(buf);
            }
        }

        // Canonical fold, hit and miss alike: each consumer folds its
        // sweep's buffer in ascending row order with the legacy serial
        // loops' arithmetic (row-order sums, hit counts, ICE tallies).
        let outputs = plan
            .consumers
            .iter()
            .map(|c| {
                let sw = &plan.sweeps[c.sweep()];
                let buf = buffers[c.sweep()]
                    .as_ref()
                    .expect("every sweep has a buffer");
                match sw.mode {
                    // Single-row sweeps: the buffer is the full simulated
                    // vector, indexed by node directly.
                    SweepMode::Row(_) => {
                        fold_consumer(c, 1, |_, node| buf[node], || buf.as_ref().clone())
                    }
                    // Whole-table sweeps: row-major (row, target) layout;
                    // every consumer read is a declared target.
                    SweepMode::GFormula | SweepMode::Abduct { .. } => {
                        let targets = &sw.intervention.targets;
                        fold_consumer(
                            c,
                            strided.len(),
                            |r, node| {
                                let ti = targets
                                    .binary_search(&node)
                                    .expect("consumer reads a declared sweep target");
                                buf[r * targets.len() + ti]
                            },
                            || unreachable!("value-vector consumers attach to single-row sweeps"),
                        )
                    }
                }
            })
            .collect();
        PlanResults { outputs }
    }

    /// Simulates every listed training row's exogenous draw under
    /// `interventions`, fanned over the worker pool in [`SIM_LANES`]-row
    /// lanes, results **in row order**. `mode_of` picks the residual mode
    /// per swept row (e.g. `|r| ResidualMode::FromRow(r)` for the
    /// g-formula sweep). Each row's simulation is a pure function of the
    /// fit and lanes share no arithmetic, so the batch is bit-identical
    /// to a serial per-row loop for every worker count and lane width.
    pub fn simulate_batch<M>(
        &self,
        rows: &[usize],
        interventions: &[(NodeId, f64)],
        mode_of: M,
    ) -> Vec<Vec<f64>>
    where
        M: Fn(usize) -> ResidualMode + Sync,
    {
        let assign = assignment_map(self.n_vars(), interventions);
        let chunks: Vec<&[usize]> = rows.chunks(SIM_LANES).collect();
        let per_chunk = self.exec.par_map(&chunks, |_, chunk| {
            let mut lane_rows = [*chunk.last().expect("chunks are non-empty"); SIM_LANES];
            lane_rows[..chunk.len()].copy_from_slice(chunk);
            let mut modes = [ResidualMode::None; SIM_LANES];
            for (m, &r) in modes.iter_mut().zip(&lane_rows) {
                *m = mode_of(r);
            }
            let lanes = self.simulate_lanes(&lane_rows, &assign, &modes);
            (0..chunk.len())
                .map(|l| lanes.iter().map(|lane| lane[l]).collect::<Vec<f64>>())
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Interventional expectation `E[target | do(interventions)]`,
    /// estimated by the empirical g-formula: sweep the training rows
    /// (strided), treat each row's exogenous vector as one Monte-Carlo
    /// draw, and average the simulated target.
    pub fn interventional_expectation(
        &self,
        target: NodeId,
        interventions: &[(NodeId, f64)],
    ) -> f64 {
        self.interventional_expectation_with(target, interventions, &SimulationOptions::default())
    }

    /// [`Self::interventional_expectation`] with explicit
    /// [`SimulationOptions`]. The batch row evaluation fans out over the
    /// pool; the average folds the ordered per-row values sequentially, so
    /// the result is bit-identical to the serial sweep.
    pub fn interventional_expectation_with(
        &self,
        target: NodeId,
        interventions: &[(NodeId, f64)],
        opts: &SimulationOptions,
    ) -> f64 {
        if self.n_rows() == 0 {
            return 0.0;
        }
        let rows = self.sweep_rows(opts);
        let vals = self.simulate_batch(&rows, interventions, ResidualMode::FromRow);
        let total: f64 = vals.iter().map(|v| v[target]).sum();
        total / rows.len() as f64
    }

    /// Interventional probability `P(pred(target) | do(interventions))`
    /// under stochastic abduction against `abduct_row` (Eq 5's
    /// counterfactual probabilities; `weight = 0` recovers the plain
    /// interventional distribution).
    pub fn interventional_probability(
        &self,
        target: NodeId,
        interventions: &[(NodeId, f64)],
        abduct_row: usize,
        weight: f64,
        pred: &dyn Fn(f64) -> bool,
    ) -> f64 {
        self.interventional_probability_with(
            target,
            interventions,
            abduct_row,
            weight,
            pred,
            &SimulationOptions::default(),
        )
    }

    /// [`Self::interventional_probability`] with explicit
    /// [`SimulationOptions`] (batch row evaluation over the pool).
    pub fn interventional_probability_with(
        &self,
        target: NodeId,
        interventions: &[(NodeId, f64)],
        abduct_row: usize,
        weight: f64,
        pred: &dyn Fn(f64) -> bool,
        opts: &SimulationOptions,
    ) -> f64 {
        if self.n_rows() == 0 {
            return 0.0;
        }
        let rows = self.sweep_rows(opts);
        let vals = self.simulate_batch(&rows, interventions, |_| ResidualMode::Blend {
            abduct_row,
            weight,
        });
        let hits = vals.iter().filter(|v| pred(v[target])).count();
        hits as f64 / rows.len() as f64
    }

    /// Deterministic counterfactual: abduct the residuals of `row`, apply
    /// the interventions, and predict all node values (Pearl's
    /// abduction–action–prediction).
    pub fn counterfactual(&self, row: usize, interventions: &[(NodeId, f64)]) -> Vec<f64> {
        self.simulate(row, interventions, ResidualMode::FromRow(row))
    }

    /// Conditional-expectation prediction `E[target | X = row]` for an
    /// unmeasured configuration `row` (used for performance prediction, the
    /// paper's `semopy` role). Roots are clamped to the supplied values and
    /// expectations propagate with zero residuals.
    pub fn predict_from_assignment(&self, assignment: &[(NodeId, f64)], target: NodeId) -> f64 {
        let assign = assignment_map(self.n_vars(), assignment);
        let mut values = vec![0.0; self.n_vars()];
        for &v in self.topo.iter() {
            if let Some(x) = assign[v] {
                values[v] = x;
                continue;
            }
            values[v] = match &self.nodes[v].model {
                None => {
                    // Unassigned root: fall back to its empirical mean
                    // (cached on the shared view).
                    self.data.column_stats()[v].mean
                }
                Some(m) => m.predict_row(&|i: usize| values[i]),
            };
        }
        values[target]
    }

    /// Prediction residuals `observed − predicted` of one *unseen*
    /// measurement row against this fitted model, one per `target` node.
    ///
    /// Every non-target column of `row` is clamped as an assignment and a
    /// single topological sweep propagates conditional expectations into
    /// the targets (zero injected residuals) — the targets themselves are
    /// deliberately left unassigned so their observed values never leak
    /// into their own predictions. The result is a pure function of
    /// `(model, row)`, which is what keeps the drift detectors built on
    /// top deterministic across thread counts and flush boundaries.
    pub fn residuals_against(&self, row: &[f64], targets: &[NodeId]) -> Vec<f64> {
        assert_eq!(row.len(), self.n_vars(), "row width mismatch");
        let mut assign: Vec<Option<f64>> = row.iter().map(|&x| Some(x)).collect();
        for &t in targets {
            assign[t] = None;
        }
        let mut values = vec![0.0; self.n_vars()];
        for &v in self.topo.iter() {
            if let Some(x) = assign[v] {
                values[v] = x;
                continue;
            }
            values[v] = match &self.nodes[v].model {
                None => self.data.column_stats()[v].mean,
                Some(m) => m.predict_row(&|i: usize| values[i]),
            };
        }
        targets.iter().map(|&t| row[t] - values[t]).collect()
    }

    /// Root-mean-square of a node's training residuals, floored at
    /// `1e-12` so it is always a valid divisor — the unit scale the
    /// ingest layer normalizes streaming residuals by, making drift
    /// thresholds dimensionless across objectives.
    pub fn residual_rms(&self, v: NodeId) -> f64 {
        let r = &self.nodes[v].residuals;
        if r.is_empty() {
            return 1e-12;
        }
        let ms = r.iter().map(|x| x * x).sum::<f64>() / r.len() as f64;
        ms.sqrt().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    /// X → M → Y with known coefficients: M = 2X + e₁, Y = −3M + e₂.
    fn chain_scm(n: usize) -> FittedScm {
        let mut s = 1u64;
        let mut x = Vec::new();
        let mut m = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let xi = lcg(&mut s) * 2.0;
            let mi = 2.0 * xi + 0.1 * lcg(&mut s);
            let yi = -3.0 * mi + 0.1 * lcg(&mut s);
            x.push(xi);
            m.push(mi);
            y.push(yi);
        }
        let mut g = Admg::new(vec!["x".into(), "m".into(), "y".into()]);
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        FittedScm::fit(g, &[x, m, y]).unwrap()
    }

    #[test]
    fn interventional_expectation_matches_linear_theory() {
        let scm = chain_scm(600);
        // E[Y | do(X = 1)] = −3·2·1 = −6.
        let e1 = scm.interventional_expectation(2, &[(0, 1.0)]);
        assert!((e1 + 6.0).abs() < 0.3, "E[Y|do(X=1)] = {e1}");
        let e0 = scm.interventional_expectation(2, &[(0, 0.0)]);
        assert!(e0.abs() < 0.3, "E[Y|do(X=0)] = {e0}");
    }

    #[test]
    fn intervening_on_mediator_cuts_upstream_effect() {
        let scm = chain_scm(600);
        // do(M = 0) makes Y independent of X.
        let with_x = scm.interventional_expectation(2, &[(1, 0.0), (0, 5.0)]);
        let without_x = scm.interventional_expectation(2, &[(1, 0.0)]);
        assert!((with_x - without_x).abs() < 0.2);
    }

    #[test]
    fn counterfactual_reproduces_factual_under_no_intervention() {
        let scm = chain_scm(300);
        for row in [0usize, 7, 123] {
            let cf = scm.counterfactual(row, &[]);
            for (v, &cfv) in cf.iter().enumerate().take(3) {
                assert!(
                    (cfv - scm.data()[v][row]).abs() < 1e-8,
                    "node {v} row {row}: {} vs {}",
                    cfv,
                    scm.data()[v][row]
                );
            }
        }
    }

    #[test]
    fn counterfactual_applies_intervention_with_abducted_noise() {
        let scm = chain_scm(300);
        let row = 11;
        let cf = scm.counterfactual(row, &[(0, 0.5)]);
        assert!((cf[0] - 0.5).abs() < 1e-12);
        // With abducted (small) residuals the counterfactual Y tracks
        // the structural path −6·0.5 = −3 within residual tolerance.
        assert!((cf[2] + 3.0).abs() < 0.5, "cf Y = {}", cf[2]);
    }

    #[test]
    fn probability_queries_are_calibrated() {
        let scm = chain_scm(600);
        // Under do(X = 1), Y ≈ −6: P(Y < −3) should be essentially 1.
        let p = scm.interventional_probability(2, &[(0, 1.0)], 0, 0.0, &|y| y < -3.0);
        assert!(p > 0.95, "p = {p}");
        let p2 = scm.interventional_probability(2, &[(0, 1.0)], 0, 0.0, &|y| y > 0.0);
        assert!(p2 < 0.05, "p2 = {p2}");
    }

    #[test]
    fn prediction_for_unseen_assignment() {
        let scm = chain_scm(600);
        let y = scm.predict_from_assignment(&[(0, 0.8)], 2);
        assert!((y + 4.8).abs() < 0.3, "predicted {y}");
    }

    #[test]
    fn warm_refit_identical_to_cold_fit() {
        let scm = chain_scm(300);
        // Grow the sample and refit warm vs cold.
        let grown = scm
            .view()
            .append_rows(&[vec![0.5, 1.1, -3.2], vec![-0.25, -0.4, 1.3]]);
        let warm = scm.refit_view(&grown).unwrap();
        let cold = FittedScm::fit(scm.admg().clone(), grown.columns()).unwrap();
        assert_eq!(warm.n_rows(), 302);
        for v in 0..3 {
            assert_eq!(warm.node_r2(v).to_bits(), cold.node_r2(v).to_bits());
            assert_eq!(warm.parents_of(v), cold.parents_of(v));
            for row in [0usize, 150, 301] {
                let w = warm.counterfactual(row, &[(0, 0.3)]);
                let c = cold.counterfactual(row, &[(0, 0.3)]);
                for (a, b) in w.iter().zip(&c) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {row} diverged");
                }
            }
        }
        // Same-table refit is a structural clone.
        let same = scm.refit_view(scm.view()).unwrap();
        assert_eq!(same.n_rows(), scm.n_rows());
    }

    #[test]
    fn parallel_fit_bit_identical_across_pools() {
        let serial = chain_scm(300);
        let view = serial.view().clone();
        for threads in [2usize, 8] {
            let pool = Executor::new(threads);
            let par = FittedScm::fit_view_on(serial.admg().clone(), &view, pool).unwrap();
            for v in 0..3 {
                assert_eq!(par.node_r2(v).to_bits(), serial.node_r2(v).to_bits());
                match (par.coefficients_of(v), serial.coefficients_of(v)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.len(), b.len());
                        for (x, y) in a.iter().zip(b) {
                            assert_eq!(x.to_bits(), y.to_bits(), "threads {threads} node {v}");
                        }
                    }
                    other => panic!("model presence diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn batch_sweep_matches_serial_loop() {
        let scm = chain_scm(600);
        // The batch (pool) sweep must reproduce the serial fold bit for
        // bit, and an explicit stride of 1 must visit every row.
        let e_default = scm.interventional_expectation(2, &[(0, 1.0)]);
        let e_again =
            scm.interventional_expectation_with(2, &[(0, 1.0)], &SimulationOptions::default());
        assert_eq!(e_default.to_bits(), e_again.to_bits());
        let rows: Vec<usize> = (0..scm.n_rows()).step_by(scm.stride).collect();
        let batch = scm.simulate_batch(&rows, &[(0, 1.0)], ResidualMode::FromRow);
        let total: f64 = batch.iter().map(|v| v[2]).sum();
        assert_eq!((total / rows.len() as f64).to_bits(), e_default.to_bits());
        let p = scm.interventional_probability(2, &[(0, 1.0)], 0, 0.0, &|y| y < -3.0);
        let p_strided = scm.interventional_probability_with(
            2,
            &[(0, 1.0)],
            0,
            0.0,
            &|y| y < -3.0,
            &SimulationOptions { stride: Some(1) },
        );
        assert!(p > 0.9 && p_strided > 0.9);
    }

    #[test]
    fn node_r2_high_for_well_specified_models() {
        let scm = chain_scm(600);
        assert!(scm.node_r2(1) > 0.98);
        assert!(scm.node_r2(2) > 0.98);
        assert_eq!(scm.node_r2(0), 1.0); // root
    }
}
