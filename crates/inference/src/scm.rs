//! Fitted structural causal models over an ADMG.
//!
//! Each non-root node gets a polynomial functional node (§3: "we
//! characterize the functional nodes with polynomial models") regressed on
//! its directed parents; residuals are stored per training row. Roots keep
//! their observed values. Simulation draws the *entire* exogenous vector
//! from one training row at a time, which preserves the empirical joint of
//! the noise terms — in particular, residual correlations induced by
//! latent confounders (bidirected edges) survive into the interventional
//! distribution instead of being discarded.

use unicorn_graph::{Admg, NodeId};
use unicorn_stats::dataview::DataView;
use unicorn_stats::regression::{fit_terms, PolyModel, Term};
use unicorn_stats::StatsError;

/// How residual noise is injected during simulation.
#[derive(Debug, Clone, Copy)]
pub enum ResidualMode {
    /// No noise: propagate conditional expectations.
    None,
    /// Use the residuals of a specific training row (abduction).
    FromRow(usize),
    /// Blend the abducted residuals of row `.0` with the residuals of the
    /// sweep row, weighted `w·abducted + (1−w)·sweep` — the "stochastic
    /// abduction" used for probability-valued counterfactuals (Eq 5).
    Blend { abduct_row: usize, weight: f64 },
}

/// The functional node fitted for one variable.
#[derive(Debug, Clone)]
struct NodeModel {
    parents: Vec<NodeId>,
    /// `None` for root nodes (no directed parents).
    model: Option<PolyModel>,
    /// Per-training-row residuals (`observed − predicted`); for roots the
    /// residual is defined as the observed value itself.
    residuals: Vec<f64>,
}

/// A structural causal model fitted to data over a fixed ADMG.
#[derive(Debug, Clone)]
pub struct FittedScm {
    admg: Admg,
    nodes: Vec<NodeModel>,
    /// Training data as a shared columnar view (kept for root values and
    /// sweeps); cloning the SCM bumps the view's `Arc`, never the columns.
    data: DataView,
    topo: Vec<NodeId>,
    /// Sweep stride: expectation sweeps visit every `stride`-th row so the
    /// cost stays bounded on large datasets.
    stride: usize,
}

/// Builds the polynomial term set for a node given its parents: intercept,
/// linear terms, squares, and pairwise interactions (interactions only when
/// the parent count stays small enough for the design to be well-posed).
fn node_terms(parents: &[NodeId]) -> Vec<Term> {
    let mut terms = vec![Term::intercept()];
    for &p in parents {
        terms.push(Term::linear(p));
    }
    if parents.len() <= 6 {
        for &p in parents {
            terms.push(Term::interaction(vec![p, p]));
        }
        for (i, &p) in parents.iter().enumerate() {
            for &q in parents.iter().skip(i + 1) {
                terms.push(Term::interaction(vec![p, q]));
            }
        }
    }
    terms
}

impl FittedScm {
    /// Fits the SCM from borrowed columns (builds a throwaway view).
    pub fn fit(admg: Admg, columns: &[Vec<f64>]) -> Result<Self, StatsError> {
        Self::fit_view(admg, &DataView::from_columns(columns))
    }

    /// Fits the SCM over a shared [`DataView`]: one regression per node
    /// with directed parents. The view is retained (Arc-shared, never
    /// copied) for simulation sweeps and counterfactual abduction.
    pub fn fit_view(admg: Admg, view: &DataView) -> Result<Self, StatsError> {
        let columns = view.columns();
        let n_rows = view.n_rows();
        let n_vars = admg.n_nodes();
        assert_eq!(columns.len(), n_vars, "column/node count mismatch");
        let mut nodes = Vec::with_capacity(n_vars);
        for v in 0..n_vars {
            let parents = admg.parents(v);
            if parents.is_empty() {
                nodes.push(NodeModel {
                    parents,
                    model: None,
                    residuals: columns[v].clone(),
                });
                continue;
            }
            let terms = node_terms(&parents);
            let model = fit_terms(columns, &columns[v], &terms)?;
            let pred = model.predict(columns);
            let residuals: Vec<f64> = columns[v]
                .iter()
                .zip(&pred)
                .map(|(obs, p)| obs - p)
                .collect();
            nodes.push(NodeModel {
                parents,
                model: Some(model),
                residuals,
            });
        }
        let topo = admg.topological_order();
        let stride = (n_rows / 256).max(1);
        Ok(Self {
            admg,
            nodes,
            data: view.clone(),
            topo,
            stride,
        })
    }

    /// The underlying ADMG.
    pub fn admg(&self) -> &Admg {
        &self.admg
    }

    /// Number of training rows.
    pub fn n_rows(&self) -> usize {
        self.data.n_rows()
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Training data (column-major).
    pub fn data(&self) -> &[Vec<f64>] {
        self.data.columns()
    }

    /// The shared training-data view.
    pub fn view(&self) -> &DataView {
        &self.data
    }

    /// Training R² of a node's functional model (1.0 for roots).
    pub fn node_r2(&self, v: NodeId) -> f64 {
        self.nodes[v].model.as_ref().map_or(1.0, |m| m.r2)
    }

    /// Directed parents the node's functional model was fitted on.
    pub fn parents_of(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[v].parents
    }

    /// Simulates all node values for one exogenous configuration.
    ///
    /// * `base_row` supplies root values and (depending on `mode`)
    ///   residuals.
    /// * `interventions` are `do(node = value)` pairs: the node's
    ///   functional dependence is severed and the value clamped.
    pub fn simulate(
        &self,
        base_row: usize,
        interventions: &[(NodeId, f64)],
        mode: ResidualMode,
    ) -> Vec<f64> {
        let mut values = vec![0.0; self.n_vars()];
        for &v in &self.topo {
            if let Some(&(_, x)) = interventions.iter().find(|&&(node, _)| node == v) {
                values[v] = x;
                continue;
            }
            let nm = &self.nodes[v];
            let residual = match mode {
                ResidualMode::None => {
                    if nm.model.is_none() {
                        nm.residuals[base_row]
                    } else {
                        0.0
                    }
                }
                ResidualMode::FromRow(r) => {
                    if nm.model.is_none() {
                        nm.residuals[base_row]
                    } else {
                        nm.residuals[r]
                    }
                }
                ResidualMode::Blend { abduct_row, weight } => {
                    if nm.model.is_none() {
                        nm.residuals[base_row]
                    } else {
                        weight * nm.residuals[abduct_row] + (1.0 - weight) * nm.residuals[base_row]
                    }
                }
            };
            values[v] = match &nm.model {
                None => residual,
                Some(m) => m.predict_row(&|i: usize| values[i]) + residual,
            };
        }
        values
    }

    /// Interventional expectation `E[target | do(interventions)]`,
    /// estimated by the empirical g-formula: sweep the training rows
    /// (strided), treat each row's exogenous vector as one Monte-Carlo
    /// draw, and average the simulated target.
    pub fn interventional_expectation(
        &self,
        target: NodeId,
        interventions: &[(NodeId, f64)],
    ) -> f64 {
        let n = self.n_rows();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        let mut r = 0;
        while r < n {
            let vals = self.simulate(r, interventions, ResidualMode::FromRow(r));
            total += vals[target];
            count += 1;
            r += self.stride;
        }
        total / count as f64
    }

    /// Interventional probability `P(pred(target) | do(interventions))`
    /// under stochastic abduction against `abduct_row` (Eq 5's
    /// counterfactual probabilities; `weight = 0` recovers the plain
    /// interventional distribution).
    pub fn interventional_probability(
        &self,
        target: NodeId,
        interventions: &[(NodeId, f64)],
        abduct_row: usize,
        weight: f64,
        pred: &dyn Fn(f64) -> bool,
    ) -> f64 {
        let n = self.n_rows();
        if n == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut count = 0usize;
        let mut r = 0;
        while r < n {
            let vals = self.simulate(r, interventions, ResidualMode::Blend { abduct_row, weight });
            if pred(vals[target]) {
                hits += 1;
            }
            count += 1;
            r += self.stride;
        }
        hits as f64 / count as f64
    }

    /// Deterministic counterfactual: abduct the residuals of `row`, apply
    /// the interventions, and predict all node values (Pearl's
    /// abduction–action–prediction).
    pub fn counterfactual(&self, row: usize, interventions: &[(NodeId, f64)]) -> Vec<f64> {
        self.simulate(row, interventions, ResidualMode::FromRow(row))
    }

    /// Conditional-expectation prediction `E[target | X = row]` for an
    /// unmeasured configuration `row` (used for performance prediction, the
    /// paper's `semopy` role). Roots are clamped to the supplied values and
    /// expectations propagate with zero residuals.
    pub fn predict_from_assignment(&self, assignment: &[(NodeId, f64)], target: NodeId) -> f64 {
        let mut values = vec![0.0; self.n_vars()];
        for &v in &self.topo {
            if let Some(&(_, x)) = assignment.iter().find(|&&(node, _)| node == v) {
                values[v] = x;
                continue;
            }
            values[v] = match &self.nodes[v].model {
                None => {
                    // Unassigned root: fall back to its empirical mean
                    // (cached on the shared view).
                    self.data.column_stats()[v].mean
                }
                Some(m) => m.predict_row(&|i: usize| values[i]),
            };
        }
        values[target]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    /// X → M → Y with known coefficients: M = 2X + e₁, Y = −3M + e₂.
    fn chain_scm(n: usize) -> FittedScm {
        let mut s = 1u64;
        let mut x = Vec::new();
        let mut m = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let xi = lcg(&mut s) * 2.0;
            let mi = 2.0 * xi + 0.1 * lcg(&mut s);
            let yi = -3.0 * mi + 0.1 * lcg(&mut s);
            x.push(xi);
            m.push(mi);
            y.push(yi);
        }
        let mut g = Admg::new(vec!["x".into(), "m".into(), "y".into()]);
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        FittedScm::fit(g, &[x, m, y]).unwrap()
    }

    #[test]
    fn interventional_expectation_matches_linear_theory() {
        let scm = chain_scm(600);
        // E[Y | do(X = 1)] = −3·2·1 = −6.
        let e1 = scm.interventional_expectation(2, &[(0, 1.0)]);
        assert!((e1 + 6.0).abs() < 0.3, "E[Y|do(X=1)] = {e1}");
        let e0 = scm.interventional_expectation(2, &[(0, 0.0)]);
        assert!(e0.abs() < 0.3, "E[Y|do(X=0)] = {e0}");
    }

    #[test]
    fn intervening_on_mediator_cuts_upstream_effect() {
        let scm = chain_scm(600);
        // do(M = 0) makes Y independent of X.
        let with_x = scm.interventional_expectation(2, &[(1, 0.0), (0, 5.0)]);
        let without_x = scm.interventional_expectation(2, &[(1, 0.0)]);
        assert!((with_x - without_x).abs() < 0.2);
    }

    #[test]
    fn counterfactual_reproduces_factual_under_no_intervention() {
        let scm = chain_scm(300);
        for row in [0usize, 7, 123] {
            let cf = scm.counterfactual(row, &[]);
            for (v, &cfv) in cf.iter().enumerate().take(3) {
                assert!(
                    (cfv - scm.data()[v][row]).abs() < 1e-8,
                    "node {v} row {row}: {} vs {}",
                    cfv,
                    scm.data()[v][row]
                );
            }
        }
    }

    #[test]
    fn counterfactual_applies_intervention_with_abducted_noise() {
        let scm = chain_scm(300);
        let row = 11;
        let cf = scm.counterfactual(row, &[(0, 0.5)]);
        assert!((cf[0] - 0.5).abs() < 1e-12);
        // With abducted (small) residuals the counterfactual Y tracks
        // the structural path −6·0.5 = −3 within residual tolerance.
        assert!((cf[2] + 3.0).abs() < 0.5, "cf Y = {}", cf[2]);
    }

    #[test]
    fn probability_queries_are_calibrated() {
        let scm = chain_scm(600);
        // Under do(X = 1), Y ≈ −6: P(Y < −3) should be essentially 1.
        let p = scm.interventional_probability(2, &[(0, 1.0)], 0, 0.0, &|y| y < -3.0);
        assert!(p > 0.95, "p = {p}");
        let p2 = scm.interventional_probability(2, &[(0, 1.0)], 0, 0.0, &|y| y > 0.0);
        assert!(p2 < 0.05, "p2 = {p2}");
    }

    #[test]
    fn prediction_for_unseen_assignment() {
        let scm = chain_scm(600);
        let y = scm.predict_from_assignment(&[(0, 0.8)], 2);
        assert!((y + 4.8).abs() < 0.3, "predicted {y}");
    }

    #[test]
    fn node_r2_high_for_well_specified_models() {
        let scm = chain_scm(600);
        assert!(scm.node_r2(1) > 0.98);
        assert!(scm.node_r2(2) > 0.98);
        assert_eq!(scm.node_r2(0), 1.0); // root
    }
}
